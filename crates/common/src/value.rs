//! Typed SQL values and rows.
//!
//! Values carry a *canonical total order* (used by B-tree index keys and by
//! ORDER BY) and a *canonical binary encoding* (used for checkpoint hashing,
//! so that all honest replicas derive identical write-set digests).
//!
//! Floats order via `f64::total_cmp`, which is deterministic across
//! platforms — a requirement for smart contracts that must execute
//! identically on every node.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};
use crate::schema::DataType;

/// A single SQL value.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer (`INT`/`BIGINT`).
    Int(i64),
    /// 64-bit float (`FLOAT`/`DOUBLE`). Compared with `total_cmp`.
    Float(f64),
    /// UTF-8 string (`TEXT`/`VARCHAR`).
    Text(String),
    /// Raw bytes (`BYTEA`). Used for hashes and signatures stored in tables.
    Bytes(Vec<u8>),
    /// Milliseconds since the Unix epoch (`TIMESTAMP`). Only ever produced
    /// by the *block processor* (commit timestamps in the ledger table),
    /// never by contract expressions, preserving determinism.
    Timestamp(i64),
}

impl Value {
    /// The dynamic type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bytes(_) => Some(DataType::Bytes),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Coerce into the given column type, applying the small set of implicit
    /// conversions the engine supports (int → float, int → timestamp).
    pub fn coerce_to(self, ty: DataType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (v @ Value::Bool(_), DataType::Bool) => Ok(v),
            (v @ Value::Int(_), DataType::Int) => Ok(v),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(i as f64)),
            (Value::Int(i), DataType::Timestamp) => Ok(Value::Timestamp(i)),
            (v @ Value::Float(_), DataType::Float) => Ok(v),
            (v @ Value::Text(_), DataType::Text) => Ok(v),
            (v @ Value::Bytes(_), DataType::Bytes) => Ok(v),
            (v @ Value::Timestamp(_), DataType::Timestamp) => Ok(v),
            (v, ty) => Err(Error::Type(format!("cannot coerce value {v:?} to {ty}",))),
        }
    }

    /// Interpret as boolean for WHERE/HAVING. NULL is "unknown" → false.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric view used by arithmetic and aggregates.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            v => Err(Error::Type(format!("expected numeric value, got {v:?}"))),
        }
    }

    /// Integer view; floats are rejected (no silent truncation).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Timestamp(t) => Ok(*t),
            v => Err(Error::Type(format!("expected integer value, got {v:?}"))),
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            v => Err(Error::Type(format!("expected text value, got {v:?}"))),
        }
    }

    /// SQL equality: NULL = anything is "unknown" (returns `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_total(other) == Ordering::Equal)
    }

    /// SQL comparison: `None` if either side is NULL, otherwise the total
    /// order restricted to comparable types (numeric types inter-compare).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_total(other))
    }

    /// Canonical total order over all values. NULL sorts first; numeric
    /// values (Int/Float) compare by magnitude; distinct non-numeric type
    /// classes order by a fixed type rank. This is the order B-tree index
    /// keys and ORDER BY use, and it is identical on every node.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Timestamp(_) => 3,
                Text(_) => 4,
                Bytes(_) => 5,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Arithmetic addition with SQL NULL propagation and int/float promotion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        binary_numeric(self, other, i64::checked_add, |a, b| a + b, "+")
    }

    /// Arithmetic subtraction.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        binary_numeric(self, other, i64::checked_sub, |a, b| a - b, "-")
    }

    /// Arithmetic multiplication.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        binary_numeric(self, other, i64::checked_mul, |a, b| a * b, "*")
    }

    /// Division. Integer division by zero is an error (contract abort);
    /// integer/integer yields integer (like PostgreSQL).
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => Err(Error::Type("division by zero".into())),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a / b)),
            _ => {
                let b = other.as_f64()?;
                if b == 0.0 {
                    return Err(Error::Type("division by zero".into()));
                }
                Ok(Value::Float(self.as_f64()? / b))
            }
        }
    }

    /// Modulo for integers.
    pub fn rem(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => Err(Error::Type("modulo by zero".into())),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a % b)),
            _ => Err(Error::Type("modulo requires integer operands".into())),
        }
    }

    /// String concatenation (`||`).
    pub fn concat(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Text(format!(
            "{}{}",
            self.display_raw(),
            other.display_raw()
        )))
    }

    /// Unary negation.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| Error::Type("integer overflow in negation".into())),
            Value::Float(f) => Ok(Value::Float(-f)),
            v => Err(Error::Type(format!("cannot negate {v:?}"))),
        }
    }

    /// Render without quotes/escapes (for concatenation and display).
    pub fn display_raw(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                // Deterministic float rendering: Rust's Display for f64 is
                // shortest-roundtrip and platform-independent.
                format!("{f}")
            }
            Value::Text(s) => s.clone(),
            Value::Bytes(b) => {
                let mut s = String::with_capacity(2 + b.len() * 2);
                s.push_str("\\x");
                for byte in b {
                    use fmt::Write;
                    let _ = write!(s, "{byte:02x}");
                }
                s
            }
            Value::Timestamp(t) => format!("ts:{t}"),
        }
    }
}

fn binary_numeric(
    a: &Value,
    b: &Value,
    int_op: fn(i64, i64) -> Option<i64>,
    float_op: fn(f64, f64) -> f64,
    op_name: &str,
) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => int_op(*x, *y)
            .map(Value::Int)
            .ok_or_else(|| Error::Type(format!("integer overflow in {op_name}"))),
        _ => Ok(Value::Float(float_op(a.as_f64()?, b.as_f64()?))),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash consistently with cmp_total equality:
            // Int(2) == Float(2.0), so both hash via the float bit pattern.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Bytes(b) => {
                5u8.hash(state);
                b.hash(state);
            }
            Value::Timestamp(t) => {
                3u8.hash(state);
                t.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "'{s}'"),
            _ => f.write_str(&self.display_raw()),
        }
    }
}

/// A row of values (one per column, in schema order).
pub type Row = Vec<Value>;

// ------------------------------------------------------------ conversions

/// Conversion *into* a SQL [`Value`] — the argument side of the typed
/// session API. Lets callers write `client.call("transfer").arg(5).arg("a")`
/// instead of hand-building `Vec<Value>`.
pub trait IntoValue {
    /// Convert into a [`Value`].
    fn into_value(self) -> Value;
}

impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}

impl IntoValue for &Value {
    fn into_value(self) -> Value {
        self.clone()
    }
}

impl IntoValue for bool {
    fn into_value(self) -> Value {
        Value::Bool(self)
    }
}

impl IntoValue for i64 {
    fn into_value(self) -> Value {
        Value::Int(self)
    }
}

impl IntoValue for i32 {
    fn into_value(self) -> Value {
        Value::Int(self as i64)
    }
}

impl IntoValue for i16 {
    fn into_value(self) -> Value {
        Value::Int(self as i64)
    }
}

impl IntoValue for u32 {
    fn into_value(self) -> Value {
        Value::Int(self as i64)
    }
}

impl IntoValue for f64 {
    fn into_value(self) -> Value {
        Value::Float(self)
    }
}

impl IntoValue for f32 {
    fn into_value(self) -> Value {
        Value::Float(self as f64)
    }
}

impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::Text(self.to_string())
    }
}

impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::Text(self)
    }
}

impl IntoValue for &String {
    fn into_value(self) -> Value {
        Value::Text(self.clone())
    }
}

impl IntoValue for Vec<u8> {
    fn into_value(self) -> Value {
        Value::Bytes(self)
    }
}

impl IntoValue for &[u8] {
    fn into_value(self) -> Value {
        Value::Bytes(self.to_vec())
    }
}

impl<T: IntoValue> IntoValue for Option<T> {
    fn into_value(self) -> Value {
        match self {
            Some(v) => v.into_value(),
            None => Value::Null,
        }
    }
}

/// Conversion *out of* a SQL [`Value`] — the row-decoding side of the
/// typed session API (`row.get::<i64>("balance")`,
/// `result.rows_as::<(i64, String)>()`). Failures surface as
/// [`Error::Decode`] so callers can distinguish decode bugs from engine
/// errors.
pub trait FromValue: Sized {
    /// Convert from a [`Value`] reference.
    fn from_value(v: &Value) -> Result<Self>;
}

fn decode_err<T>(v: &Value, want: &str) -> Result<T> {
    Err(Error::Decode(format!("expected {want}, got {v:?}")))
}

impl FromValue for Value {
    fn from_value(v: &Value) -> Result<Value> {
        Ok(v.clone())
    }
}

impl FromValue for bool {
    fn from_value(v: &Value) -> Result<bool> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => decode_err(other, "Bool"),
        }
    }
}

impl FromValue for i64 {
    fn from_value(v: &Value) -> Result<i64> {
        match v {
            Value::Int(i) => Ok(*i),
            Value::Timestamp(t) => Ok(*t),
            other => decode_err(other, "Int"),
        }
    }
}

impl FromValue for i32 {
    fn from_value(v: &Value) -> Result<i32> {
        let i = i64::from_value(v)?;
        i32::try_from(i).map_err(|_| Error::Decode(format!("Int {i} out of i32 range")))
    }
}

impl FromValue for u64 {
    fn from_value(v: &Value) -> Result<u64> {
        let i = i64::from_value(v)?;
        u64::try_from(i).map_err(|_| Error::Decode(format!("Int {i} is negative")))
    }
}

impl FromValue for f64 {
    fn from_value(v: &Value) -> Result<f64> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => decode_err(other, "Float"),
        }
    }
}

impl FromValue for String {
    fn from_value(v: &Value) -> Result<String> {
        match v {
            Value::Text(s) => Ok(s.clone()),
            other => decode_err(other, "Text"),
        }
    }
}

impl FromValue for Vec<u8> {
    fn from_value(v: &Value) -> Result<Vec<u8>> {
        match v {
            Value::Bytes(b) => Ok(b.clone()),
            other => decode_err(other, "Bytes"),
        }
    }
}

impl<T: FromValue> FromValue for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagation_in_arithmetic() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).mul(&Value::Null).unwrap(), Value::Null);
        assert_eq!(
            Value::Null.concat(&Value::Text("x".into())).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(2).sub(&Value::Int(3)).unwrap(), Value::Int(-1));
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Int(7).rem(&Value::Int(2)).unwrap(), Value::Int(1));
    }

    #[test]
    fn mixed_numeric_promotes_to_float() {
        assert_eq!(
            Value::Int(1).add(&Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Float(1.0).div(&Value::Float(0.0)).is_err());
        assert!(Value::Int(1).rem(&Value::Int(0)).is_err());
    }

    #[test]
    fn overflow_is_error_not_wrap() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).neg().is_err());
    }

    #[test]
    fn total_order_null_first() {
        let mut vals = [
            Value::Text("b".into()),
            Value::Null,
            Value::Int(3),
            Value::Bool(true),
            Value::Float(2.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        // numeric class: 2.5 < 3
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(3));
    }

    #[test]
    fn int_float_cross_comparison() {
        assert_eq!(Value::Int(2).cmp_total(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).cmp_total(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.5).cmp_total(&Value::Int(3)),
            Ordering::Greater
        );
    }

    #[test]
    fn sql_three_valued_logic() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(Value::Null.coerce_to(DataType::Int).unwrap(), Value::Null);
        assert!(Value::Text("x".into()).coerce_to(DataType::Int).is_err());
    }

    #[test]
    fn bytes_display_hex() {
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).display_raw(), "\\xdead");
    }

    #[test]
    fn into_value_conversions() {
        assert_eq!(5i64.into_value(), Value::Int(5));
        assert_eq!(5i32.into_value(), Value::Int(5));
        assert_eq!(2.5f64.into_value(), Value::Float(2.5));
        assert_eq!("x".into_value(), Value::Text("x".into()));
        assert_eq!(String::from("y").into_value(), Value::Text("y".into()));
        assert_eq!(true.into_value(), Value::Bool(true));
        assert_eq!(vec![1u8, 2].into_value(), Value::Bytes(vec![1, 2]));
        assert_eq!(None::<i64>.into_value(), Value::Null);
        assert_eq!(Some(3i64).into_value(), Value::Int(3));
        assert_eq!(Value::Int(7).into_value(), Value::Int(7));
    }

    #[test]
    fn from_value_conversions() {
        assert_eq!(i64::from_value(&Value::Int(5)).unwrap(), 5);
        assert_eq!(f64::from_value(&Value::Float(2.5)).unwrap(), 2.5);
        // Ints widen to float on decode (SUM over ints etc.).
        assert_eq!(f64::from_value(&Value::Int(2)).unwrap(), 2.0);
        assert_eq!(String::from_value(&Value::Text("a".into())).unwrap(), "a");
        assert_eq!(Option::<i64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<i64>::from_value(&Value::Int(1)).unwrap(), Some(1));
        // Type mismatches are Decode errors, not Type errors.
        assert!(matches!(
            i64::from_value(&Value::Text("x".into())),
            Err(Error::Decode(_))
        ));
        assert!(matches!(
            i32::from_value(&Value::Int(1 << 40)),
            Err(Error::Decode(_))
        ));
    }

    #[test]
    fn hash_consistent_with_eq_across_numeric_types() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
    }
}
