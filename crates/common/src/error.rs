//! Error types shared by every crate in the workspace.
//!
//! The variants mirror the failure classes the paper cares about:
//! serialization failures (SSI aborts, including the block-height variant's
//! phantom/stale-read aborts), determinism violations in smart contracts,
//! authentication/access failures, and tamper detection.

use std::fmt;

use crate::ids::GlobalTxId;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Why a transaction was aborted by the concurrency-control layer.
///
/// Distinguishing the causes matters for the evaluation (retriable SSI
/// aborts vs. deterministic duplicate rejections) and for the abort rules of
/// Table 2 in the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// Dangerous rw-antidependency structure detected at commit
    /// (abort-during-commit, §3.2).
    SsiDangerousStructure,
    /// This transaction was chosen as the victim by another transaction's
    /// commit under the block-aware rules of Table 2.
    SsiDoomedByPeer,
    /// Block-height SSI: a row matching a read predicate was created by a
    /// block later than the transaction's snapshot height (§3.4.1 rule 1).
    PhantomRead,
    /// Block-height SSI: a row read at the snapshot height was deleted or
    /// updated by a later committed block (§3.4.1 rule 2).
    StaleRead,
    /// Lost-update prevention: another concurrent writer of the same row
    /// committed first (ww-conflict, xmax array resolution of §4.3).
    WwConflict,
    /// The transaction's global identifier duplicates an already-processed
    /// transaction (replay / resubmission).
    DuplicateTxId,
    /// The smart-contract body itself raised an error (constraint violation,
    /// type error, division by zero, ...). The message preserves the cause.
    ContractError(String),
    /// The client signature or certificate failed verification.
    AuthenticationFailed,
    /// The invoker lacks privileges for the attempted operation.
    AccessDenied(String),
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::SsiDangerousStructure => {
                write!(
                    f,
                    "serialization failure: dangerous rw-antidependency structure"
                )
            }
            AbortReason::SsiDoomedByPeer => {
                write!(
                    f,
                    "serialization failure: aborted by a conflicting transaction's commit"
                )
            }
            AbortReason::PhantomRead => write!(
                f,
                "serialization failure: phantom read beyond snapshot height"
            ),
            AbortReason::StaleRead => write!(
                f,
                "serialization failure: stale read beyond snapshot height"
            ),
            AbortReason::WwConflict => {
                write!(f, "serialization failure: concurrent write-write conflict")
            }
            AbortReason::DuplicateTxId => write!(f, "duplicate transaction identifier"),
            AbortReason::ContractError(m) => write!(f, "contract error: {m}"),
            AbortReason::AuthenticationFailed => write!(f, "authentication failed"),
            AbortReason::AccessDenied(m) => write!(f, "access denied: {m}"),
        }
    }
}

/// Workspace-wide error type.
///
/// `Clone` so errors can cross the client/node RPC boundary: a
/// [`crate::codec`]-sized response travelling a simulated network must be
/// cloneable like any other wire message.
#[derive(Clone, Debug)]
pub enum Error {
    /// SQL lexing/parsing failure, with position information in the message.
    Parse(String),
    /// Static analysis failure: unknown table/column, arity mismatch, ...
    Analysis(String),
    /// Runtime type error during expression evaluation.
    Type(String),
    /// Schema constraint violation (primary key, NOT NULL, ...).
    Constraint(String),
    /// The transaction was aborted; carries the structured reason.
    Abort(AbortReason),
    /// A deterministic-execution rule was violated by a contract
    /// (§2 enhancement 1 and §4.3 of the paper).
    Determinism(String),
    /// Catalog object not found.
    NotFound(String),
    /// Catalog object already exists.
    AlreadyExists(String),
    /// Cryptographic verification failure (signatures, hash chain).
    Crypto(String),
    /// Tampering detected (block store, checkpoint mismatch).
    TamperDetected(String),
    /// Underlying I/O failure (block store, WAL, snapshots). Carries the
    /// rendered cause (not the `std::io::Error` itself, which is not
    /// cloneable).
    Io(String),
    /// Malformed binary data while decoding.
    Codec(String),
    /// Configuration problem while assembling a network.
    Config(String),
    /// Component shut down / channel disconnected.
    Shutdown(String),
    /// Client-side admission control: the per-client window of in-flight
    /// transactions is full. Distinct from [`Error::Timeout`]: nothing
    /// was submitted; release an outstanding handle (drop a `PendingTx` /
    /// `PendingBatch`) or wait for notifications before resubmitting.
    Busy(String),
    /// A client-side wait elapsed before the awaited event arrived
    /// (e.g. no commit notification within the deadline). Distinct from
    /// [`Error::TxAborted`]: the transaction may still commit later.
    Timeout(String),
    /// A submitted transaction reached a final **aborted** status. The
    /// structured form lets callers branch on the outcome without string
    /// matching; `reason` preserves the node's abort message (the
    /// rendered [`AbortReason`]).
    TxAborted {
        /// Network-unique id of the aborted transaction.
        id: GlobalTxId,
        /// The abort reason as recorded in the ledger.
        reason: String,
    },
    /// Typed row decoding failed (wrong column type, unknown column,
    /// arity mismatch) — see `FromRow`/`FromValue`.
    Decode(String),
    /// Invariant violation: indicates a bug, not a user error.
    Internal(String),
}

impl Error {
    /// True if the failure is an SSI-style serialization failure that a
    /// client may simply retry (possibly at a newer snapshot height).
    ///
    /// [`Error::TxAborted`] carries the node's rendered reason string;
    /// every retriable [`AbortReason`] — and only those — renders with
    /// the `"serialization failure"` *prefix* (terminal reasons such as
    /// `ContractError` render with their own prefixes, so a contract
    /// message merely containing the phrase cannot misclassify). The
    /// prefix is a stable part of the ledger format: abort reasons are
    /// recorded on-chain, so honest replicas already depend on these
    /// renderings being identical.
    pub fn is_retriable(&self) -> bool {
        match self {
            Error::Abort(
                AbortReason::SsiDangerousStructure
                | AbortReason::SsiDoomedByPeer
                | AbortReason::PhantomRead
                | AbortReason::StaleRead
                | AbortReason::WwConflict,
            ) => true,
            Error::TxAborted { reason, .. } => reason.starts_with("serialization failure"),
            _ => false,
        }
    }

    /// Shorthand constructor for internal invariant violations.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Analysis(m) => write!(f, "analysis error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Constraint(m) => write!(f, "constraint violation: {m}"),
            Error::Abort(r) => write!(f, "transaction aborted: {r}"),
            Error::Determinism(m) => write!(f, "determinism violation: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::AlreadyExists(m) => write!(f, "already exists: {m}"),
            Error::Crypto(m) => write!(f, "crypto error: {m}"),
            Error::TamperDetected(m) => write!(f, "tamper detected: {m}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
            Error::Shutdown(m) => write!(f, "shutdown: {m}"),
            Error::Busy(m) => write!(f, "busy: {m}"),
            Error::Timeout(m) => write!(f, "timed out: {m}"),
            Error::TxAborted { id, reason } => {
                write!(f, "transaction {} aborted: {reason}", id.short())
            }
            Error::Decode(m) => write!(f, "decode error: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retriable_classification() {
        assert!(Error::Abort(AbortReason::PhantomRead).is_retriable());
        assert!(Error::Abort(AbortReason::StaleRead).is_retriable());
        assert!(Error::Abort(AbortReason::WwConflict).is_retriable());
        assert!(Error::Abort(AbortReason::SsiDangerousStructure).is_retriable());
        assert!(Error::Abort(AbortReason::SsiDoomedByPeer).is_retriable());
        assert!(!Error::Abort(AbortReason::DuplicateTxId).is_retriable());
        assert!(!Error::Abort(AbortReason::AuthenticationFailed).is_retriable());
        assert!(!Error::Parse("x".into()).is_retriable());
    }

    #[test]
    fn tx_aborted_retriability_follows_reason() {
        let retriable = Error::TxAborted {
            id: GlobalTxId::ZERO,
            reason: AbortReason::WwConflict.to_string(),
        };
        assert!(retriable.is_retriable());
        let terminal = Error::TxAborted {
            id: GlobalTxId::ZERO,
            reason: AbortReason::ContractError("division by zero".into()).to_string(),
        };
        assert!(!terminal.is_retriable());
        // A contract message *containing* the retriable phrase must not
        // misclassify: only the prefix counts.
        let trap = Error::TxAborted {
            id: GlobalTxId::ZERO,
            reason: AbortReason::ContractError(
                "upstream reported: serialization failure in replica log".into(),
            )
            .to_string(),
        };
        assert!(!trap.is_retriable());
        assert!(!Error::Timeout("x".into()).is_retriable());
    }

    #[test]
    fn new_variants_display() {
        let e = Error::Timeout("waiting for tx abc".into());
        assert!(e.to_string().contains("timed out"));
        let e = Error::TxAborted {
            id: GlobalTxId::ZERO,
            reason: "boom".into(),
        };
        assert!(e.to_string().contains("aborted"));
        assert!(e.to_string().contains("boom"));
        let e = Error::Decode("expected Int".into());
        assert!(e.to_string().contains("decode"));
    }

    #[test]
    fn display_contains_cause() {
        let e = Error::Abort(AbortReason::ContractError("division by zero".into()));
        assert!(e.to_string().contains("division by zero"));
        let e = Error::from(std::io::Error::other("disk gone"));
        assert!(e.to_string().contains("disk gone"));
        // Every variant is cloneable (errors cross the RPC boundary).
        let e = Error::TxAborted {
            id: GlobalTxId::ZERO,
            reason: "ww".into(),
        };
        assert!(e.clone().to_string().contains("ww"));
        assert!(Error::Busy("window full".into())
            .to_string()
            .contains("busy"));
    }
}
