//! Relational schemas: column types, table definitions and index
//! definitions.
//!
//! Schemas are created by DDL executed through *system smart contracts*
//! (§3.7 of the paper), so every replica holds an identical catalog. A
//! schema also records which columns are indexed: the execute-order-in-
//! parallel flow requires every predicate read to be served by an index
//! (§4.3), which the planner enforces using `TableSchema::index_on`.

use std::fmt;

use crate::error::{Error, Result};
use crate::value::{Row, Value};

/// Column data types supported by the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 text.
    Text,
    /// Raw byte string.
    Bytes,
    /// Milliseconds since the Unix epoch.
    Timestamp,
}

impl DataType {
    /// Parse a SQL type name (several standard aliases accepted).
    pub fn from_sql_name(name: &str) -> Result<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "INT4" | "INT8" => Ok(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "FLOAT8" | "NUMERIC" | "DECIMAL" => Ok(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Ok(DataType::Text),
            "BYTEA" | "BLOB" | "BYTES" => Ok(DataType::Bytes),
            "TIMESTAMP" | "TIMESTAMPTZ" | "DATETIME" => Ok(DataType::Timestamp),
            other => Err(Error::Parse(format!("unknown data type: {other}"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "BIGINT",
            DataType::Float => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::Bytes => "BYTEA",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A column definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name (lowercased by the parser).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL is permitted.
    pub nullable: bool,
}

impl Column {
    /// Convenience constructor for a non-nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// Convenience constructor for a nullable column.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

/// A secondary (or primary) index definition. All indexes are B-trees over
/// one column; the primary key is a unique index over the key columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name, unique within the table.
    pub name: String,
    /// Ordinal of the indexed column.
    pub column: usize,
    /// Whether the index enforces uniqueness (only the PK index does).
    pub unique: bool,
}

/// A table definition: columns, primary key and indexes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lowercased).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Ordinals of the primary-key columns (possibly empty for system
    /// tables; user tables created via contracts always have one).
    pub primary_key: Vec<usize>,
    /// Secondary index definitions. The PK index is implicit.
    pub indexes: Vec<IndexDef>,
}

impl TableSchema {
    /// Create a schema, checking name uniqueness and PK sanity.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<Column>,
        primary_key: Vec<usize>,
    ) -> Result<TableSchema> {
        let name = name.into();
        if columns.is_empty() {
            return Err(Error::Analysis(format!("table {name} has no columns")));
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(Error::Analysis(format!(
                    "duplicate column {} in table {name}",
                    c.name
                )));
            }
        }
        for &pk in &primary_key {
            if pk >= columns.len() {
                return Err(Error::internal(format!(
                    "primary key ordinal {pk} out of range for table {name}"
                )));
            }
        }
        Ok(TableSchema {
            name,
            columns,
            primary_key,
            indexes: Vec::new(),
        })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Find a column ordinal by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Returns the index (implicit PK or secondary) covering `column`, if
    /// any. Used by the planner to decide whether a predicate read can be
    /// served by an index — mandatory in the EO flow (§4.3).
    pub fn index_on(&self, column: usize) -> Option<IndexDef> {
        if self.primary_key.len() == 1 && self.primary_key[0] == column {
            return Some(IndexDef {
                name: format!("{}_pkey", self.name),
                column,
                unique: true,
            });
        }
        self.indexes.iter().find(|i| i.column == column).cloned()
    }

    /// Add a secondary index over a named column.
    pub fn add_index(&mut self, index_name: impl Into<String>, column_name: &str) -> Result<()> {
        let column = self.column_index(column_name).ok_or_else(|| {
            Error::NotFound(format!("column {column_name} in table {}", self.name))
        })?;
        let index_name = index_name.into();
        if self.indexes.iter().any(|i| i.name == index_name) {
            return Err(Error::AlreadyExists(format!("index {index_name}")));
        }
        self.indexes.push(IndexDef {
            name: index_name,
            column,
            unique: false,
        });
        Ok(())
    }

    /// Validate a row against this schema: arity, types (with coercion) and
    /// NOT NULL constraints. Returns the coerced row.
    pub fn check_row(&self, row: Row) -> Result<Row> {
        if row.len() != self.columns.len() {
            return Err(Error::Constraint(format!(
                "table {} expects {} columns, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, c) in row.into_iter().zip(&self.columns) {
            if v.is_null() && !c.nullable {
                return Err(Error::Constraint(format!(
                    "null value in column {} of table {} violates not-null constraint",
                    c.name, self.name
                )));
            }
            out.push(v.coerce_to(c.dtype).map_err(|_| {
                Error::Constraint(format!(
                    "column {} of table {} expects {}",
                    c.name, self.name, c.dtype
                ))
            })?);
        }
        Ok(out)
    }

    /// Extract the primary-key values from a row (schema order).
    pub fn pk_values(&self, row: &[Value]) -> Vec<Value> {
        self.primary_key.iter().map(|&i| row[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::new(
            "invoices",
            vec![
                Column::new("id", DataType::Int),
                Column::new("supplier", DataType::Text),
                Column::nullable("amount", DataType::Float),
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn type_parsing_aliases() {
        assert_eq!(DataType::from_sql_name("bigint").unwrap(), DataType::Int);
        assert_eq!(DataType::from_sql_name("VARCHAR").unwrap(), DataType::Text);
        assert_eq!(DataType::from_sql_name("double").unwrap(), DataType::Float);
        assert!(DataType::from_sql_name("geometry").is_err());
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("a", DataType::Int),
            ],
            vec![],
        );
        assert!(err.is_err());
    }

    #[test]
    fn row_checking_coerces_and_validates() {
        let s = sample();
        let row = s
            .check_row(vec![
                Value::Int(1),
                Value::Text("acme".into()),
                Value::Int(10),
            ])
            .unwrap();
        assert_eq!(row[2], Value::Float(10.0));

        // NOT NULL violation
        assert!(s
            .check_row(vec![Value::Null, Value::Text("x".into()), Value::Null])
            .is_err());
        // nullable column accepts NULL
        assert!(s
            .check_row(vec![Value::Int(2), Value::Text("x".into()), Value::Null])
            .is_ok());
        // arity mismatch
        assert!(s.check_row(vec![Value::Int(1)]).is_err());
        // type mismatch
        assert!(s
            .check_row(vec![
                Value::Text("no".into()),
                Value::Text("x".into()),
                Value::Null
            ])
            .is_err());
    }

    #[test]
    fn pk_index_is_implicit() {
        let s = sample();
        let idx = s.index_on(0).unwrap();
        assert!(idx.unique);
        assert_eq!(idx.name, "invoices_pkey");
        assert!(s.index_on(1).is_none());
    }

    #[test]
    fn secondary_index_add_and_lookup() {
        let mut s = sample();
        s.add_index("idx_supplier", "supplier").unwrap();
        assert!(s.index_on(1).is_some());
        assert!(!s.index_on(1).unwrap().unique);
        assert!(s.add_index("idx_supplier", "supplier").is_err());
        assert!(s.add_index("idx_missing", "nope").is_err());
    }

    #[test]
    fn pk_values_extraction() {
        let s = sample();
        let pk = s.pk_values(&[Value::Int(42), Value::Text("a".into()), Value::Null]);
        assert_eq!(pk, vec![Value::Int(42)]);
    }
}
