#![warn(missing_docs)]
//! # bcrdb-common
//!
//! Shared substrate for the blockchain relational database: typed values,
//! relational schemas, identifiers, error types and the canonical binary
//! codec used for hashing, the write-ahead log and the block store.
//!
//! Everything above this crate (storage, SQL, consensus, the peer node)
//! agrees on these definitions, which is what makes independently executing
//! replicas byte-for-byte comparable: two nodes that commit the same
//! transactions produce identical canonical encodings and therefore
//! identical checkpoint hashes.

pub mod codec;
pub mod error;
pub mod ids;
pub mod schema;
pub mod value;

pub use error::{Error, Result};
pub use ids::{BlockHeight, GlobalTxId, RowId, TxId};
pub use schema::{Column, DataType, IndexDef, TableSchema};
pub use value::{Row, Value};
