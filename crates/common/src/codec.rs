//! Canonical binary codec.
//!
//! Blocks, transactions, WAL records and checkpoint write-sets are encoded
//! with this hand-written, length-prefixed, big-endian format. The encoding
//! is *canonical*: a given value has exactly one encoding, so hashing the
//! encoding yields the same digest on every replica — the foundation for
//! the paper's checkpointing phase (§3.3.4), block hash chain and signed
//! transaction envelopes.

use crate::error::{Error, Result};
use crate::value::Value;

/// Incremental encoder over a growable buffer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Encoder {
        Encoder {
            buf: Vec::with_capacity(256),
        }
    }

    /// New encoder with a capacity hint.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Finish and return the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Encoded length so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append an f64 via its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append length-prefixed bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append a fixed-width 32-byte digest (no length prefix).
    pub fn put_digest(&mut self, v: &[u8; 32]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a tagged [`Value`].
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_bool(*b);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(3);
                self.put_f64(*f);
            }
            Value::Text(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
            Value::Bytes(b) => {
                self.put_u8(5);
                self.put_bytes(b);
            }
            Value::Timestamp(t) => {
                self.put_u8(6);
                self.put_i64(*t);
            }
        }
    }

    /// Append a row (length-prefixed sequence of values).
    pub fn put_row(&mut self, row: &[Value]) {
        self.put_u32(row.len() as u32);
        for v in row {
            self.put_value(v);
        }
    }
}

/// Decoder over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Wrap a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.is_empty()
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.buf.len() < n {
            return Err(Error::Codec(format!(
                "unexpected end of input: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        self.need(n)?;
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a big-endian i64.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an f64 from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool; any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::Codec(format!("invalid boolean byte {b:#x}"))),
        }
    }

    /// Read length-prefixed bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        String::from_utf8(self.get_bytes()?)
            .map_err(|_| Error::Codec("invalid utf-8 in string".into()))
    }

    /// Read a fixed 32-byte digest.
    pub fn get_digest(&mut self) -> Result<[u8; 32]> {
        Ok(self.take(32)?.try_into().expect("32 bytes"))
    }

    /// Read a tagged [`Value`].
    pub fn get_value(&mut self) -> Result<Value> {
        match self.get_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.get_bool()?)),
            2 => Ok(Value::Int(self.get_i64()?)),
            3 => Ok(Value::Float(self.get_f64()?)),
            4 => Ok(Value::Text(self.get_str()?)),
            5 => Ok(Value::Bytes(self.get_bytes()?)),
            6 => Ok(Value::Timestamp(self.get_i64()?)),
            t => Err(Error::Codec(format!("invalid value tag {t:#x}"))),
        }
    }

    /// Read a row.
    pub fn get_row(&mut self) -> Result<Vec<Value>> {
        let n = self.get_u32()? as usize;
        // Defensive bound: a row cannot be larger than the remaining input
        // (each value takes at least 1 byte), preventing huge preallocations
        // from corrupt length prefixes.
        if n > self.remaining() {
            return Err(Error::Codec(format!("row length {n} exceeds input")));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_value()?);
        }
        Ok(out)
    }
}

/// Trait for types with a canonical binary encoding.
pub trait Encode {
    /// Append the canonical encoding of `self` to the encoder.
    fn encode(&self, enc: &mut Encoder);

    /// Encode into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }
}

/// Trait for types decodable from the canonical encoding.
pub trait Decode: Sized {
    /// Decode one value, advancing the decoder.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self>;

    /// Decode from a complete buffer, requiring full consumption.
    fn decode_all(buf: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(buf);
        let v = Self::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after decode",
                dec.remaining()
            )));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let mut enc = Encoder::new();
        enc.put_value(&v);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let back = dec.get_value().unwrap();
        assert_eq!(v, back);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Int(-42));
        roundtrip_value(Value::Float(3.25));
        roundtrip_value(Value::Text("héllo".into()));
        roundtrip_value(Value::Bytes(vec![0, 255, 7]));
        roundtrip_value(Value::Timestamp(1_700_000_000_000));
    }

    #[test]
    fn row_roundtrip() {
        let row = vec![Value::Int(1), Value::Text("x".into()), Value::Null];
        let mut enc = Encoder::new();
        enc.put_row(&row);
        let bytes = enc.finish();
        let back = Decoder::new(&bytes).get_row().unwrap();
        assert_eq!(row, back);
    }

    #[test]
    fn truncated_input_is_error_not_panic() {
        let mut enc = Encoder::new();
        enc.put_str("hello world");
        let bytes = enc.finish();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(dec.get_str().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_tag_is_error() {
        let mut dec = Decoder::new(&[9u8]);
        assert!(dec.get_value().is_err());
        let mut dec = Decoder::new(&[7u8]);
        assert!(dec.get_bool().is_err());
    }

    #[test]
    fn oversized_row_length_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX);
        let bytes = enc.finish();
        assert!(Decoder::new(&bytes).get_row().is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let row = vec![Value::Float(1.5), Value::Text("abc".into())];
        let mut a = Encoder::new();
        a.put_row(&row);
        let mut b = Encoder::new();
        b.put_row(&row);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn digest_roundtrip() {
        let d = [7u8; 32];
        let mut enc = Encoder::new();
        enc.put_digest(&d);
        let got = Decoder::new(&enc.finish()).get_digest().unwrap();
        assert_eq!(d, got);
    }
}
