//! Identifiers used across the system.
//!
//! The paper distinguishes between a transaction's *global* identifier
//! (carried in the signed transaction envelope, unique across the network)
//! and the *local* transaction id assigned by each database node when it
//! starts executing the transaction (the analogue of a PostgreSQL `xid`).
//! Block heights are the unit of the novel snapshot-isolation variant
//! (§3.4.1 of the paper): every committed row version is stamped with the
//! block that created it and, once superseded, the block that deleted it.

use std::fmt;

/// Local, per-node transaction identifier (the PostgreSQL `xid` analogue).
///
/// Assigned monotonically by each node's transaction manager. Local ids are
/// never compared across nodes; cross-node identity uses [`GlobalTxId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TxId(pub u64);

impl TxId {
    /// Sentinel for "no transaction" (e.g. an empty `xmax`).
    pub const INVALID: TxId = TxId(0);

    /// First id handed out by a fresh transaction manager.
    pub const FIRST: TxId = TxId(1);

    /// Returns the next transaction id.
    #[must_use]
    pub fn next(self) -> TxId {
        TxId(self.0 + 1)
    }

    /// True if this is a real transaction id (not [`TxId::INVALID`]).
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txid:{}", self.0)
    }
}

/// Network-wide unique transaction identifier.
///
/// In the execute-order-in-parallel flow this is
/// `hash(username, procedure call, snapshot block number)` as required by
/// §3.4.3 so that two *different* transactions can never collide; in the
/// order-then-execute flow the client supplies it directly. Either way it is
/// a 32-byte digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalTxId(pub [u8; 32]);

impl GlobalTxId {
    /// Identifier consisting of all zero bytes; used by internal/system
    /// bootstrap records that never travel over the network.
    pub const ZERO: GlobalTxId = GlobalTxId([0u8; 32]);

    /// Hex representation (lowercase, 64 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            use fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Short prefix used in log lines and ledger display.
    pub fn short(&self) -> String {
        self.to_hex()[..12].to_string()
    }
}

impl fmt::Debug for GlobalTxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GlobalTxId({})", self.short())
    }
}

impl fmt::Display for GlobalTxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Height of a block in the chain. Block 0 is the genesis/bootstrap block.
pub type BlockHeight = u64;

/// Stable logical row identifier within a table.
///
/// All versions of the same logical row share a `RowId`; an UPDATE creates a
/// new version with the same `RowId`, which is what provenance queries walk.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row:{}", self.0)
    }
}

/// Identifier of a table in the catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_next_is_monotonic() {
        let t = TxId::FIRST;
        assert!(t.next() > t);
        assert!(t.is_valid());
        assert!(!TxId::INVALID.is_valid());
    }

    #[test]
    fn global_txid_hex_roundtrip_shape() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0xab;
        bytes[31] = 0x01;
        let id = GlobalTxId(bytes);
        let hex = id.to_hex();
        assert_eq!(hex.len(), 64);
        assert!(hex.starts_with("ab"));
        assert!(hex.ends_with("01"));
        assert_eq!(id.short().len(), 12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TxId(7).to_string(), "txid:7");
        assert_eq!(RowId(9).to_string(), "row:9");
        assert_eq!(TableId(3).to_string(), "table:3");
    }
}
