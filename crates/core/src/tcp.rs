//! The TCP backend of [`NodeTransport`], plus the node's client-plane
//! TCP server and the peer-plane frame codec.
//!
//! This is the third transport backend the trait was designed for: the
//! same typed [`ClientRequest`]/[`ClientResponse`] surface as
//! [`crate::transport::InProcess`] and [`crate::transport::Simulated`],
//! but carried as length-prefixed canonical-codec frames
//! ([`bcrdb_network::wire`]) over real sockets. The threading model
//! mirrors the simulated backend exactly:
//!
//! * **client side** ([`TcpTransport`]): one writer (callers serialize
//!   on a lock) and one reader thread demultiplexing responses by
//!   sequence number and server-push notifications by transaction id;
//! * **server side** ([`serve_client_tcp`]): one accept loop per node;
//!   each connection gets its own worker thread owning a [`Frontend`] —
//!   the backend-per-connection model — so a slow request on one
//!   connection never head-of-line-blocks another, plus a pump thread
//!   streaming the connection's notifications back.
//!
//! Failure semantics differ from the simulated network in one honest
//! way: sockets fail. A torn, oversized or malformed frame closes the
//! connection (`Error::Io`/`Error::Decode`/`Error::Codec` — never a
//! panic, never a hung worker), in-flight RPCs on a dead connection
//! fail with `Error::Io` immediately, and dropping the client end
//! closes the socket, which drops the server's `Frontend` and thereby
//! cancels every notification registration of that connection — the
//! same leak-freedom guarantee the other two backends give.

use std::collections::HashMap;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bcrdb_common::codec::{Decode, Decoder, Encode, Encoder};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::GlobalTxId;
use bcrdb_network::wire::{read_frame, write_frame, FrameEvent, MAX_CLIENT_FRAME, MAX_PEER_FRAME};
use bcrdb_node::wire::ClientFrame;
use bcrdb_node::{ClientRequest, ClientResponse, Frontend, Node, TxNotification};
use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::network::PeerMsg;
use crate::transport::NodeTransport;

/// How long RPCs wait for their response (same budget as the simulated
/// backend).
const RPC_TIMEOUT: Duration = Duration::from_secs(30);

/// Stop-flag polling cadence for accept loops and server-side readers.
const POLL: Duration = Duration::from_millis(100);

/// Bound on how long a stuck peer may block a socket write.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

// ------------------------------------------------------- client side

struct TcpShared {
    /// In-flight RPCs by sequence number.
    rpc: Mutex<HashMap<u64, Sender<Result<ClientResponse>>>>,
    /// Client-side demux of streamed notifications by transaction id.
    waits: Mutex<HashMap<GlobalTxId, Vec<Sender<TxNotification>>>>,
    /// Set when the reader exits: the connection is unusable.
    dead: AtomicBool,
}

impl TcpShared {
    /// The connection died: fail every in-flight RPC immediately and
    /// drop all notification demux entries (their receivers observe a
    /// disconnect instead of hanging).
    fn poison(&self, why: &str) {
        self.dead.store(true, Ordering::Release);
        for (_, tx) in self.rpc.lock().drain() {
            let _ = tx.send(Err(Error::Io(format!("connection lost: {why}"))));
        }
        self.waits.lock().clear();
    }
}

/// TCP backend of [`NodeTransport`]: a real socket to a `bcrdb-node`
/// server, one multiplexed connection per transport.
pub struct TcpTransport {
    writer: Mutex<TcpStream>,
    seq: AtomicU64,
    shared: Arc<TcpShared>,
    /// Server address, for error messages.
    server: String,
}

impl TcpTransport {
    /// Connect to a node's client-plane listener and spawn the reader
    /// that demultiplexes responses and notifications.
    pub fn connect<A: ToSocketAddrs + std::fmt::Display>(addr: A) -> Result<TcpTransport> {
        let server = addr.to_string();
        let stream = TcpStream::connect(&addr).map_err(|e| Error::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        let mut reader = stream.try_clone().map_err(|e| Error::Io(e.to_string()))?;
        let shared = Arc::new(TcpShared {
            rpc: Mutex::new(HashMap::new()),
            waits: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
        });
        {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("tcp-client-reader:{server}"))
                .spawn(move || {
                    // Blocking reads; `TcpTransport::drop` shuts the
                    // socket down, which unblocks us with EOF.
                    let why = loop {
                        match read_frame(&mut reader, MAX_CLIENT_FRAME) {
                            Ok(FrameEvent::Frame(payload)) => {
                                match ClientFrame::decode_all(&payload) {
                                    Ok(ClientFrame::Response { seq, resp }) => {
                                        if let Some(tx) = shared.rpc.lock().remove(&seq) {
                                            let _ = tx.send(resp);
                                        }
                                    }
                                    Ok(ClientFrame::Notification(n)) => {
                                        if let Some(ws) = shared.waits.lock().remove(&n.id) {
                                            for w in ws {
                                                let _ = w.send(n.clone());
                                            }
                                        }
                                    }
                                    // A Request from the server, or garbage.
                                    Ok(ClientFrame::Request { .. }) => {
                                        break "protocol violation".to_string()
                                    }
                                    Err(e) => break e.to_string(),
                                }
                            }
                            Ok(FrameEvent::Eof) => break "server closed the connection".into(),
                            Ok(FrameEvent::Idle) => {} // no read timeout set; defensive
                            Err(e) => break e.to_string(),
                        }
                    };
                    shared.poison(&why);
                })
                .map_err(|e| Error::Io(e.to_string()))?;
        }
        Ok(TcpTransport {
            writer: Mutex::new(stream),
            seq: AtomicU64::new(1),
            shared,
            server,
        })
    }

    fn rpc(&self, req: ClientRequest) -> Result<ClientResponse> {
        if self.shared.dead.load(Ordering::Acquire) {
            return Err(Error::Io(format!(
                "connection to {} is closed",
                self.server
            )));
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.shared.rpc.lock().insert(seq, tx);
        let bytes = ClientFrame::Request { seq, req }.encode_to_vec();
        if let Err(e) = write_frame(&mut *self.writer.lock(), &bytes, MAX_CLIENT_FRAME) {
            self.shared.rpc.lock().remove(&seq);
            return Err(e);
        }
        match rx.recv_timeout(RPC_TIMEOUT) {
            Ok(resp) => resp,
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                self.shared.rpc.lock().remove(&seq);
                Err(Error::Timeout(format!(
                    "no RPC response from {} within {RPC_TIMEOUT:?}",
                    self.server
                )))
            }
            // The reader poisoned the map and dropped our sender.
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                Err(Error::Io(format!("connection to {} lost", self.server)))
            }
        }
    }

    fn unregister_local(&self, id: &GlobalTxId, tx: &Sender<TxNotification>) {
        let mut waits = self.shared.waits.lock();
        if let Some(ws) = waits.get_mut(id) {
            ws.retain(|s| !s.same_channel(tx));
            if ws.is_empty() {
                waits.remove(id);
            }
        }
    }
}

impl NodeTransport for TcpTransport {
    fn call(&self, req: ClientRequest) -> Result<ClientResponse> {
        self.rpc(req)
    }

    fn wait_for(&self, id: GlobalTxId) -> Result<Receiver<TxNotification>> {
        // Local registration first: once the server acknowledges, a
        // notification may already be racing back.
        let (tx, rx) = bounded(1);
        self.shared
            .waits
            .lock()
            .entry(id)
            .or_default()
            .push(tx.clone());
        match self.rpc(ClientRequest::WaitFor { id }) {
            Ok(_) => Ok(rx),
            Err(e) => {
                self.unregister_local(&id, &tx);
                Err(e)
            }
        }
    }

    fn wait_for_batch(&self, ids: &[GlobalTxId]) -> Result<Receiver<TxNotification>> {
        let (tx, rx) = bounded(ids.len());
        {
            let mut waits = self.shared.waits.lock();
            for id in ids {
                waits.entry(*id).or_default().push(tx.clone());
            }
        }
        match self.rpc(ClientRequest::WaitForBatch { ids: ids.to_vec() }) {
            Ok(_) => Ok(rx),
            Err(e) => {
                for id in ids {
                    self.unregister_local(id, &tx);
                }
                Err(e)
            }
        }
    }

    fn cancel_wait(&self, id: &GlobalTxId) -> Result<()> {
        // Drop only abandoned local registrations (receiver gone); the
        // server removes exactly one registration per CancelWait.
        {
            let mut waits = self.shared.waits.lock();
            if let Some(ws) = waits.get_mut(id) {
                ws.retain(|s| !s.is_disconnected());
                if ws.is_empty() {
                    waits.remove(id);
                }
            }
        }
        self.rpc(ClientRequest::CancelWait { id: *id }).map(|_| ())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Closing the socket is the disconnect message: the server's
        // worker sees EOF, drops its Frontend, and the node's hub
        // cancels every registration of this connection.
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

// ------------------------------------------------------- server side

/// Serve `node`'s RPC frontend on `listener` until `stop` is set.
///
/// One accept loop; per connection, a worker thread owning a fresh
/// [`Frontend`] (requests are handled serially *within* a connection,
/// concurrently *across* connections) and a pump thread streaming the
/// connection's notifications. Any malformed frame, socket error, or
/// EOF ends the connection; dropping the `Frontend` cancels its hub
/// registrations.
pub fn serve_client_tcp(
    node: Arc<Node>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    let name = node.config.name.clone();
    thread::Builder::new()
        .name(format!("{name}-tcp-accept"))
        .spawn(move || {
            listener
                .set_nonblocking(true)
                .expect("listener nonblocking");
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let node = Arc::clone(&node);
                        let stop = Arc::clone(&stop);
                        let name = name.clone();
                        let _ = thread::Builder::new()
                            .name(format!("{name}-tcp-conn"))
                            .spawn(move || serve_connection(node, stream, stop));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
                    Err(_) => thread::sleep(POLL),
                }
            }
        })
        .expect("spawn client accept loop")
}

/// One connection's backend: frontend worker + notification pump.
fn serve_connection(node: Arc<Node>, stream: TcpStream, stop: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = stream;

    let (frontend, notify_rx) = Frontend::new(node);
    let conn_done = Arc::new(AtomicBool::new(false));
    let pump = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let conn_done = Arc::clone(&conn_done);
        thread::Builder::new()
            .name("tcp-notify-pump".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) && !conn_done.load(Ordering::Relaxed) {
                    match notify_rx.recv_timeout(POLL) {
                        Ok(n) => {
                            let bytes = ClientFrame::Notification(n).encode_to_vec();
                            if write_frame(&mut *writer.lock(), &bytes, MAX_CLIENT_FRAME).is_err() {
                                break;
                            }
                        }
                        Err(crossbeam_channel::RecvTimeoutError::Timeout) => continue,
                        Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
            .expect("spawn notification pump")
    };

    // Worker: drain requests serially through the frontend. The
    // Frontend lives on this thread; every exit path drops it, which
    // cancels the connection's notification registrations.
    while !stop.load(Ordering::Relaxed) {
        match read_frame(&mut reader, MAX_CLIENT_FRAME) {
            Ok(FrameEvent::Frame(payload)) => match ClientFrame::decode_all(&payload) {
                Ok(ClientFrame::Request { seq, req }) => {
                    let resp = frontend.handle(req);
                    let bytes = ClientFrame::Response { seq, resp }.encode_to_vec();
                    if write_frame(&mut *writer.lock(), &bytes, MAX_CLIENT_FRAME).is_err() {
                        break;
                    }
                }
                // Responses/notifications from a client, or garbage:
                // the stream can no longer be trusted.
                Ok(_) | Err(_) => break,
            },
            Ok(FrameEvent::Idle) => continue,
            Ok(FrameEvent::Eof) | Err(_) => break,
        }
    }
    drop(frontend);
    conn_done.store(true, Ordering::Relaxed);
    let _ = reader.shutdown(Shutdown::Both);
    let _ = pump.join();
}

// ------------------------------------------------------- peer frames

/// One message on a peer↔peer TCP link: a [`PeerMsg`] or the one-time
/// `Hello` identifying the dialing organization.
#[derive(Clone)]
pub enum PeerFrame {
    /// First frame on an outbound link: who is dialing.
    Hello {
        /// The dialing node's organization.
        org: String,
    },
    /// Any peer-plane message (forwarded transactions, blocks,
    /// catch-up requests and responses).
    Msg(PeerMsg),
}

/// Tag for [`PeerFrame::Hello`], outside the [`PeerMsg`] tag space.
const PEER_HELLO_TAG: u8 = 0xFF;

impl Encode for PeerFrame {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            PeerFrame::Hello { org } => {
                enc.put_u8(PEER_HELLO_TAG);
                enc.put_str(org);
            }
            PeerFrame::Msg(m) => m.encode(enc),
        }
    }
}

impl Decode for PeerFrame {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let tag = dec.get_u8()?;
        if tag == PEER_HELLO_TAG {
            return Ok(PeerFrame::Hello {
                org: dec.get_str()?,
            });
        }
        decode_peer_msg_body(tag, dec).map(PeerFrame::Msg)
    }
}

impl Encode for PeerMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            PeerMsg::Tx(tx) => {
                enc.put_u8(0);
                tx.encode(enc);
            }
            PeerMsg::Block(b) => {
                enc.put_u8(1);
                b.encode(enc);
            }
            PeerMsg::SyncRequest { seq, req } => {
                enc.put_u8(2);
                enc.put_u64(*seq);
                req.encode(enc);
            }
            PeerMsg::SyncResponse { seq, resp } => {
                enc.put_u8(3);
                enc.put_u64(*seq);
                resp.encode(enc);
            }
        }
    }
}

impl Decode for PeerMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let tag = dec.get_u8()?;
        decode_peer_msg_body(tag, dec)
    }
}

fn decode_peer_msg_body(tag: u8, dec: &mut Decoder<'_>) -> Result<PeerMsg> {
    use bcrdb_chain::block::Block;
    use bcrdb_chain::sync::{SyncRequest, SyncResponse};
    use bcrdb_chain::tx::Transaction;
    match tag {
        0 => Ok(PeerMsg::Tx(Box::new(Transaction::decode(dec)?))),
        1 => Ok(PeerMsg::Block(Arc::new(Block::decode(dec)?))),
        2 => Ok(PeerMsg::SyncRequest {
            seq: dec.get_u64()?,
            req: SyncRequest::decode(dec)?,
        }),
        3 => Ok(PeerMsg::SyncResponse {
            seq: dec.get_u64()?,
            resp: Arc::new(SyncResponse::decode(dec)?),
        }),
        t => Err(Error::Codec(format!("unknown peer frame tag {t}"))),
    }
}

/// Re-exported peer-plane frame cap so deployment code sizes its
/// buffers from one constant.
pub const PEER_FRAME_CAP: u32 = MAX_PEER_FRAME;

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_chain::sync::SyncRequest;

    #[test]
    fn peer_frames_roundtrip() {
        let hello = PeerFrame::Hello { org: "org2".into() };
        match PeerFrame::decode_all(&hello.encode_to_vec()).unwrap() {
            PeerFrame::Hello { org } => assert_eq!(org, "org2"),
            _ => panic!("expected Hello"),
        }
        let req = PeerFrame::Msg(PeerMsg::SyncRequest {
            seq: 42,
            req: SyncRequest {
                from_height: 3,
                max_blocks: 10,
                allow_snapshot: true,
            },
        });
        match PeerFrame::decode_all(&req.encode_to_vec()).unwrap() {
            PeerFrame::Msg(PeerMsg::SyncRequest { seq: 42, req }) => {
                assert_eq!(req.from_height, 3);
                assert_eq!(req.max_blocks, 10);
                assert!(req.allow_snapshot);
            }
            _ => panic!("expected SyncRequest"),
        }
    }

    #[test]
    fn corrupt_peer_frames_are_codec_errors() {
        assert!(matches!(
            PeerFrame::decode_all(&[42u8]),
            Err(Error::Codec(_))
        ));
        let good = PeerFrame::Hello { org: "org1".into() }.encode_to_vec();
        for cut in 1..good.len() {
            assert!(PeerFrame::decode_all(&good[..cut]).is_err());
        }
    }
}
