//! The wire-level client/node boundary: [`NodeTransport`] and its two
//! backends.
//!
//! The paper's clients reach their database node over PostgreSQL's wire
//! protocol plus a libpq snapshot extension (§4.3) — a *network hop*
//! whose latency is part of every client-observed number in Fig. 8a.
//! This module reifies that hop: the whole session API speaks
//! [`ClientRequest`]/[`ClientResponse`] through a [`NodeTransport`], and
//! the backend decides what the hop costs:
//!
//! * [`InProcess`] — requests dispatch straight into the node's
//!   [`Frontend`] on the caller's thread; notification waits register
//!   directly with the node's hub. Zero overhead; the default.
//! * [`Simulated`] — requests, responses and streamed notifications
//!   travel the same [`SimNetwork`] latency/bandwidth model that peer
//!   and orderer traffic pay, charged their codec-derived byte sizes.
//!   `NetProfile::wan()` therefore applies to client traffic too, which
//!   is what makes client-observed commit latency honest.
//!
//! Both backends cancel every outstanding notification registration when
//! the transport is dropped (an explicit `Disconnect` message on the
//! simulated wire), so an abandoned client cannot leak waiters in the
//! node's notification hub.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::GlobalTxId;
use bcrdb_network::SimNetwork;
use bcrdb_node::frontend::{notification_wire_size, response_wire_size};
use bcrdb_node::{ClientRequest, ClientResponse, Frontend, Node, TxNotification};
use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

/// Which transport backend [`crate::Network::client`] hands out (see
/// `NetworkConfig::client_transport`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Direct in-process dispatch (zero overhead).
    InProcess,
    /// Client traffic travels the simulated network.
    Simulated,
}

/// How long a simulated-wire RPC waits for its response before reporting
/// [`Error::Timeout`]. Generous: request round trips are bounded by the
/// network profile, not by transaction commit times.
const RPC_TIMEOUT: Duration = Duration::from_secs(30);

/// The transport boundary between a client session and its home node.
///
/// Everything the session API does — submissions, queries, prepared
/// statements, notification waits — goes through this trait, so a
/// backend swap changes *where the node is*, never what the API means.
pub trait NodeTransport: Send + Sync {
    /// Round-trip one request to the node's frontend.
    fn call(&self, req: ClientRequest) -> Result<ClientResponse>;

    /// Register for the final status of `id`. The returned channel
    /// delivers at most one notification; registration is complete when
    /// this returns, so a submission sent afterwards cannot race it.
    ///
    /// A registration lives at most as long as the connection: dropping
    /// the transport cancels undeliverable waits (the session layer's
    /// `PendingTx`/`PendingBatch` hold the transport alive until their
    /// notification can no longer be consumed).
    fn wait_for(&self, id: GlobalTxId) -> Result<Receiver<TxNotification>>;

    /// Register one fanned-in channel for a whole batch (one
    /// registration round trip instead of one per transaction).
    fn wait_for_batch(&self, ids: &[GlobalTxId]) -> Result<Receiver<TxNotification>>;

    /// Drop this connection's registration for `id` (after a failed
    /// submission abandoned the wait).
    fn cancel_wait(&self, id: &GlobalTxId) -> Result<()>;
}

// ------------------------------------------------------------ in-process

/// Zero-overhead backend: requests dispatch into the node's [`Frontend`]
/// on the caller's thread, and waits register per-transaction channels
/// directly with the node's notification hub.
pub struct InProcess {
    frontend: Frontend,
    /// This connection's live hub registrations, so dropping the
    /// transport can cancel them (pruned lazily as waits resolve).
    waits: Mutex<Vec<(GlobalTxId, Sender<TxNotification>)>>,
}

impl InProcess {
    /// Connect directly to `node`.
    pub fn new(node: Arc<Node>) -> InProcess {
        // The per-connection notification stream is unused here: each
        // wait gets its own channel (today's zero-copy fast path).
        let (frontend, _notify_rx) = Frontend::new(node);
        InProcess {
            frontend,
            waits: Mutex::new(Vec::new()),
        }
    }

    fn track(&self, regs: Vec<(GlobalTxId, Sender<TxNotification>)>) {
        let mut waits = self.waits.lock();
        waits.retain(|(_, s)| !s.is_disconnected());
        waits.extend(regs);
    }
}

impl NodeTransport for InProcess {
    fn call(&self, req: ClientRequest) -> Result<ClientResponse> {
        // Wait registrations through the raw request enum would deliver
        // into the frontend's (unconsumed) connection stream and silently
        // vanish — reject them so callers use the trait's channel-returning
        // wait methods instead.
        if matches!(
            req,
            ClientRequest::WaitFor { .. }
                | ClientRequest::WaitForBatch { .. }
                | ClientRequest::CancelWait { .. }
        ) {
            return Err(Error::Config(
                "the in-process transport dispatches waits through \
                 NodeTransport::{wait_for, wait_for_batch, cancel_wait}, \
                 not raw WaitFor/CancelWait requests"
                    .into(),
            ));
        }
        self.frontend.handle(req)
    }

    fn wait_for(&self, id: GlobalTxId) -> Result<Receiver<TxNotification>> {
        let (tx, rx) = bounded(1);
        self.frontend
            .node()
            .notifications()
            .register(id, tx.clone());
        self.track(vec![(id, tx)]);
        Ok(rx)
    }

    fn wait_for_batch(&self, ids: &[GlobalTxId]) -> Result<Receiver<TxNotification>> {
        let (tx, rx) = bounded(ids.len());
        let hub = self.frontend.node().notifications();
        let mut regs = Vec::with_capacity(ids.len());
        for id in ids {
            hub.register(*id, tx.clone());
            regs.push((*id, tx.clone()));
        }
        self.track(regs);
        Ok(rx)
    }

    fn cancel_wait(&self, id: &GlobalTxId) -> Result<()> {
        // Cancel only *abandoned* registrations (receiver dropped): a
        // live PendingTx waiting on the same id — e.g. while a duplicate
        // resubmission fails — must keep its registration.
        let hub = self.frontend.node().notifications();
        let mut waits = self.waits.lock();
        for (wid, s) in waits.iter() {
            if wid == id && s.is_disconnected() {
                hub.cancel_for(id, s);
            }
        }
        waits.retain(|(wid, s)| wid != id || !s.is_disconnected());
        Ok(())
    }
}

impl Drop for InProcess {
    fn drop(&mut self) {
        let hub = self.frontend.node().notifications();
        for (id, s) in self.waits.lock().drain(..) {
            hub.cancel_for(&id, &s);
        }
    }
}

// -------------------------------------------------------- simulated wire

/// Messages on the client↔node segment of the simulated network.
// Transient per-RPC frames (same rationale as the node crate's
// `ClientFrame`): boxing the response payload would save no resident
// memory.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub(crate) enum ClientWire {
    /// Client → node: one RPC request.
    Request { seq: u64, req: ClientRequest },
    /// Node → client: the response to request `seq`.
    Response {
        seq: u64,
        resp: Result<ClientResponse>,
    },
    /// Node → client: a streamed transaction notification.
    Notification(TxNotification),
    /// Client → node: the connection is going away; cancel its waits.
    Disconnect,
}

// Endpoint name of a node's RPC frontend on the client network —
// defined once in `bcrdb_network::wire` so the simulated and TCP
// backends can never disagree about addressing.
pub(crate) use bcrdb_network::wire::frontend_endpoint;

struct SimShared {
    /// In-flight RPCs by sequence number.
    rpc: Mutex<HashMap<u64, Sender<Result<ClientResponse>>>>,
    /// Client-side demux of streamed notifications by transaction id.
    waits: Mutex<HashMap<GlobalTxId, Vec<Sender<TxNotification>>>>,
}

/// Simulated-network backend: every request/response/notification pays
/// the configured latency, jitter and bandwidth for its codec-derived
/// size, exactly like peer and orderer traffic.
pub struct Simulated {
    net: Arc<SimNetwork<ClientWire>>,
    /// This connection's unique endpoint.
    endpoint: String,
    /// The home node's frontend endpoint.
    server: String,
    seq: AtomicU64,
    shared: Arc<SimShared>,
}

impl Simulated {
    /// Open a connection: registers `endpoint` on the client network and
    /// spawns the reader that demultiplexes responses and notifications.
    pub(crate) fn connect(
        net: Arc<SimNetwork<ClientWire>>,
        server: String,
        endpoint: String,
    ) -> Simulated {
        let rx = net.register(endpoint.clone());
        let shared = Arc::new(SimShared {
            rpc: Mutex::new(HashMap::new()),
            waits: Mutex::new(HashMap::new()),
        });
        {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("{endpoint}-reader"))
                .spawn(move || {
                    for d in rx.iter() {
                        match d.msg {
                            ClientWire::Response { seq, resp } => {
                                if let Some(tx) = shared.rpc.lock().remove(&seq) {
                                    let _ = tx.send(resp);
                                }
                            }
                            ClientWire::Notification(n) => {
                                if let Some(ws) = shared.waits.lock().remove(&n.id) {
                                    for w in ws {
                                        let _ = w.send(n.clone());
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                })
                .expect("spawn transport reader");
        }
        Simulated {
            net,
            endpoint,
            server,
            seq: AtomicU64::new(1),
            shared,
        }
    }

    fn rpc(&self, req: ClientRequest) -> Result<ClientResponse> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.shared.rpc.lock().insert(seq, tx);
        let size = req.wire_size();
        if let Err(e) = self.net.send(
            &self.endpoint,
            &self.server,
            ClientWire::Request { seq, req },
            size,
        ) {
            self.shared.rpc.lock().remove(&seq);
            return Err(e);
        }
        match rx.recv_timeout(RPC_TIMEOUT) {
            Ok(resp) => resp,
            Err(_) => {
                self.shared.rpc.lock().remove(&seq);
                Err(Error::Timeout(format!(
                    "no RPC response from {} within {RPC_TIMEOUT:?}",
                    self.server
                )))
            }
        }
    }

    fn unregister_local(&self, id: &GlobalTxId, tx: &Sender<TxNotification>) {
        let mut waits = self.shared.waits.lock();
        if let Some(ws) = waits.get_mut(id) {
            ws.retain(|s| !s.same_channel(tx));
            if ws.is_empty() {
                waits.remove(id);
            }
        }
    }
}

impl NodeTransport for Simulated {
    fn call(&self, req: ClientRequest) -> Result<ClientResponse> {
        self.rpc(req)
    }

    fn wait_for(&self, id: GlobalTxId) -> Result<Receiver<TxNotification>> {
        // Local registration first: once the server acknowledges, a
        // notification may already be racing back.
        let (tx, rx) = bounded(1);
        self.shared
            .waits
            .lock()
            .entry(id)
            .or_default()
            .push(tx.clone());
        match self.rpc(ClientRequest::WaitFor { id }) {
            Ok(_) => Ok(rx),
            Err(e) => {
                self.unregister_local(&id, &tx);
                Err(e)
            }
        }
    }

    fn wait_for_batch(&self, ids: &[GlobalTxId]) -> Result<Receiver<TxNotification>> {
        let (tx, rx) = bounded(ids.len());
        {
            let mut waits = self.shared.waits.lock();
            for id in ids {
                waits.entry(*id).or_default().push(tx.clone());
            }
        }
        match self.rpc(ClientRequest::WaitForBatch { ids: ids.to_vec() }) {
            Ok(_) => Ok(rx),
            Err(e) => {
                for id in ids {
                    self.unregister_local(id, &tx);
                }
                Err(e)
            }
        }
    }

    fn cancel_wait(&self, id: &GlobalTxId) -> Result<()> {
        // Drop only abandoned local registrations (receiver gone); a live
        // wait on the same id keeps both its demux entry and — because
        // the server removes exactly one registration per CancelWait —
        // its server-side registration.
        {
            let mut waits = self.shared.waits.lock();
            if let Some(ws) = waits.get_mut(id) {
                ws.retain(|s| !s.is_disconnected());
                if ws.is_empty() {
                    waits.remove(id);
                }
            }
        }
        self.rpc(ClientRequest::CancelWait { id: *id }).map(|_| ())
    }
}

impl Drop for Simulated {
    fn drop(&mut self) {
        // Best effort: tell the node so it cancels this connection's
        // waits; ignore failures (the network may already be down).
        let _ = self
            .net
            .send(&self.endpoint, &self.server, ClientWire::Disconnect, 8);
        self.net.unregister(&self.endpoint);
    }
}

// ------------------------------------------------------ server dispatch

/// Serve a node's RPC frontend on the client network. One dispatcher
/// thread per node routes messages; each connection gets its **own**
/// worker thread owning a [`Frontend`] — the equivalent of PostgreSQL's
/// backend-per-connection model — so a slow request on one connection
/// never head-of-line-blocks another (per-connection FIFO is preserved).
/// [`ClientWire::Disconnect`] tears the connection down.
pub(crate) fn serve_frontend(node: Arc<Node>, net: Arc<SimNetwork<ClientWire>>, endpoint: String) {
    let rx = net.register(endpoint.clone());
    std::thread::Builder::new()
        .name(format!("{endpoint}-dispatch"))
        .spawn(move || {
            // Per-connection request queues; dropping a sender ends its
            // worker, which drops the Frontend (cancelling the
            // connection's hub registrations and notification pump).
            let mut conns: HashMap<String, Sender<(u64, ClientRequest)>> = HashMap::new();
            for d in rx.iter() {
                match d.msg {
                    ClientWire::Request { seq, req } => {
                        let conn = conns
                            .entry(d.from.clone())
                            .or_insert_with(|| open_conn(&node, &net, &endpoint, &d.from));
                        let _ = conn.send((seq, req));
                    }
                    ClientWire::Disconnect => {
                        conns.remove(&d.from);
                    }
                    _ => {}
                }
            }
        })
        .expect("spawn frontend dispatcher");
}

/// Spawn one connection's backend: a worker draining its request queue
/// through a fresh [`Frontend`], plus a pump streaming the connection's
/// notifications back over the wire.
fn open_conn(
    node: &Arc<Node>,
    net: &Arc<SimNetwork<ClientWire>>,
    server: &str,
    client: &str,
) -> Sender<(u64, ClientRequest)> {
    let (frontend, notify_rx) = Frontend::new(Arc::clone(node));
    let (req_tx, req_rx) = crossbeam_channel::unbounded::<(u64, ClientRequest)>();
    {
        let net = Arc::clone(net);
        let server = server.to_string();
        let client = client.to_string();
        std::thread::Builder::new()
            .name(format!("{client}-backend"))
            .spawn(move || {
                // Frontend moves in here: it lives exactly as long as the
                // connection's request queue.
                for (seq, req) in req_rx.iter() {
                    let resp = frontend.handle(req);
                    let size = response_wire_size(&resp);
                    if net
                        .send(&server, &client, ClientWire::Response { seq, resp }, size)
                        .is_err()
                    {
                        return;
                    }
                }
            })
            .expect("spawn connection backend");
    }
    {
        let net = Arc::clone(net);
        let server = server.to_string();
        let client = client.to_string();
        std::thread::Builder::new()
            .name(format!("{client}-notify"))
            .spawn(move || {
                // Stream notifications back over the wire until the
                // frontend (and with it every sender) is gone.
                for n in notify_rx.iter() {
                    let size = notification_wire_size(&n);
                    if net
                        .send(&server, &client, ClientWire::Notification(n), size)
                        .is_err()
                    {
                        return;
                    }
                }
            })
            .expect("spawn notification pump");
    }
    req_tx
}
