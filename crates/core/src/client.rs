//! Client API: asynchronous invocation with notifications (§2(7)) and
//! local read-only queries.

use std::sync::Arc;
use std::time::Duration;

use bcrdb_chain::ledger::TxStatus;
use bcrdb_chain::tx::{Payload, Transaction};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, GlobalTxId};
use bcrdb_common::value::Value;
use bcrdb_crypto::identity::KeyPair;
use bcrdb_engine::result::QueryResult;
use bcrdb_node::TxNotification;
use bcrdb_txn::ssi::Flow;
use crossbeam_channel::Receiver;

use crate::network::NetworkInner;

/// A client user bound to its organization's database node.
pub struct Client {
    name: String,
    key: Arc<KeyPair>,
    net: Arc<NetworkInner>,
    node_idx: usize,
}

/// An in-flight transaction: the id plus the notification channel.
pub struct PendingTx {
    /// Network-unique transaction id.
    pub id: GlobalTxId,
    rx: Receiver<TxNotification>,
}

impl PendingTx {
    /// Wait for the final status.
    pub fn wait(&self, timeout: Duration) -> Result<TxNotification> {
        self.rx
            .recv_timeout(timeout)
            .map_err(|_| Error::internal(format!("timed out waiting for tx {}", self.id.short())))
    }

    /// Wait and require a committed outcome.
    pub fn wait_committed(&self, timeout: Duration) -> Result<TxNotification> {
        let n = self.wait(timeout)?;
        match &n.status {
            TxStatus::Committed => Ok(n),
            TxStatus::Aborted(reason) => Err(Error::internal(format!(
                "transaction {} aborted: {reason}",
                self.id.short()
            ))),
        }
    }
}

impl Client {
    pub(crate) fn new(
        name: String,
        key: Arc<KeyPair>,
        net: Arc<NetworkInner>,
        node_idx: usize,
    ) -> Client {
        Client { name, key, net, node_idx }
    }

    /// The client's registered name (`org/user`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The home node's committed chain height (the `libpq` extension of
    /// §4.3 that lets clients pick a snapshot height).
    pub fn chain_height(&self) -> BlockHeight {
        self.net.nodes[self.node_idx].height()
    }

    /// Invoke a contract asynchronously. In the EO flow the transaction is
    /// submitted to the client's node at the current chain height; in the
    /// OE flow it goes straight to the ordering service (§3.3.1).
    pub fn invoke(&self, contract: &str, args: Vec<Value>) -> Result<PendingTx> {
        match self.net.config.flow {
            Flow::ExecuteOrderParallel => self.invoke_at(contract, args, self.chain_height()),
            Flow::OrderThenExecute => {
                let nonce = self.net.nonce.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let tx = Transaction::new_order_execute(
                    &self.name,
                    Payload::new(contract, args),
                    nonce,
                    &self.key,
                )?;
                let rx = self.net.nodes[self.node_idx].wait_for(tx.id);
                let id = tx.id;
                self.net.ordering.submit(tx)?;
                Ok(PendingTx { id, rx })
            }
        }
    }

    /// EO flow: invoke at an explicit snapshot height (§3.4.1).
    pub fn invoke_at(
        &self,
        contract: &str,
        args: Vec<Value>,
        snapshot_height: BlockHeight,
    ) -> Result<PendingTx> {
        if self.net.config.flow != Flow::ExecuteOrderParallel {
            return Err(Error::Config(
                "snapshot heights only apply to the execute-order-in-parallel flow".into(),
            ));
        }
        let tx = Transaction::new_execute_order(
            &self.name,
            Payload::new(contract, args),
            snapshot_height,
            &self.key,
        )?;
        let node = &self.net.nodes[self.node_idx];
        let rx = node.wait_for(tx.id);
        let id = tx.id;
        node.submit_local(tx)?;
        Ok(PendingTx { id, rx })
    }

    /// Invoke and wait for commitment.
    pub fn invoke_wait(
        &self,
        contract: &str,
        args: Vec<Value>,
        timeout: Duration,
    ) -> Result<TxNotification> {
        self.invoke(contract, args)?.wait_committed(timeout)
    }

    /// Read-only query on the client's node at the current height
    /// (individual SELECTs are not recorded on the blockchain, §3.7).
    pub fn query(&self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        self.net.nodes[self.node_idx].query(sql, params)
    }

    /// Read-only query at a historical height (time travel / audits).
    pub fn query_at(
        &self,
        sql: &str,
        params: &[Value],
        height: BlockHeight,
    ) -> Result<QueryResult> {
        self.net.nodes[self.node_idx].query_at(sql, params, height)
    }

    /// The public key bytes of this client (for `create_usertx`).
    pub fn public_key_bytes(&self) -> Vec<u8> {
        self.key.public_key().to_bytes()
    }
}
