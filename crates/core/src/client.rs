//! The [`Client`]: a user identity connected to its organization's
//! database node through a [`NodeTransport`].
//!
//! The typed session surface (fluent calls, prepared statements, typed
//! rows, batch submission) lives in [`crate::session`]. A client owns
//! its signing key, its transaction flow, and one transport connection;
//! every interaction with the node — submissions, queries, notification
//! waits — travels that connection, so swapping the backend (in-process
//! vs simulated wire) changes costs, never semantics.
//!
//! The pre-session stringly shims (`invoke`/`query`/…) completed their
//! one-release deprecation window and are gone; see `README.md` history
//! for the migration table.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::BlockHeight;
use bcrdb_crypto::identity::KeyPair;
use bcrdb_node::{ClientRequest, ClientResponse, MetricsSnapshot};
use bcrdb_txn::ssi::Flow;

use crate::session::WindowState;
use crate::transport::NodeTransport;

/// A client user bound to its organization's database node.
pub struct Client {
    pub(crate) name: String,
    pub(crate) key: Arc<KeyPair>,
    pub(crate) flow: Flow,
    /// OE nonce source, shared network-wide so clients with the same
    /// identity never collide on (user, nonce) transaction ids.
    pub(crate) nonce: Arc<AtomicU64>,
    pub(crate) transport: Arc<dyn NodeTransport>,
    /// Admission control: bounds this client's in-flight transactions.
    pub(crate) window: Arc<WindowState>,
}

impl Client {
    pub(crate) fn new(
        name: String,
        key: Arc<KeyPair>,
        flow: Flow,
        nonce: Arc<AtomicU64>,
        transport: Arc<dyn NodeTransport>,
        window_cap: usize,
    ) -> Client {
        Client {
            name,
            key,
            flow,
            nonce,
            transport,
            window: Arc::new(WindowState::new(window_cap)),
        }
    }

    /// The client's registered name (`org/user`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The transport connection to the home node — the raw RPC surface,
    /// for advanced callers (tests, fault injection, custom drivers).
    pub fn transport(&self) -> &Arc<dyn NodeTransport> {
        &self.transport
    }

    /// The home node's committed chain height (the libpq extension of
    /// §4.3 that lets clients pick a snapshot height). Transport
    /// failures surface as [`Error`] — never as a default height, which
    /// would silently pin snapshot reads to genesis; over a simulated
    /// wire this is a full round trip.
    pub fn chain_height(&self) -> Result<BlockHeight> {
        match self.transport.call(ClientRequest::ChainHeight)? {
            ClientResponse::Height(h) => Ok(h),
            other => Err(Error::internal(format!(
                "unexpected ChainHeight response: {other:?}"
            ))),
        }
    }

    /// Snapshot (and reset) the home node's micro-metrics window.
    pub fn node_metrics(&self) -> Result<MetricsSnapshot> {
        match self.transport.call(ClientRequest::Metrics)? {
            ClientResponse::Metrics(m) => Ok(m),
            other => Err(Error::internal(format!(
                "unexpected Metrics response: {other:?}"
            ))),
        }
    }

    /// Transactions currently in flight under this client's admission
    /// window (observability / tests).
    pub fn in_flight(&self) -> usize {
        self.window.in_flight()
    }

    /// The public key bytes of this client (for `create_usertx`).
    pub fn public_key_bytes(&self) -> Vec<u8> {
        self.key.public_key().to_bytes()
    }
}
