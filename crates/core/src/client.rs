//! The [`Client`]: a user identity bound to its organization's database
//! node.
//!
//! The typed session surface (fluent calls, prepared statements, typed
//! rows, batch submission) lives in [`crate::session`]; this module
//! holds the client identity itself plus the **deprecated** stringly
//! shims (`invoke`/`query`) kept for one release so downstream code can
//! migrate gradually. See `DESIGN.md` ("Deprecation path") for the
//! mapping from old to new calls.

use std::sync::Arc;
use std::time::Duration;

use bcrdb_common::error::Result;
use bcrdb_common::ids::BlockHeight;
use bcrdb_common::value::Value;
use bcrdb_crypto::identity::KeyPair;
use bcrdb_engine::result::QueryResult;
use bcrdb_node::TxNotification;

use crate::network::NetworkInner;
use crate::session::PendingTx;

/// A client user bound to its organization's database node.
pub struct Client {
    pub(crate) name: String,
    pub(crate) key: Arc<KeyPair>,
    pub(crate) net: Arc<NetworkInner>,
    pub(crate) node_idx: usize,
}

impl Client {
    pub(crate) fn new(
        name: String,
        key: Arc<KeyPair>,
        net: Arc<NetworkInner>,
        node_idx: usize,
    ) -> Client {
        Client {
            name,
            key,
            net,
            node_idx,
        }
    }

    /// The client's registered name (`org/user`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The home node's committed chain height (the `libpq` extension of
    /// §4.3 that lets clients pick a snapshot height).
    pub fn chain_height(&self) -> BlockHeight {
        self.net.nodes[self.node_idx].height()
    }

    /// The public key bytes of this client (for `create_usertx`).
    pub fn public_key_bytes(&self) -> Vec<u8> {
        self.key.public_key().to_bytes()
    }

    // ------------------------------------------------- deprecated shims

    /// Invoke a contract asynchronously.
    #[deprecated(since = "0.1.0", note = "use `client.call(name).args(...).submit()`")]
    pub fn invoke(&self, contract: &str, args: Vec<Value>) -> Result<PendingTx> {
        self.submit(crate::session::Call::new(contract).args(args))
    }

    /// Invoke at an explicit snapshot height (EO flow, §3.4.1).
    #[deprecated(
        since = "0.1.0",
        note = "use `client.call(name).args(...).at_height(h).submit()`"
    )]
    pub fn invoke_at(
        &self,
        contract: &str,
        args: Vec<Value>,
        snapshot_height: BlockHeight,
    ) -> Result<PendingTx> {
        self.submit(
            crate::session::Call::new(contract)
                .args(args)
                .at_height(snapshot_height),
        )
    }

    /// Invoke and wait for commitment.
    #[deprecated(
        since = "0.1.0",
        note = "use `client.call(name).args(...).submit_wait(timeout)`"
    )]
    pub fn invoke_wait(
        &self,
        contract: &str,
        args: Vec<Value>,
        timeout: Duration,
    ) -> Result<TxNotification> {
        self.submit(crate::session::Call::new(contract).args(args))?
            .wait_committed(timeout)
    }

    /// Read-only query on the client's node at the current height.
    #[deprecated(
        since = "0.1.0",
        note = "use `client.select(sql).binds(params).fetch()`"
    )]
    pub fn query(&self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        self.net.nodes[self.node_idx].query(sql, params)
    }

    /// Read-only query at a historical height.
    #[deprecated(
        since = "0.1.0",
        note = "use `client.select(sql).binds(params).at_height(h).fetch()`"
    )]
    pub fn query_at(
        &self,
        sql: &str,
        params: &[Value],
        height: BlockHeight,
    ) -> Result<QueryResult> {
        self.net.nodes[self.node_idx].query_at(sql, params, height)
    }
}
