//! System smart contracts and network bootstrap (§3.7).
//!
//! Every node exposes the deploy family at startup:
//!
//! * `create_deploytx(id, sql)` — stage a DDL statement (CREATE/REPLACE/
//!   DROP FUNCTION, CREATE TABLE/INDEX) in the deployment table;
//! * `approve_deploytx(id)` / `reject_deploytx(id, reason)` /
//!   `comment_deploytx(id, text)` — per-organization votes, recorded
//!   on-chain;
//! * `submit_deploytx(id)` — verifies that an admin of **every**
//!   organization approved, then executes the staged DDL.
//!
//! Plus user management (`create_usertx`, `delete_usertx`) which registers
//! or revokes certificates as part of the committed transaction. All
//! system contracts are admin-only and flow through ordinary blockchain
//! transactions, so the network keeps an immutable audit trail of
//! deployments and approvals.

use std::sync::Arc;

use bcrdb_common::error::{AbortReason, Error, Result};
use bcrdb_common::schema::{Column, DataType, TableSchema};
use bcrdb_common::value::Value;
use bcrdb_crypto::identity::{Certificate, PublicKey, Role};
use bcrdb_crypto::mss::MssPublicKey;
use bcrdb_crypto::sha256::sha256;
use bcrdb_engine::access::AccessPolicy;
use bcrdb_engine::exec::{CatalogOp, Executor, StatementEffect};
use bcrdb_node::exec_pool::NativeCtx;
use bcrdb_node::Node;
use bcrdb_sql::ast::Statement;
use bcrdb_storage::index::KeyRange;
use bcrdb_txn::context::VisibleRow;

/// Names of the system contracts.
pub const SYSTEM_CONTRACTS: [&str; 7] = [
    "create_deploytx",
    "approve_deploytx",
    "reject_deploytx",
    "comment_deploytx",
    "submit_deploytx",
    "create_usertx",
    "delete_usertx",
];

/// Create the system tables and register the native system contracts on a
/// node. Called identically on every node before the first block, so the
/// bootstrap state is part of the deterministic genesis (§3.7).
pub fn bootstrap_node(node: &Node) -> Result<()> {
    let catalog = node.catalog();
    if !catalog.contains("deployments") {
        catalog.create_table(TableSchema::new(
            "deployments",
            vec![
                Column::new("id", DataType::Int),
                Column::new("sql", DataType::Text),
                Column::new("creator", DataType::Text),
                Column::new("status", DataType::Text),
            ],
            vec![0],
        )?)?;
    }
    if !catalog.contains("deployment_votes") {
        let mut schema = TableSchema::new(
            "deployment_votes",
            vec![
                Column::new("id", DataType::Text),
                Column::new("deploy_id", DataType::Int),
                Column::new("org", DataType::Text),
                Column::new("vote", DataType::Text),
                Column::nullable("detail", DataType::Text),
            ],
            vec![0],
        )?;
        schema.add_index("votes_deploy_idx", "deploy_id")?;
        catalog.create_table(schema)?;
    }
    if !catalog.contains("network_users") {
        catalog.create_table(TableSchema::new(
            "network_users",
            vec![
                Column::new("name", DataType::Text),
                Column::new("org", DataType::Text),
                Column::new("role", DataType::Text),
                Column::new("status", DataType::Text),
            ],
            vec![0],
        )?)?;
    }

    node.register_native("create_deploytx", Arc::new(create_deploytx));
    node.register_native("approve_deploytx", Arc::new(approve_deploytx));
    node.register_native("reject_deploytx", Arc::new(reject_deploytx));
    node.register_native("comment_deploytx", Arc::new(comment_deploytx));
    node.register_native("submit_deploytx", Arc::new(submit_deploytx));
    node.register_native("create_usertx", Arc::new(create_usertx));
    node.register_native("delete_usertx", Arc::new(delete_usertx));
    for name in SYSTEM_CONTRACTS {
        node.access().set_policy(name, AccessPolicy::AdminOnly);
    }
    Ok(())
}

fn arg_int(args: &[Value], i: usize, what: &str) -> Result<i64> {
    args.get(i)
        .ok_or_else(|| Error::Analysis(format!("missing argument {what}")))?
        .as_i64()
        .map_err(|_| Error::Type(format!("argument {what} must be an integer")))
}

fn arg_text<'a>(args: &'a [Value], i: usize, what: &str) -> Result<&'a str> {
    args.get(i)
        .ok_or_else(|| Error::Analysis(format!("missing argument {what}")))?
        .as_str()
        .map_err(|_| Error::Type(format!("argument {what} must be text")))
}

fn find_deployment(nc: &NativeCtx<'_>, id: i64) -> Result<(Arc<bcrdb_storage::Table>, VisibleRow)> {
    let table = nc.catalog.get("deployments")?;
    let rows = nc
        .ctx
        .scan(&table, Some((0, &KeyRange::eq(Value::Int(id)))))?;
    let row = rows
        .into_iter()
        .next()
        .ok_or_else(|| Error::NotFound(format!("deployment {id}")))?;
    Ok((table, row))
}

/// `create_deploytx(id INT, sql TEXT)` — stage a DDL statement (§3.7 #1).
fn create_deploytx(nc: &NativeCtx<'_>) -> Result<Vec<StatementEffect>> {
    let id = arg_int(nc.args, 0, "deployment id")?;
    let sql = arg_text(nc.args, 1, "sql")?;
    // The statement must parse and be DDL; execution is deferred to
    // submit_deploytx.
    let stmt = bcrdb_sql::parse_statement(sql)?;
    if !matches!(
        stmt,
        Statement::CreateFunction(_)
            | Statement::DropFunction { .. }
            | Statement::CreateTable { .. }
            | Statement::CreateIndex { .. }
            | Statement::DropTable { .. }
    ) {
        return Err(Error::Analysis(
            "deployment transactions may only stage DDL statements".into(),
        ));
    }
    let table = nc.catalog.get("deployments")?;
    nc.ctx.insert(
        &table,
        vec![
            Value::Int(id),
            Value::Text(sql.to_string()),
            Value::Text(nc.invoker.name.clone()),
            Value::Text("pending".into()),
        ],
    )?;
    Ok(vec![])
}

fn record_vote(
    nc: &NativeCtx<'_>,
    deploy_id: i64,
    vote: &str,
    detail: Option<&str>,
    unique_suffix: Option<&str>,
) -> Result<()> {
    // Existence check keeps votes tied to staged deployments.
    find_deployment(nc, deploy_id)?;
    let table = nc.catalog.get("deployment_votes")?;
    let key = match unique_suffix {
        Some(suffix) => format!("{deploy_id}/{}/{suffix}", nc.invoker.org),
        None => format!("{deploy_id}/{}", nc.invoker.org),
    };
    nc.ctx.insert(
        &table,
        vec![
            Value::Text(key),
            Value::Int(deploy_id),
            Value::Text(nc.invoker.org.clone()),
            Value::Text(vote.to_string()),
            detail.map_or(Value::Null, |d| Value::Text(d.to_string())),
        ],
    )?;
    Ok(())
}

/// `approve_deploytx(id INT)` — one approval per organization (the PK on
/// `deploy_id/org` rejects duplicates at commit).
fn approve_deploytx(nc: &NativeCtx<'_>) -> Result<Vec<StatementEffect>> {
    let id = arg_int(nc.args, 0, "deployment id")?;
    record_vote(nc, id, "approve", None, None)?;
    Ok(vec![])
}

/// `reject_deploytx(id INT, reason TEXT)` — rejects and records why.
fn reject_deploytx(nc: &NativeCtx<'_>) -> Result<Vec<StatementEffect>> {
    let id = arg_int(nc.args, 0, "deployment id")?;
    let reason = arg_text(nc.args, 1, "reason")?;
    record_vote(nc, id, "reject", Some(reason), None)?;
    let (table, row) = find_deployment(nc, id)?;
    let mut new_row = row.data.clone();
    new_row[3] = Value::Text("rejected".into());
    nc.ctx.update(&table, &row, new_row)?;
    Ok(vec![])
}

/// `comment_deploytx(id INT, comment TEXT)` — non-binding remarks (§3.7 #5).
fn comment_deploytx(nc: &NativeCtx<'_>) -> Result<Vec<StatementEffect>> {
    let id = arg_int(nc.args, 0, "deployment id")?;
    let comment = arg_text(nc.args, 1, "comment")?;
    let digest = sha256(comment.as_bytes());
    let suffix = format!(
        "{:02x}{:02x}{:02x}{:02x}",
        digest[0], digest[1], digest[2], digest[3]
    );
    record_vote(nc, id, "comment", Some(comment), Some(&suffix))?;
    Ok(vec![])
}

/// `submit_deploytx(id INT)` — §3.7 #2: "executes the SQL statement present
/// in the deployment table after verifying that an admin from each
/// organization has approved the deployment transaction."
fn submit_deploytx(nc: &NativeCtx<'_>) -> Result<Vec<StatementEffect>> {
    let id = arg_int(nc.args, 0, "deployment id")?;
    let (table, row) = find_deployment(nc, id)?;
    let status = row.data[3].as_str()?.to_string();
    if status != "pending" {
        return Err(Error::Abort(AbortReason::ContractError(format!(
            "deployment {id} is {status}, not pending"
        ))));
    }
    // Count approving organizations.
    let votes_table = nc.catalog.get("deployment_votes")?;
    let votes = nc
        .ctx
        .scan(&votes_table, Some((1, &KeyRange::eq(Value::Int(id)))))?;
    let mut approving: Vec<&str> = votes
        .iter()
        .filter(|v| v.data[3].as_str().is_ok_and(|s| s == "approve"))
        .filter_map(|v| v.data[2].as_str().ok())
        .collect();
    approving.sort_unstable();
    approving.dedup();
    let missing: Vec<&String> = nc
        .orgs
        .iter()
        .filter(|o| !approving.contains(&o.as_str()))
        .collect();
    if !missing.is_empty() {
        return Err(Error::Abort(AbortReason::ContractError(format!(
            "deployment {id} lacks approvals from: {missing:?}"
        ))));
    }
    // Execute the staged DDL: produces the deferred catalog op.
    let sql = row.data[1].as_str()?.to_string();
    let stmt = bcrdb_sql::parse_statement(&sql)?;
    let exec = Executor::new(nc.catalog, nc.ctx, &[]);
    let effect = exec.execute(&stmt)?;
    // Mark applied.
    let mut new_row = row.data.clone();
    new_row[3] = Value::Text("applied".into());
    nc.ctx.update(&table, &row, new_row)?;
    Ok(vec![effect])
}

/// Decode a public key from [`PublicKey::to_bytes`] format.
pub fn decode_public_key(bytes: &[u8]) -> Result<PublicKey> {
    match bytes.first() {
        Some(1) if bytes.len() == 37 => {
            let mut root = [0u8; 32];
            root.copy_from_slice(&bytes[1..33]);
            let height = u32::from_be_bytes([bytes[33], bytes[34], bytes[35], bytes[36]]);
            Ok(PublicKey::HashBased(MssPublicKey { root, height }))
        }
        Some(2) if bytes.len() == 33 => {
            let mut d = [0u8; 32];
            d.copy_from_slice(&bytes[1..33]);
            Ok(PublicKey::Sim(d))
        }
        _ => Err(Error::Codec("malformed public key bytes".into())),
    }
}

/// `create_usertx(name TEXT, org TEXT, role TEXT, pubkey BYTES)` —
/// registers a user on-chain and installs the certificate at commit.
fn create_usertx(nc: &NativeCtx<'_>) -> Result<Vec<StatementEffect>> {
    let name = arg_text(nc.args, 0, "name")?.to_string();
    let org = arg_text(nc.args, 1, "org")?.to_string();
    let role_s = arg_text(nc.args, 2, "role")?;
    let role = match role_s {
        "admin" => Role::Admin,
        "client" => Role::Client,
        other => {
            return Err(Error::Analysis(format!(
                "role must be admin or client, got {other}"
            )))
        }
    };
    let Some(Value::Bytes(pk_bytes)) = nc.args.get(3) else {
        return Err(Error::Type("argument pubkey must be bytes".into()));
    };
    let public_key = decode_public_key(pk_bytes)?;
    // Admins may only onboard users of their own organization.
    if org != nc.invoker.org {
        return Err(Error::Abort(AbortReason::AccessDenied(format!(
            "admin of {} cannot create users in {org}",
            nc.invoker.org
        ))));
    }
    let table = nc.catalog.get("network_users")?;
    nc.ctx.insert(
        &table,
        vec![
            Value::Text(name.clone()),
            Value::Text(org.clone()),
            Value::Text(role_s.to_string()),
            Value::Text("active".into()),
        ],
    )?;
    Ok(vec![StatementEffect::Catalog(CatalogOp::RegisterCert(
        Certificate {
            name,
            org,
            role,
            public_key,
        },
    ))])
}

/// `delete_usertx(name TEXT)` — revokes a certificate.
fn delete_usertx(nc: &NativeCtx<'_>) -> Result<Vec<StatementEffect>> {
    let name = arg_text(nc.args, 0, "name")?.to_string();
    let table = nc.catalog.get("network_users")?;
    let rows = nc
        .ctx
        .scan(&table, Some((0, &KeyRange::eq(Value::Text(name.clone())))))?;
    let row = rows
        .into_iter()
        .next()
        .ok_or_else(|| Error::NotFound(format!("user {name}")))?;
    if row.data[1].as_str()? != nc.invoker.org {
        return Err(Error::Abort(AbortReason::AccessDenied(format!(
            "admin of {} cannot delete users of {}",
            nc.invoker.org,
            row.data[1].display_raw()
        ))));
    }
    let mut new_row = row.data.clone();
    new_row[3] = Value::Text("deleted".into());
    nc.ctx.update(&table, &row, new_row)?;
    Ok(vec![StatementEffect::Catalog(CatalogOp::RevokeCert {
        name,
    })])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_crypto::identity::{KeyPair, Scheme};

    #[test]
    fn public_key_codec_roundtrip() {
        let hb = KeyPair::generate("a", b"s", Scheme::HashBased { height: 2 });
        let sim = KeyPair::generate("b", b"s", Scheme::Sim);
        for key in [hb.public_key(), sim.public_key()] {
            let bytes = key.to_bytes();
            let back = decode_public_key(&bytes).unwrap();
            assert_eq!(back, key);
        }
        assert!(decode_public_key(&[9, 1, 2]).is_err());
        assert!(decode_public_key(&[]).is_err());
    }
}
