//! The typed, libpq-style session API, spoken over a [`NodeTransport`].
//!
//! The paper's client interface is PostgreSQL's wire protocol plus a
//! `libpq` extension for snapshot-height pinning (§4.3). This module is
//! our equivalent driver surface; every operation travels the client's
//! transport connection as a typed RPC
//! ([`bcrdb_node::ClientRequest`]/[`bcrdb_node::ClientResponse`]), so
//! the same code runs over the zero-overhead in-process backend and the
//! simulated network:
//!
//! * **Fluent invocation** — [`Client::call`] builds a contract call
//!   argument by argument with [`IntoValue`] conversions, then
//!   [`CallBuilder::submit`]s it as a signed blockchain transaction:
//!
//!   ```ignore
//!   let pending = client.call("transfer").arg(1).arg(2).arg(40.0).submit()?;
//!   pending.wait_committed(timeout)?;
//!   ```
//!
//! * **Prepared read-only statements** — [`Client::prepare`] parses a
//!   SELECT once on the node and returns a **server-side handle**;
//!   executions carry only the handle and fresh parameters. If the
//!   node's bounded statement cache evicts the handle, the driver
//!   re-prepares transparently.
//!
//! * **Typed rows** — [`QueryBuilder::fetch_as`],
//!   `QueryResult::rows_as::<T>()` and `row.get::<i64>("balance")`
//!   decode results into Rust types, with failures as
//!   [`Error::Decode`].
//!
//! * **Batch submission** — [`Client::submit_all`] signs and submits a
//!   whole batch, returning a [`PendingBatch`] whose notifications are
//!   fanned in to a single channel.
//!
//! * **Admission control** — each client bounds its in-flight
//!   transactions (`NetworkConfig::client_window`); a full window is
//!   [`Error::Busy`] *before* anything is signed or submitted. Slots
//!   free when the corresponding [`PendingTx`]/[`PendingBatch`] drops.
//!
//! * **Error taxonomy** — waits distinguish [`Error::Timeout`] (no
//!   final status yet) from [`Error::TxAborted`] (a definitive abort
//!   with the ledger's reason).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_chain::ledger::TxStatus;
use bcrdb_chain::tx::{Payload, Transaction};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, GlobalTxId};
use bcrdb_common::value::{FromValue, IntoValue, Value};
use bcrdb_engine::result::{FromRow, QueryResult};
use bcrdb_node::{ClientRequest, ClientResponse, StatementHandle, TxNotification};
use bcrdb_txn::ssi::Flow;
use crossbeam_channel::Receiver;

use crate::client::Client;
use crate::transport::NodeTransport;

// -------------------------------------------------------------- helpers

/// Round-trip a request that answers with `Ack`.
fn rpc_ack(transport: &dyn NodeTransport, req: ClientRequest) -> Result<()> {
    match transport.call(req)? {
        ClientResponse::Ack => Ok(()),
        other => Err(Error::internal(format!("expected Ack, got {other:?}"))),
    }
}

/// Round-trip a request that answers with `Rows`.
fn rpc_rows(transport: &dyn NodeTransport, req: ClientRequest) -> Result<QueryResult> {
    match transport.call(req)? {
        ClientResponse::Rows(r) => Ok(r),
        other => Err(Error::internal(format!("expected Rows, got {other:?}"))),
    }
}

/// Round-trip a `Prepare`, returning `(handle, param_count)`.
fn rpc_prepare(transport: &dyn NodeTransport, sql: &str) -> Result<(StatementHandle, usize)> {
    match transport.call(ClientRequest::Prepare {
        sql: sql.to_string(),
    })? {
        ClientResponse::Statement {
            handle,
            param_count,
        } => Ok((handle, param_count)),
        other => Err(Error::internal(format!(
            "expected Statement, got {other:?}"
        ))),
    }
}

// ----------------------------------------------------- admission window

/// Shared state of a client's in-flight window (admission control): a
/// bounded count of transactions submitted but not yet released by their
/// [`PendingTx`]/[`PendingBatch`] handle.
pub(crate) struct WindowState {
    cap: usize,
    used: AtomicUsize,
}

impl WindowState {
    pub(crate) fn new(cap: usize) -> WindowState {
        WindowState {
            cap: cap.max(1),
            used: AtomicUsize::new(0),
        }
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    fn acquire(self: &Arc<Self>, n: usize) -> Result<WindowPermit> {
        if n > self.cap {
            return Err(Error::Busy(format!(
                "batch of {n} transactions exceeds the client window of {}",
                self.cap
            )));
        }
        loop {
            let used = self.used.load(Ordering::Relaxed);
            if used + n > self.cap {
                return Err(Error::Busy(format!(
                    "client window full: {used} of {} transactions in flight",
                    self.cap
                )));
            }
            if self
                .used
                .compare_exchange(used, used + n, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Ok(WindowPermit {
                    state: Arc::clone(self),
                    n,
                });
            }
        }
    }
}

/// Releases its window slots on drop.
pub(crate) struct WindowPermit {
    state: Arc<WindowState>,
    n: usize,
}

impl WindowPermit {
    /// Release surplus slots down to `m` (e.g. after batch deduplication
    /// shrank the transaction count the permit was acquired for).
    fn shrink(&mut self, m: usize) {
        if m < self.n {
            self.state.used.fetch_sub(self.n - m, Ordering::Relaxed);
            self.n = m;
        }
    }
}

impl Drop for WindowPermit {
    fn drop(&mut self) {
        self.state.used.fetch_sub(self.n, Ordering::Relaxed);
    }
}

// ------------------------------------------------------------------ calls

/// A contract invocation: name, arguments and an optional pinned
/// snapshot height (EO flow only). Build one standalone with
/// [`Call::new`] (for [`Client::submit_all`]) or fluently through
/// [`Client::call`].
#[derive(Clone, Debug)]
pub struct Call {
    pub(crate) contract: String,
    pub(crate) args: Vec<Value>,
    pub(crate) snapshot_height: Option<BlockHeight>,
}

impl Call {
    /// Start a call to `contract`.
    pub fn new(contract: impl Into<String>) -> Call {
        Call {
            contract: contract.into(),
            args: Vec::new(),
            snapshot_height: None,
        }
    }

    /// Append one argument.
    pub fn arg(mut self, v: impl IntoValue) -> Call {
        self.args.push(v.into_value());
        self
    }

    /// Append several arguments.
    pub fn args<I>(mut self, items: I) -> Call
    where
        I: IntoIterator,
        I::Item: IntoValue,
    {
        self.args
            .extend(items.into_iter().map(IntoValue::into_value));
        self
    }

    /// Pin the transaction to an explicit snapshot height (§3.4.1; the
    /// execute-order-in-parallel flow only).
    pub fn at_height(mut self, height: BlockHeight) -> Call {
        self.snapshot_height = Some(height);
        self
    }

    /// The target contract name.
    pub fn contract(&self) -> &str {
        &self.contract
    }
}

/// Fluent builder for a single invocation, bound to a [`Client`].
#[must_use = "a call builder does nothing until .submit() or .submit_wait()"]
pub struct CallBuilder<'a> {
    client: &'a Client,
    call: Call,
}

impl<'a> CallBuilder<'a> {
    pub(crate) fn new(client: &'a Client, contract: &str) -> CallBuilder<'a> {
        CallBuilder {
            client,
            call: Call::new(contract),
        }
    }

    /// Append one argument.
    pub fn arg(mut self, v: impl IntoValue) -> Self {
        self.call = self.call.arg(v);
        self
    }

    /// Append several arguments.
    pub fn args<I>(mut self, items: I) -> Self
    where
        I: IntoIterator,
        I::Item: IntoValue,
    {
        self.call = self.call.args(items);
        self
    }

    /// Pin the transaction to an explicit snapshot height (§3.4.1; the
    /// execute-order-in-parallel flow only).
    pub fn at_height(mut self, height: BlockHeight) -> Self {
        self.call = self.call.at_height(height);
        self
    }

    /// Detach the accumulated [`Call`] (e.g. to collect into a batch).
    pub fn into_call(self) -> Call {
        self.call
    }

    /// Sign and submit asynchronously; returns the in-flight handle.
    pub fn submit(self) -> Result<PendingTx> {
        self.client.submit(self.call)
    }

    /// Sign, submit, and wait for a **committed** outcome. Returns
    /// [`Error::TxAborted`] if the network aborted the transaction and
    /// [`Error::Timeout`] if no final status arrived within `timeout`.
    pub fn submit_wait(self, timeout: Duration) -> Result<TxNotification> {
        self.submit()?.wait_committed(timeout)
    }

    /// Like [`CallBuilder::submit_wait`], but transparently re-submits on
    /// *retriable* serialization failures (SSI aborts, stale/phantom
    /// snapshot reads) — the §3.4.1 client protocol: "retry at a newer
    /// snapshot height". Calls without an explicit [`Self::at_height`]
    /// re-pin to the fresh chain height on every attempt; explicitly
    /// pinned calls retry at the same height (and so will keep failing if
    /// the pin itself is stale — pinning is the caller's choice).
    pub fn submit_wait_retrying(self, timeout: Duration) -> Result<TxNotification> {
        self.client.submit_retrying(self.call, timeout)
    }
}

// --------------------------------------------------------------- pending

/// An in-flight transaction: the id plus its notification channel. Holds
/// one slot of the client's admission window until dropped, and keeps
/// the transport connection alive so the notification can still be
/// delivered if the [`Client`] itself is dropped first.
pub struct PendingTx {
    /// Network-unique transaction id.
    pub id: GlobalTxId,
    pub(crate) rx: Receiver<TxNotification>,
    pub(crate) _permit: WindowPermit,
    pub(crate) _transport: Arc<dyn NodeTransport>,
}

impl std::fmt::Debug for PendingTx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingTx").field("id", &self.id).finish()
    }
}

impl PendingTx {
    /// Wait for the final status (committed **or** aborted). Returns
    /// [`Error::Timeout`] when no final status arrives in time — the
    /// transaction may still commit later; the caller can keep waiting.
    pub fn wait(&self, timeout: Duration) -> Result<TxNotification> {
        self.rx.recv_timeout(timeout).map_err(|_| {
            Error::Timeout(format!(
                "no final status for transaction {} within {timeout:?}",
                self.id.short()
            ))
        })
    }

    /// Wait and require a committed outcome; a definitive abort becomes
    /// [`Error::TxAborted`] carrying the ledger's reason.
    pub fn wait_committed(&self, timeout: Duration) -> Result<TxNotification> {
        let n = self.wait(timeout)?;
        match &n.status {
            TxStatus::Committed => Ok(n),
            TxStatus::Aborted(reason) => Err(Error::TxAborted {
                id: self.id,
                reason: reason.clone(),
            }),
        }
    }
}

/// A batch of in-flight transactions whose notifications fan in to one
/// channel (one registration on the node instead of one channel per
/// transaction). Holds `len()` slots of the client's admission window
/// until dropped.
pub struct PendingBatch {
    ids: Vec<GlobalTxId>,
    rx: Receiver<TxNotification>,
    _permit: WindowPermit,
    _transport: Arc<dyn NodeTransport>,
}

impl std::fmt::Debug for PendingBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingBatch")
            .field("ids", &self.ids)
            .finish()
    }
}

impl PendingBatch {
    /// Ids in submission order (deduplicated).
    pub fn ids(&self) -> &[GlobalTxId] {
        &self.ids
    }

    /// Number of distinct transactions in flight.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Wait for the final status of **every** transaction in the batch.
    /// Results are returned in submission order regardless of commit
    /// order. [`Error::Timeout`] if any member lacks a final status when
    /// `timeout` elapses.
    pub fn wait_all(&self, timeout: Duration) -> Result<Vec<TxNotification>> {
        let deadline = Instant::now() + timeout;
        let mut by_id: std::collections::HashMap<GlobalTxId, TxNotification> =
            std::collections::HashMap::with_capacity(self.ids.len());
        while by_id.len() < self.ids.len() {
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::Timeout(format!(
                    "batch: {} of {} transactions still unresolved after {timeout:?}",
                    self.ids.len() - by_id.len(),
                    self.ids.len()
                )));
            }
            let n = self.rx.recv_timeout(deadline - now).map_err(|_| {
                Error::Timeout(format!(
                    "batch: {} of {} transactions still unresolved after {timeout:?}",
                    self.ids.len() - by_id.len(),
                    self.ids.len()
                ))
            })?;
            by_id.insert(n.id, n);
        }
        Ok(self
            .ids
            .iter()
            .map(|id| by_id.remove(id).expect("collected all ids"))
            .collect())
    }

    /// Wait for every member and require all of them committed; the
    /// first abort (in submission order) becomes [`Error::TxAborted`].
    pub fn wait_committed_all(&self, timeout: Duration) -> Result<Vec<TxNotification>> {
        let all = self.wait_all(timeout)?;
        for n in &all {
            if let TxStatus::Aborted(reason) = &n.status {
                return Err(Error::TxAborted {
                    id: n.id,
                    reason: reason.clone(),
                });
            }
        }
        Ok(all)
    }
}

// -------------------------------------------------------------- prepared

/// A prepared read-only statement: a **server-side handle** into the
/// home node's bounded statement cache. Parse once, execute many times
/// with fresh parameters; if the node evicts the handle (LRU), the next
/// execution re-prepares transparently.
pub struct Prepared {
    transport: Arc<dyn NodeTransport>,
    sql: String,
    param_count: usize,
    handle: AtomicU64,
}

impl Prepared {
    /// The SQL text this statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Number of `$n` parameters the statement expects.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The current server-side handle (may change if the node evicted
    /// the statement and the driver re-prepared).
    pub fn handle(&self) -> StatementHandle {
        self.handle.load(Ordering::Relaxed)
    }

    /// Execute at the current committed height (hot path: an 8-byte
    /// handle plus the parameters travel the wire, not the SQL text).
    pub fn query(&self, params: &[Value]) -> Result<QueryResult> {
        self.exec(params, None)
    }

    /// Execute at a historical height (time travel / audits).
    pub fn query_at(&self, params: &[Value], height: BlockHeight) -> Result<QueryResult> {
        self.exec(params, Some(height))
    }

    fn exec(&self, params: &[Value], height: Option<BlockHeight>) -> Result<QueryResult> {
        let req = ClientRequest::QueryPrepared {
            handle: self.handle.load(Ordering::Relaxed),
            params: params.to_vec(),
            height,
        };
        match rpc_rows(&*self.transport, req) {
            Err(Error::NotFound(msg)) if msg.contains("prepared statement handle") => {
                // Evicted from the node's bounded cache: re-prepare and
                // retry once with the fresh handle.
                let (handle, _) = rpc_prepare(&*self.transport, &self.sql)?;
                self.handle.store(handle, Ordering::Relaxed);
                rpc_rows(
                    &*self.transport,
                    ClientRequest::QueryPrepared {
                        handle,
                        params: params.to_vec(),
                        height,
                    },
                )
            }
            other => other,
        }
    }

    /// Start a fluent execution with typed parameter binding.
    pub fn run(&self) -> PreparedRun<'_> {
        PreparedRun {
            prepared: self,
            params: Vec::new(),
            height: None,
        }
    }
}

/// Fluent parameter binding for one execution of a [`Prepared`]
/// statement.
#[must_use = "a prepared run does nothing until .fetch()"]
pub struct PreparedRun<'a> {
    prepared: &'a Prepared,
    params: Vec<Value>,
    height: Option<BlockHeight>,
}

impl PreparedRun<'_> {
    /// Bind the next `$n` parameter.
    pub fn bind(mut self, v: impl IntoValue) -> Self {
        self.params.push(v.into_value());
        self
    }

    /// Read from the snapshot at `height` instead of the current tip.
    pub fn at_height(mut self, height: BlockHeight) -> Self {
        self.height = Some(height);
        self
    }

    /// Execute and return the raw result.
    pub fn fetch(self) -> Result<QueryResult> {
        self.prepared.exec(&self.params, self.height)
    }

    /// Execute and decode every row into `T`.
    pub fn fetch_as<T: FromRow>(self) -> Result<Vec<T>> {
        self.fetch()?.rows_as()
    }

    /// Execute and decode the single row into `T`.
    pub fn fetch_one<T: FromRow>(self) -> Result<T> {
        self.fetch()?.one_as()
    }

    /// Execute and decode the single scalar into `T`.
    pub fn fetch_scalar<T: FromValue>(self) -> Result<T> {
        self.fetch()?.scalar_as()
    }
}

// --------------------------------------------------------------- queries

/// Fluent builder for a one-off read-only query, shipped as a single
/// `Query`/`QueryAt` RPC. Server-side, every fetch goes through the
/// node's statement cache, so repeated SQL text is parsed once even
/// without an explicit [`Client::prepare`].
#[must_use = "a query builder does nothing until .fetch()"]
pub struct QueryBuilder<'a> {
    client: &'a Client,
    sql: String,
    params: Vec<Value>,
    height: Option<BlockHeight>,
}

impl<'a> QueryBuilder<'a> {
    pub(crate) fn new(client: &'a Client, sql: &str) -> QueryBuilder<'a> {
        QueryBuilder {
            client,
            sql: sql.to_string(),
            params: Vec::new(),
            height: None,
        }
    }

    /// Bind the next `$n` parameter.
    pub fn bind(mut self, v: impl IntoValue) -> Self {
        self.params.push(v.into_value());
        self
    }

    /// Bind several parameters.
    pub fn binds<I>(mut self, items: I) -> Self
    where
        I: IntoIterator,
        I::Item: IntoValue,
    {
        self.params
            .extend(items.into_iter().map(IntoValue::into_value));
        self
    }

    /// Read from the snapshot at `height` instead of the current tip
    /// (time travel / audits — the §4.3 libpq height extension).
    pub fn at_height(mut self, height: BlockHeight) -> Self {
        self.height = Some(height);
        self
    }

    /// Execute and return the raw result.
    pub fn fetch(self) -> Result<QueryResult> {
        let req = match self.height {
            Some(height) => ClientRequest::QueryAt {
                sql: self.sql,
                params: self.params,
                height,
            },
            None => ClientRequest::Query {
                sql: self.sql,
                params: self.params,
            },
        };
        rpc_rows(&*self.client.transport, req)
    }

    /// Execute and decode every row into `T`.
    pub fn fetch_as<T: FromRow>(self) -> Result<Vec<T>> {
        self.fetch()?.rows_as()
    }

    /// Execute and decode the single row into `T`.
    pub fn fetch_one<T: FromRow>(self) -> Result<T> {
        self.fetch()?.one_as()
    }

    /// Execute and decode the single scalar into `T`.
    pub fn fetch_scalar<T: FromValue>(self) -> Result<T> {
        self.fetch()?.scalar_as()
    }
}

// ------------------------------------------------------- client surface

impl Client {
    /// Start a fluent contract invocation:
    /// `client.call("transfer").arg(1).arg(2).arg(40.0).submit()`.
    pub fn call(&self, contract: &str) -> CallBuilder<'_> {
        CallBuilder::new(self, contract)
    }

    /// Sign and submit a [`Call`] asynchronously. The transaction
    /// travels the transport to the client's node, which executes it
    /// immediately (EO flow, §3.4.1) or proxies it to the ordering
    /// service (OE flow, §3.3.1). A full admission window is
    /// [`Error::Busy`] before anything is signed.
    pub fn submit(&self, call: Call) -> Result<PendingTx> {
        let permit = self.window.acquire(1)?;
        let tx = self.sign_call(call)?;
        let id = tx.id;
        // Register before submitting so the notification cannot race
        // past us; deregister again if submission itself fails.
        let rx = self.transport.wait_for(id)?;
        if let Err(e) = rpc_ack(&*self.transport, ClientRequest::Submit(Box::new(tx))) {
            drop(rx);
            let _ = self.transport.cancel_wait(&id);
            return Err(e);
        }
        Ok(PendingTx {
            id,
            rx,
            _permit: permit,
            _transport: Arc::clone(&self.transport),
        })
    }

    /// Sign and submit a whole batch, fanning every notification into a
    /// single channel. Duplicate calls (same contract, args and
    /// snapshot height hash to the same global id in the EO flow) are
    /// submitted once. Returns a [`PendingBatch`].
    pub fn submit_all<I>(&self, calls: I) -> Result<PendingBatch>
    where
        I: IntoIterator<Item = Call>,
    {
        // Admission first — a full window must be rejected before any
        // signing work (each EO signature also resolves a snapshot
        // height, a round trip over a simulated wire). The permit covers
        // the pre-dedup count and shrinks once duplicates are known.
        let calls: Vec<Call> = calls.into_iter().collect();
        let mut permit = self.window.acquire(calls.len())?;
        let mut txs: Vec<Transaction> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for call in calls {
            let tx = self.sign_call(call)?;
            if seen.insert(tx.id) {
                txs.push(tx);
            }
        }
        let ids: Vec<GlobalTxId> = txs.iter().map(|t| t.id).collect();
        permit.shrink(ids.len());
        // Register the fan-in *before* submitting so no notification can
        // race past the registration.
        let rx = self.transport.wait_for_batch(&ids)?;
        for tx in txs {
            if let Err(e) = rpc_ack(&*self.transport, ClientRequest::Submit(Box::new(tx))) {
                // Members submitted before the failure stay in flight
                // network-side, but the caller gets no batch handle:
                // drop the fan-in channel and prune every registration
                // so the hub does not leak.
                drop(rx);
                for id in &ids {
                    let _ = self.transport.cancel_wait(id);
                }
                return Err(e);
            }
        }
        Ok(PendingBatch {
            ids,
            rx,
            _permit: permit,
            _transport: Arc::clone(&self.transport),
        })
    }

    /// Submit a call and wait for commitment, retrying retriable
    /// serialization failures with a short backoff (each retry re-signs,
    /// and — unless the call pinned a height — re-pins at the fresh
    /// chain height). At most five retries; terminal aborts and
    /// timeouts propagate immediately.
    pub fn submit_retrying(&self, call: Call, timeout: Duration) -> Result<TxNotification> {
        let mut attempts: u64 = 0;
        loop {
            match self.submit(call.clone())?.wait_committed(timeout) {
                Ok(n) => return Ok(n),
                Err(e) if e.is_retriable() && attempts < 5 => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(5 * attempts));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Prepare a read-only statement on this client's node: parsed once
    /// into the node's bounded statement cache, addressed afterwards by
    /// the returned server-side handle.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let (handle, param_count) = rpc_prepare(&*self.transport, sql)?;
        Ok(Prepared {
            transport: Arc::clone(&self.transport),
            sql: sql.to_string(),
            param_count,
            handle: AtomicU64::new(handle),
        })
    }

    /// Start a fluent read-only query:
    /// `client.select("SELECT balance FROM accounts WHERE id = $1").bind(1).fetch()`.
    ///
    /// Reads execute on this client's node only and are not recorded on
    /// the blockchain (§3.7).
    pub fn select(&self, sql: &str) -> QueryBuilder<'_> {
        QueryBuilder::new(self, sql)
    }

    /// The node's query plan for a SELECT, as the planner would run it
    /// right now: one text line per plan node, with estimated and actual
    /// row counts (the statement is executed ANALYZE-style). `sql` may
    /// but need not carry the `EXPLAIN` prefix.
    pub fn explain(&self, sql: &str) -> Result<Vec<String>> {
        let text = sql.trim_start();
        let stmt = if text.len() >= 7 && text[..7].eq_ignore_ascii_case("EXPLAIN") {
            text.to_string()
        } else {
            format!("EXPLAIN {text}")
        };
        let result = self.select(&stmt).fetch()?;
        Ok(result
            .rows_as::<(String,)>()?
            .into_iter()
            .map(|(line,)| line)
            .collect())
    }

    fn sign_call(&self, call: Call) -> Result<Transaction> {
        let Call {
            contract,
            args,
            snapshot_height,
        } = call;
        match self.flow {
            Flow::ExecuteOrderParallel => {
                let height = match snapshot_height {
                    Some(h) => h,
                    None => self.chain_height()?,
                };
                Transaction::new_execute_order(
                    &self.name,
                    Payload::new(&contract, args),
                    height,
                    &self.key,
                )
            }
            Flow::OrderThenExecute => {
                if snapshot_height.is_some() {
                    return Err(Error::Config(
                        "snapshot heights only apply to the execute-order-in-parallel flow".into(),
                    ));
                }
                let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
                Transaction::new_order_execute(
                    &self.name,
                    Payload::new(&contract, args),
                    nonce,
                    &self.key,
                )
            }
        }
    }
}
