//! The typed, libpq-style session API.
//!
//! The paper's client interface is PostgreSQL's wire protocol plus a
//! `libpq` extension for snapshot-height pinning (§4.3). This module is
//! our equivalent driver surface, replacing the stringly
//! `invoke(&str, Vec<Value>)` API:
//!
//! * **Fluent invocation** — [`Client::call`] builds a contract call
//!   argument by argument with [`IntoValue`] conversions, then
//!   [`CallBuilder::submit`]s it as a signed blockchain transaction:
//!
//!   ```ignore
//!   let pending = client.call("transfer").arg(1).arg(2).arg(40.0).submit()?;
//!   pending.wait_committed(timeout)?;
//!   ```
//!
//! * **Prepared read-only statements** — [`Client::prepare`] parses a
//!   SELECT once (shared through the node's statement cache) and
//!   executes it many times with fresh parameters.
//!
//! * **Typed rows** — [`QueryBuilder::fetch_as`],
//!   `QueryResult::rows_as::<T>()` and `row.get::<i64>("balance")`
//!   decode results into Rust types, with failures as
//!   [`Error::Decode`].
//!
//! * **Batch submission** — [`Client::submit_all`] signs and submits a
//!   whole batch, returning a [`PendingBatch`] whose notifications are
//!   fanned in to a single channel.
//!
//! * **Error taxonomy** — waits distinguish [`Error::Timeout`] (no
//!   final status yet) from [`Error::TxAborted`] (a definitive abort
//!   with the ledger's reason).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_chain::ledger::TxStatus;
use bcrdb_chain::tx::{Payload, Transaction};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, GlobalTxId};
use bcrdb_common::value::{FromValue, IntoValue, Value};
use bcrdb_engine::prepared::PreparedQuery;
use bcrdb_engine::result::{FromRow, QueryResult};
use bcrdb_node::TxNotification;
use bcrdb_txn::ssi::Flow;
use crossbeam_channel::Receiver;

use crate::client::Client;
use crate::network::NetworkInner;

// ------------------------------------------------------------------ calls

/// A contract invocation: name, arguments and an optional pinned
/// snapshot height (EO flow only). Build one standalone with
/// [`Call::new`] (for [`Client::submit_all`]) or fluently through
/// [`Client::call`].
#[derive(Clone, Debug)]
pub struct Call {
    pub(crate) contract: String,
    pub(crate) args: Vec<Value>,
    pub(crate) snapshot_height: Option<BlockHeight>,
}

impl Call {
    /// Start a call to `contract`.
    pub fn new(contract: impl Into<String>) -> Call {
        Call {
            contract: contract.into(),
            args: Vec::new(),
            snapshot_height: None,
        }
    }

    /// Append one argument.
    pub fn arg(mut self, v: impl IntoValue) -> Call {
        self.args.push(v.into_value());
        self
    }

    /// Append several arguments.
    pub fn args<I>(mut self, items: I) -> Call
    where
        I: IntoIterator,
        I::Item: IntoValue,
    {
        self.args
            .extend(items.into_iter().map(IntoValue::into_value));
        self
    }

    /// Pin the transaction to an explicit snapshot height (§3.4.1; the
    /// execute-order-in-parallel flow only).
    pub fn at_height(mut self, height: BlockHeight) -> Call {
        self.snapshot_height = Some(height);
        self
    }

    /// The target contract name.
    pub fn contract(&self) -> &str {
        &self.contract
    }
}

/// Fluent builder for a single invocation, bound to a [`Client`].
#[must_use = "a call builder does nothing until .submit() or .submit_wait()"]
pub struct CallBuilder<'a> {
    client: &'a Client,
    call: Call,
}

impl<'a> CallBuilder<'a> {
    pub(crate) fn new(client: &'a Client, contract: &str) -> CallBuilder<'a> {
        CallBuilder {
            client,
            call: Call::new(contract),
        }
    }

    /// Append one argument.
    pub fn arg(mut self, v: impl IntoValue) -> Self {
        self.call = self.call.arg(v);
        self
    }

    /// Append several arguments.
    pub fn args<I>(mut self, items: I) -> Self
    where
        I: IntoIterator,
        I::Item: IntoValue,
    {
        self.call = self.call.args(items);
        self
    }

    /// Pin the transaction to an explicit snapshot height (§3.4.1; the
    /// execute-order-in-parallel flow only).
    pub fn at_height(mut self, height: BlockHeight) -> Self {
        self.call = self.call.at_height(height);
        self
    }

    /// Detach the accumulated [`Call`] (e.g. to collect into a batch).
    pub fn into_call(self) -> Call {
        self.call
    }

    /// Sign and submit asynchronously; returns the in-flight handle.
    pub fn submit(self) -> Result<PendingTx> {
        self.client.submit(self.call)
    }

    /// Sign, submit, and wait for a **committed** outcome. Returns
    /// [`Error::TxAborted`] if the network aborted the transaction and
    /// [`Error::Timeout`] if no final status arrived within `timeout`.
    pub fn submit_wait(self, timeout: Duration) -> Result<TxNotification> {
        self.submit()?.wait_committed(timeout)
    }

    /// Like [`CallBuilder::submit_wait`], but transparently re-submits on
    /// *retriable* serialization failures (SSI aborts, stale/phantom
    /// snapshot reads) — the §3.4.1 client protocol: "retry at a newer
    /// snapshot height". Calls without an explicit [`Self::at_height`]
    /// re-pin to the fresh chain height on every attempt; explicitly
    /// pinned calls retry at the same height (and so will keep failing if
    /// the pin itself is stale — pinning is the caller's choice).
    pub fn submit_wait_retrying(self, timeout: Duration) -> Result<TxNotification> {
        self.client.submit_retrying(self.call, timeout)
    }
}

// --------------------------------------------------------------- pending

/// An in-flight transaction: the id plus its notification channel.
pub struct PendingTx {
    /// Network-unique transaction id.
    pub id: GlobalTxId,
    pub(crate) rx: Receiver<TxNotification>,
}

impl PendingTx {
    /// Wait for the final status (committed **or** aborted). Returns
    /// [`Error::Timeout`] when no final status arrives in time — the
    /// transaction may still commit later; the caller can keep waiting.
    pub fn wait(&self, timeout: Duration) -> Result<TxNotification> {
        self.rx.recv_timeout(timeout).map_err(|_| {
            Error::Timeout(format!(
                "no final status for transaction {} within {timeout:?}",
                self.id.short()
            ))
        })
    }

    /// Wait and require a committed outcome; a definitive abort becomes
    /// [`Error::TxAborted`] carrying the ledger's reason.
    pub fn wait_committed(&self, timeout: Duration) -> Result<TxNotification> {
        let n = self.wait(timeout)?;
        match &n.status {
            TxStatus::Committed => Ok(n),
            TxStatus::Aborted(reason) => Err(Error::TxAborted {
                id: self.id,
                reason: reason.clone(),
            }),
        }
    }
}

/// A batch of in-flight transactions whose notifications fan in to one
/// channel (one registration on the node instead of one channel per
/// transaction).
pub struct PendingBatch {
    ids: Vec<GlobalTxId>,
    rx: Receiver<TxNotification>,
}

impl PendingBatch {
    /// Ids in submission order (deduplicated).
    pub fn ids(&self) -> &[GlobalTxId] {
        &self.ids
    }

    /// Number of distinct transactions in flight.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Wait for the final status of **every** transaction in the batch.
    /// Results are returned in submission order regardless of commit
    /// order. [`Error::Timeout`] if any member lacks a final status when
    /// `timeout` elapses.
    pub fn wait_all(&self, timeout: Duration) -> Result<Vec<TxNotification>> {
        let deadline = Instant::now() + timeout;
        let mut by_id: std::collections::HashMap<GlobalTxId, TxNotification> =
            std::collections::HashMap::with_capacity(self.ids.len());
        while by_id.len() < self.ids.len() {
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::Timeout(format!(
                    "batch: {} of {} transactions still unresolved after {timeout:?}",
                    self.ids.len() - by_id.len(),
                    self.ids.len()
                )));
            }
            let n = self.rx.recv_timeout(deadline - now).map_err(|_| {
                Error::Timeout(format!(
                    "batch: {} of {} transactions still unresolved after {timeout:?}",
                    self.ids.len() - by_id.len(),
                    self.ids.len()
                ))
            })?;
            by_id.insert(n.id, n);
        }
        Ok(self
            .ids
            .iter()
            .map(|id| by_id.remove(id).expect("collected all ids"))
            .collect())
    }

    /// Wait for every member and require all of them committed; the
    /// first abort (in submission order) becomes [`Error::TxAborted`].
    pub fn wait_committed_all(&self, timeout: Duration) -> Result<Vec<TxNotification>> {
        let all = self.wait_all(timeout)?;
        for n in &all {
            if let TxStatus::Aborted(reason) = &n.status {
                return Err(Error::TxAborted {
                    id: n.id,
                    reason: reason.clone(),
                });
            }
        }
        Ok(all)
    }
}

// -------------------------------------------------------------- prepared

/// A prepared read-only statement bound to the client's home node.
/// Parse once, execute many times with fresh parameters.
pub struct Prepared {
    query: Arc<PreparedQuery>,
    net: Arc<NetworkInner>,
    node_idx: usize,
}

impl Prepared {
    /// The SQL text this statement was prepared from.
    pub fn sql(&self) -> &str {
        self.query.sql()
    }

    /// Number of `$n` parameters the statement expects.
    pub fn param_count(&self) -> usize {
        self.query.param_count()
    }

    /// Execute at the current committed height (hot path: no builder
    /// allocation beyond the params).
    pub fn query(&self, params: &[Value]) -> Result<QueryResult> {
        self.net.nodes[self.node_idx].query_prepared(&self.query, params)
    }

    /// Execute at a historical height (time travel / audits).
    pub fn query_at(&self, params: &[Value], height: BlockHeight) -> Result<QueryResult> {
        self.net.nodes[self.node_idx].query_prepared_at(&self.query, params, height)
    }

    /// Start a fluent execution with typed parameter binding.
    pub fn run(&self) -> PreparedRun<'_> {
        PreparedRun {
            prepared: self,
            params: Vec::new(),
            height: None,
        }
    }
}

/// Fluent parameter binding for one execution of a [`Prepared`]
/// statement.
#[must_use = "a prepared run does nothing until .fetch()"]
pub struct PreparedRun<'a> {
    prepared: &'a Prepared,
    params: Vec<Value>,
    height: Option<BlockHeight>,
}

impl PreparedRun<'_> {
    /// Bind the next `$n` parameter.
    pub fn bind(mut self, v: impl IntoValue) -> Self {
        self.params.push(v.into_value());
        self
    }

    /// Read from the snapshot at `height` instead of the current tip.
    pub fn at_height(mut self, height: BlockHeight) -> Self {
        self.height = Some(height);
        self
    }

    /// Execute and return the raw result.
    pub fn fetch(self) -> Result<QueryResult> {
        match self.height {
            Some(h) => self.prepared.query_at(&self.params, h),
            None => self.prepared.query(&self.params),
        }
    }

    /// Execute and decode every row into `T`.
    pub fn fetch_as<T: FromRow>(self) -> Result<Vec<T>> {
        self.fetch()?.rows_as()
    }

    /// Execute and decode the single row into `T`.
    pub fn fetch_one<T: FromRow>(self) -> Result<T> {
        self.fetch()?.one_as()
    }

    /// Execute and decode the single scalar into `T`.
    pub fn fetch_scalar<T: FromValue>(self) -> Result<T> {
        self.fetch()?.scalar_as()
    }
}

// --------------------------------------------------------------- queries

/// Fluent builder for a one-off read-only query. Internally every fetch
/// goes through the node's prepared-statement cache, so repeated SQL
/// text is parsed once even without an explicit [`Client::prepare`].
#[must_use = "a query builder does nothing until .fetch()"]
pub struct QueryBuilder<'a> {
    client: &'a Client,
    sql: String,
    params: Vec<Value>,
    height: Option<BlockHeight>,
}

impl<'a> QueryBuilder<'a> {
    pub(crate) fn new(client: &'a Client, sql: &str) -> QueryBuilder<'a> {
        QueryBuilder {
            client,
            sql: sql.to_string(),
            params: Vec::new(),
            height: None,
        }
    }

    /// Bind the next `$n` parameter.
    pub fn bind(mut self, v: impl IntoValue) -> Self {
        self.params.push(v.into_value());
        self
    }

    /// Bind several parameters.
    pub fn binds<I>(mut self, items: I) -> Self
    where
        I: IntoIterator,
        I::Item: IntoValue,
    {
        self.params
            .extend(items.into_iter().map(IntoValue::into_value));
        self
    }

    /// Read from the snapshot at `height` instead of the current tip
    /// (time travel / audits — the §4.3 libpq height extension).
    pub fn at_height(mut self, height: BlockHeight) -> Self {
        self.height = Some(height);
        self
    }

    /// Execute and return the raw result.
    pub fn fetch(self) -> Result<QueryResult> {
        let node = &self.client.net.nodes[self.client.node_idx];
        let q = node.prepare(&self.sql)?;
        match self.height {
            Some(h) => node.query_prepared_at(&q, &self.params, h),
            None => node.query_prepared(&q, &self.params),
        }
    }

    /// Execute and decode every row into `T`.
    pub fn fetch_as<T: FromRow>(self) -> Result<Vec<T>> {
        self.fetch()?.rows_as()
    }

    /// Execute and decode the single row into `T`.
    pub fn fetch_one<T: FromRow>(self) -> Result<T> {
        self.fetch()?.one_as()
    }

    /// Execute and decode the single scalar into `T`.
    pub fn fetch_scalar<T: FromValue>(self) -> Result<T> {
        self.fetch()?.scalar_as()
    }
}

// ------------------------------------------------------- client surface

impl Client {
    /// Start a fluent contract invocation:
    /// `client.call("transfer").arg(1).arg(2).arg(40.0).submit()`.
    pub fn call(&self, contract: &str) -> CallBuilder<'_> {
        CallBuilder::new(self, contract)
    }

    /// Sign and submit a [`Call`] asynchronously. In the EO flow the
    /// transaction is submitted to the client's node at the call's
    /// snapshot height (default: the current chain height); in the OE
    /// flow it goes straight to the ordering service (§3.3.1).
    pub fn submit(&self, call: Call) -> Result<PendingTx> {
        let tx = self.sign_call(call)?;
        let node = &self.net.nodes[self.node_idx];
        // Register before submitting so the notification cannot race
        // past us; deregister again if submission itself fails.
        let rx = node.wait_for(tx.id);
        let id = tx.id;
        let submitted = match self.net.config.flow {
            Flow::ExecuteOrderParallel => node.submit_local(tx),
            Flow::OrderThenExecute => self.net.ordering.submit(tx),
        };
        if let Err(e) = submitted {
            drop(rx);
            node.cancel_wait(&id);
            return Err(e);
        }
        Ok(PendingTx { id, rx })
    }

    /// Sign and submit a whole batch, fanning every notification into a
    /// single channel. Duplicate calls (same contract, args and
    /// snapshot height hash to the same global id in the EO flow) are
    /// submitted once. Returns a [`PendingBatch`].
    pub fn submit_all<I>(&self, calls: I) -> Result<PendingBatch>
    where
        I: IntoIterator<Item = Call>,
    {
        let mut txs: Vec<Transaction> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for call in calls {
            let tx = self.sign_call(call)?;
            if seen.insert(tx.id) {
                txs.push(tx);
            }
        }
        let ids: Vec<GlobalTxId> = txs.iter().map(|t| t.id).collect();
        let node = &self.net.nodes[self.node_idx];
        // Register the fan-in *before* submitting so no notification can
        // race past the registration.
        let rx = node.wait_for_batch(&ids);
        let flow = self.net.config.flow;
        for tx in txs {
            let submitted = match flow {
                Flow::ExecuteOrderParallel => node.submit_local(tx),
                Flow::OrderThenExecute => self.net.ordering.submit(tx),
            };
            if let Err(e) = submitted {
                // Members submitted before the failure stay in flight
                // network-side, but the caller gets no batch handle:
                // drop the fan-in channel and prune every registration
                // so the hub does not leak.
                drop(rx);
                for id in &ids {
                    node.cancel_wait(id);
                }
                return Err(e);
            }
        }
        Ok(PendingBatch { ids, rx })
    }

    /// Submit a call and wait for commitment, retrying retriable
    /// serialization failures with a short backoff (each retry re-signs,
    /// and — unless the call pinned a height — re-pins at the fresh
    /// chain height). At most five retries; terminal aborts and
    /// timeouts propagate immediately.
    pub fn submit_retrying(&self, call: Call, timeout: Duration) -> Result<TxNotification> {
        let mut attempts: u64 = 0;
        loop {
            match self.submit(call.clone())?.wait_committed(timeout) {
                Ok(n) => return Ok(n),
                Err(e) if e.is_retriable() && attempts < 5 => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(5 * attempts));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Prepare a read-only statement against this client's node: parsed
    /// once (shared through the node's statement cache), executed many
    /// times with fresh parameters.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let query = self.net.nodes[self.node_idx].prepare(sql)?;
        Ok(Prepared {
            query,
            net: Arc::clone(&self.net),
            node_idx: self.node_idx,
        })
    }

    /// Start a fluent read-only query:
    /// `client.select("SELECT balance FROM accounts WHERE id = $1").bind(1).fetch()`.
    ///
    /// Reads execute on this client's node only and are not recorded on
    /// the blockchain (§3.7).
    pub fn select(&self, sql: &str) -> QueryBuilder<'_> {
        QueryBuilder::new(self, sql)
    }

    fn sign_call(&self, call: Call) -> Result<Transaction> {
        let Call {
            contract,
            args,
            snapshot_height,
        } = call;
        match self.net.config.flow {
            Flow::ExecuteOrderParallel => {
                let height = snapshot_height.unwrap_or_else(|| self.chain_height());
                Transaction::new_execute_order(
                    &self.name,
                    Payload::new(&contract, args),
                    height,
                    &self.key,
                )
            }
            Flow::OrderThenExecute => {
                if snapshot_height.is_some() {
                    return Err(Error::Config(
                        "snapshot heights only apply to the execute-order-in-parallel flow".into(),
                    ));
                }
                let nonce = self
                    .net
                    .nonce
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Transaction::new_order_execute(
                    &self.name,
                    Payload::new(&contract, args),
                    nonce,
                    &self.key,
                )
            }
        }
    }
}
