//! Assembling a permissioned network (§3.7 "Network Bootstrapping").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_chain::block::Block;
use bcrdb_chain::tx::Transaction;
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::BlockHeight;
use bcrdb_crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role, Scheme};
use bcrdb_crypto::sha256::Digest;
use bcrdb_network::SimNetwork;
use bcrdb_node::{Node, NodeConfig, NodeHooks};
use bcrdb_ordering::OrderingService;
use bcrdb_sql::ast::Statement;
use bcrdb_sql::validate::DeterminismRules;
use bcrdb_txn::ssi::Flow;
use crossbeam_channel::unbounded;
use parking_lot::Mutex;

use crate::client::Client;
use crate::config::NetworkConfig;
use crate::system;
use crate::transport::{self, ClientWire, InProcess, NodeTransport, Simulated, TransportKind};

/// Messages between peers (and from the orderer relay to peers).
#[derive(Clone)]
pub enum PeerMsg {
    /// A forwarded transaction (EO flow middleware, §4.2).
    Tx(Box<Transaction>),
    /// A block from the ordering service.
    Block(Arc<Block>),
}

pub(crate) struct NetworkInner {
    pub config: NetworkConfig,
    pub certs: Arc<CertificateRegistry>,
    pub nodes: Vec<Arc<Node>>,
    pub ordering: Arc<OrderingService>,
    pub peer_net: Arc<SimNetwork<PeerMsg>>,
    /// Client↔node RPC traffic (same profile as the peer network); every
    /// node's frontend is served here, used by `Simulated` transports.
    pub client_net: Arc<SimNetwork<ClientWire>>,
    admins: Vec<Arc<KeyPair>>,
    clients: Mutex<HashMap<String, Arc<KeyPair>>>,
    /// OE nonce source shared by every client handle.
    pub nonce: Arc<AtomicU64>,
    /// Unique suffix for client transport endpoints.
    conn_seq: AtomicU64,
}

/// A running permissioned network: one database node per organization, a
/// shared ordering service, and a simulated network in between.
pub struct Network {
    pub(crate) inner: Arc<NetworkInner>,
}

impl Network {
    /// Build and start the network.
    pub fn build(config: NetworkConfig) -> Result<Network> {
        if config.orgs.is_empty() {
            return Err(Error::Config(
                "a network needs at least one organization".into(),
            ));
        }
        let certs = CertificateRegistry::new();
        let mut ordering_cfg = config.ordering.clone();
        ordering_cfg.scheme = config.scheme;
        let ordering = OrderingService::start(ordering_cfg, &certs);
        let peer_net: Arc<SimNetwork<PeerMsg>> = SimNetwork::new(config.net_profile);
        let client_net: Arc<SimNetwork<ClientWire>> = SimNetwork::new(config.net_profile);

        // Per-org admins (their certificates are shared with every node at
        // startup, §3.7).
        let admins: Vec<Arc<KeyPair>> = config
            .orgs
            .iter()
            .map(|org| {
                let name = format!("{org}/admin");
                let key = Arc::new(KeyPair::generate(
                    name.clone(),
                    format!("admin-seed-{org}").as_bytes(),
                    config.scheme,
                ));
                certs.register(Certificate {
                    name,
                    org: org.clone(),
                    role: Role::Admin,
                    public_key: key.public_key(),
                });
                key
            })
            .collect();

        let mut nodes = Vec::with_capacity(config.orgs.len());
        for (i, org) in config.orgs.iter().enumerate() {
            let node_name = format!("{org}/peer");
            // Peer identity (used to attribute checkpoint votes).
            let peer_key = KeyPair::generate(
                node_name.clone(),
                format!("peer-seed-{org}").as_bytes(),
                Scheme::Sim,
            );
            certs.register(Certificate {
                name: node_name.clone(),
                org: org.clone(),
                role: Role::Peer,
                public_key: peer_key.public_key(),
            });

            let mut node_cfg = NodeConfig::new(node_name.clone(), org.clone(), config.flow);
            node_cfg.verify_signatures = config.verify_signatures;
            node_cfg.executor_threads = config.executor_threads;
            node_cfg.serial_execution = config.serial_execution;
            node_cfg.snapshot_interval = config.snapshot_interval;
            node_cfg.min_exec_micros = config.min_exec_micros;
            node_cfg.statement_cache_cap = config.statement_cache_cap;
            node_cfg.data_dir = config.data_root.as_ref().map(|root| root.join(org));
            let node = Node::new(node_cfg, Arc::clone(&certs), config.orgs.clone())?;
            system::bootstrap_node(&node)?;
            if let Some(genesis) = &config.genesis_sql {
                apply_bootstrap_sql(&node, genesis, config.flow)?;
            }
            node.recover()?;

            // Inbound: peer network endpoint → dispatch to the node.
            let net_rx = peer_net.register(node_name.clone());
            let (block_tx, block_rx) = unbounded();
            {
                let node = Arc::clone(&node);
                std::thread::Builder::new()
                    .name(format!("{node_name}-dispatch"))
                    .spawn(move || {
                        for delivered in net_rx.iter() {
                            match delivered.msg {
                                PeerMsg::Tx(tx) => node.on_peer_tx(*tx),
                                PeerMsg::Block(b) => {
                                    if block_tx.send(b).is_err() {
                                        return;
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn dispatch thread");
            }
            node.start(block_rx);

            // Orderer → peer relay, modeling delivery latency/bandwidth.
            let orderer_rx = ordering.subscribe_to(i);
            {
                let peer_net = Arc::clone(&peer_net);
                let to = node_name.clone();
                std::thread::Builder::new()
                    .name(format!("{to}-orderer-relay"))
                    .spawn(move || {
                        for block in orderer_rx.iter() {
                            let size = block.wire_size();
                            if peer_net
                                .send(&format!("orderer-gw-{i}"), &to, PeerMsg::Block(block), size)
                                .is_err()
                            {
                                return;
                            }
                        }
                    })
                    .expect("spawn orderer relay");
            }

            // Outbound hooks.
            let hooks = NodeHooks {
                forward_tx: Some({
                    let peer_net = Arc::clone(&peer_net);
                    let from = node_name.clone();
                    let drop_permille = config.forward_drop_permille;
                    Arc::new(move |tx: &Transaction| {
                        // Deterministic pseudo-random drop keyed by the tx
                        // id: simulates lossy/malicious forwarding; the
                        // block processor executes these as missing txs.
                        if drop_permille > 0 {
                            let h = u64::from_be_bytes(tx.id.0[..8].try_into().expect("8 bytes"));
                            if h % 1000 < drop_permille {
                                return;
                            }
                        }
                        let size = tx.wire_size();
                        let _ = peer_net.broadcast(&from, &PeerMsg::Tx(Box::new(tx.clone())), size);
                    })
                }),
                submit_orderer: Some({
                    let ordering = Arc::clone(&ordering);
                    Arc::new(move |tx: Transaction| ordering.submit(tx))
                }),
                submit_checkpoint: Some({
                    let ordering = Arc::clone(&ordering);
                    Arc::new(move |vote| {
                        let _ = ordering.submit_checkpoint(vote);
                    })
                }),
            };
            node.set_hooks(hooks);

            // Serve the node's client-facing RPC frontend on the client
            // network (used by `Simulated` transports).
            transport::serve_frontend(
                Arc::clone(&node),
                Arc::clone(&client_net),
                transport::frontend_endpoint(&node_name),
            );
            nodes.push(node);
        }

        Ok(Network {
            inner: Arc::new(NetworkInner {
                config,
                certs,
                nodes,
                ordering,
                peer_net,
                client_net,
                admins,
                clients: Mutex::new(HashMap::new()),
                nonce: Arc::new(AtomicU64::new(1)),
                conn_seq: AtomicU64::new(1),
            }),
        })
    }

    /// A second handle to the same running network (cheap: the network is
    /// internally reference-counted). Used by tooling and benchmarks.
    pub fn handle(&self) -> Network {
        Network {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.inner.config
    }

    /// The certificate registry shared by all nodes.
    pub fn certs(&self) -> &Arc<CertificateRegistry> {
        &self.inner.certs
    }

    /// The ordering service.
    pub fn ordering(&self) -> &Arc<OrderingService> {
        &self.inner.ordering
    }

    /// The database node of `org`.
    pub fn node(&self, org: &str) -> Result<Arc<Node>> {
        let idx = self.org_index(org)?;
        Ok(Arc::clone(&self.inner.nodes[idx]))
    }

    /// All nodes, in organization order.
    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.inner.nodes
    }

    fn org_index(&self, org: &str) -> Result<usize> {
        self.inner
            .config
            .orgs
            .iter()
            .position(|o| o == org)
            .ok_or_else(|| Error::NotFound(format!("organization {org}")))
    }

    /// Open a transport connection to the node at `idx`.
    fn connect(&self, idx: usize, kind: TransportKind, who: &str) -> Arc<dyn NodeTransport> {
        match kind {
            TransportKind::InProcess => {
                Arc::new(InProcess::new(Arc::clone(&self.inner.nodes[idx])))
            }
            TransportKind::Simulated => {
                let seq = self.inner.conn_seq.fetch_add(1, Ordering::Relaxed);
                let server = transport::frontend_endpoint(&self.inner.nodes[idx].config.name);
                Arc::new(Simulated::connect(
                    Arc::clone(&self.inner.client_net),
                    server,
                    format!("client:{who}#{seq}"),
                ))
            }
        }
    }

    fn make_client(
        &self,
        idx: usize,
        name: String,
        key: Arc<KeyPair>,
        kind: TransportKind,
    ) -> Client {
        let transport = self.connect(idx, kind, &name);
        Client::new(
            name,
            key,
            self.inner.config.flow,
            Arc::clone(&self.inner.nonce),
            transport,
            self.inner.config.client_window,
        )
    }

    fn client_key(&self, org: &str, name: &str) -> Arc<KeyPair> {
        let mut clients = self.inner.clients.lock();
        if let Some(k) = clients.get(name) {
            Arc::clone(k)
        } else {
            let key = Arc::new(KeyPair::generate(
                name.to_string(),
                format!("client-seed-{name}").as_bytes(),
                self.inner.config.scheme,
            ));
            self.inner.certs.register(Certificate {
                name: name.to_string(),
                org: org.to_string(),
                role: Role::Client,
                public_key: key.public_key(),
            });
            clients.insert(name.to_string(), Arc::clone(&key));
            key
        }
    }

    /// Create (and register) a client user of `org`, connected through
    /// the configured default transport (`NetworkConfig::client_transport`).
    pub fn client(&self, org: &str, user: &str) -> Result<Client> {
        self.client_with_transport(org, user, self.inner.config.client_transport)
    }

    /// Like [`Network::client`], but with an explicit transport backend —
    /// e.g. a `Simulated` connection on a network whose default is
    /// in-process, to measure client-observed latency.
    pub fn client_with_transport(
        &self,
        org: &str,
        user: &str,
        kind: TransportKind,
    ) -> Result<Client> {
        let idx = self.org_index(org)?;
        let name = format!("{org}/{user}");
        let key = self.client_key(org, &name);
        Ok(self.make_client(idx, name, key, kind))
    }

    /// Attach a client whose certificate was registered *on-chain* via
    /// `create_usertx` (the key pair lives with the caller).
    pub fn attach_client(&self, org: &str, user: &str, key: Arc<KeyPair>) -> Result<Client> {
        let idx = self.org_index(org)?;
        Ok(self.make_client(
            idx,
            format!("{org}/{user}"),
            key,
            self.inner.config.client_transport,
        ))
    }

    /// The admin client of `org`.
    pub fn admin(&self, org: &str) -> Result<Client> {
        let idx = self.org_index(org)?;
        Ok(self.make_client(
            idx,
            format!("{org}/admin"),
            Arc::clone(&self.inner.admins[idx]),
            self.inner.config.client_transport,
        ))
    }

    /// Apply bootstrap DDL (tables, indexes, contracts) directly and
    /// identically on every node — the genesis schema setup of §3.7.
    /// Once transactions are flowing, use the deploy system contracts
    /// instead.
    pub fn bootstrap_sql(&self, sql: &str) -> Result<()> {
        for node in &self.inner.nodes {
            apply_bootstrap_sql(node, sql, self.inner.config.flow)?;
        }
        Ok(())
    }

    /// Run the full §3.7 deployment workflow for one DDL statement:
    /// `create_deploytx` by the first org's admin, `approve_deploytx` by
    /// every org's admin, then `submit_deploytx`. Returns when the deploy
    /// transaction commits (or fails). Retriable serialization failures
    /// (the EO flow can see phantom reads under concurrent traffic) are
    /// retried at a fresh snapshot height.
    pub fn deploy_contract(&self, deploy_id: i64, sql: &str) -> Result<()> {
        let timeout = Duration::from_secs(30);
        let first = self.admin(&self.inner.config.orgs[0].clone())?;
        first.submit_retrying(
            crate::session::Call::new("create_deploytx")
                .arg(deploy_id)
                .arg(sql),
            timeout,
        )?;
        for org in self.inner.config.orgs.clone() {
            let admin = self.admin(&org)?;
            admin.submit_retrying(
                crate::session::Call::new("approve_deploytx").arg(deploy_id),
                timeout,
            )?;
        }
        first.submit_retrying(
            crate::session::Call::new("submit_deploytx").arg(deploy_id),
            timeout,
        )?;
        Ok(())
    }

    /// Wait until every node committed at least `height`.
    pub fn await_height(&self, height: BlockHeight, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.inner.nodes.iter().all(|n| n.height() >= height) {
                return Ok(());
            }
            if Instant::now() >= deadline {
                let heights: Vec<BlockHeight> =
                    self.inner.nodes.iter().map(|n| n.height()).collect();
                return Err(Error::internal(format!(
                    "timed out waiting for height {height}: nodes at {heights:?}"
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Per-node full-state hashes (ledger excluded). Equal on honest nodes
    /// at equal heights.
    pub fn state_hashes(&self) -> Vec<(String, Digest)> {
        self.inner
            .nodes
            .iter()
            .map(|n| (n.config.name.clone(), n.state_hash()))
            .collect()
    }

    /// A fresh nonce for OE transaction ids.
    pub fn next_nonce(&self) -> u64 {
        self.inner.nonce.fetch_add(1, Ordering::Relaxed)
    }

    /// Stop every component.
    pub fn shutdown(&self) {
        for n in &self.inner.nodes {
            n.shutdown();
        }
        self.inner.ordering.shutdown();
        self.inner.peer_net.shutdown();
        self.inner.client_net.shutdown();
    }
}

/// Apply bootstrap DDL (tables, indexes, contracts) on one node.
fn apply_bootstrap_sql(node: &Arc<Node>, sql: &str, flow: Flow) -> Result<()> {
    let stmts = bcrdb_sql::parse_statements(sql)?;
    let rules = match flow {
        Flow::OrderThenExecute => DeterminismRules::order_then_execute(),
        Flow::ExecuteOrderParallel => DeterminismRules::execute_order_parallel(),
    };
    for stmt in &stmts {
        match stmt {
            Statement::CreateTable { .. }
            | Statement::CreateIndex { .. }
            | Statement::DropTable { .. } => {
                apply_bootstrap_ddl(node, stmt)?;
            }
            Statement::CreateFunction(def) => {
                bcrdb_engine::procedures::ContractRegistry::validate(def, &rules)?;
                node.contracts().install(def.clone())?;
            }
            Statement::DropFunction { name } => {
                node.contracts().remove(name)?;
            }
            other => {
                return Err(Error::Config(format!(
                    "bootstrap SQL must be DDL only, found {other:?}"
                )));
            }
        }
    }
    Ok(())
}

fn apply_bootstrap_ddl(node: &Arc<Node>, stmt: &Statement) -> Result<()> {
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            primary_key,
        } => {
            let cols: Vec<bcrdb_common::schema::Column> = columns
                .iter()
                .map(|c| bcrdb_common::schema::Column {
                    name: c.name.clone(),
                    dtype: c.dtype,
                    nullable: c.nullable && !c.inline_pk,
                })
                .collect();
            let mut pk: Vec<usize> = columns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.inline_pk)
                .map(|(i, _)| i)
                .collect();
            if !primary_key.is_empty() {
                pk = primary_key
                    .iter()
                    .map(|n| {
                        columns
                            .iter()
                            .position(|c| &c.name == n)
                            .ok_or_else(|| Error::Analysis(format!("unknown pk column {n}")))
                    })
                    .collect::<Result<_>>()?;
            }
            let schema = bcrdb_common::schema::TableSchema::new(name.clone(), cols, pk)?;
            node.catalog().create_table(schema)?;
            Ok(())
        }
        Statement::CreateIndex {
            name,
            table,
            column,
        } => node.catalog().get(table)?.add_index(name, column),
        Statement::DropTable { name, if_exists } => node.catalog().drop_table(name, *if_exists),
        _ => Err(Error::internal("apply_bootstrap_ddl on non-DDL")),
    }
}
