//! Assembling a permissioned network (§3.7 "Network Bootstrapping"),
//! including the peer catch-up plumbing (§3.6): every node serves sync
//! requests from its block store over the peer network, and a lagging
//! node's `sync_fetch` hook round-robins those requests across its peers
//! with failover. [`Network::stop_node`]/[`Network::rejoin_node`] model
//! crash-restart and late join; [`Network::partition`]/[`Network::heal`]
//! model a network partition.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_chain::block::Block;
use bcrdb_chain::sync::{SyncRequest, SyncResponse};
use bcrdb_chain::tx::Transaction;
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::BlockHeight;
use bcrdb_crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role, Scheme};
use bcrdb_crypto::sha256::Digest;
use bcrdb_network::SimNetwork;
use bcrdb_node::{Node, NodeConfig, NodeHooks};
use bcrdb_ordering::OrderingService;
use bcrdb_sql::ast::Statement;
use bcrdb_sql::validate::DeterminismRules;
use bcrdb_txn::ssi::Flow;
use crossbeam_channel::{bounded, unbounded, Sender};
use parking_lot::{Mutex, RwLock};

use crate::client::Client;
use crate::config::NetworkConfig;
use crate::system;
use crate::transport::{self, ClientWire, InProcess, NodeTransport, Simulated, TransportKind};

/// Messages between peers (and from the orderer relay to peers).
#[derive(Clone)]
pub enum PeerMsg {
    /// A forwarded transaction (EO flow middleware, §4.2).
    Tx(Box<Transaction>),
    /// A block from the ordering service.
    Block(Arc<Block>),
    /// A catch-up request from a lagging peer (§3.6).
    SyncRequest {
        /// Correlates the response with the requester's waiting call.
        seq: u64,
        /// The request.
        req: SyncRequest,
    },
    /// The answer to a [`PeerMsg::SyncRequest`].
    SyncResponse {
        /// The request's correlation number.
        seq: u64,
        /// The serving peer's response.
        resp: Arc<SyncResponse>,
    },
}

/// How long a catch-up round trip may take per peer before failing over
/// to the next one. Bounded by profile latency plus the transfer time of
/// one batch/snapshot, not by commit times.
const SYNC_RPC_TIMEOUT: Duration = Duration::from_secs(15);

/// The requesting side of peer catch-up: sends [`PeerMsg::SyncRequest`]s
/// from the node's own peer-network endpoint, round-robinning across the
/// other organizations' peers with failover on timeout or send error.
/// The node's dispatch thread routes [`PeerMsg::SyncResponse`]s back via
/// [`SyncClient::deliver`].
struct SyncClient {
    net: Arc<SimNetwork<PeerMsg>>,
    /// Our own endpoint (requests are sent, and answered, here).
    me: String,
    /// The other organizations' peer endpoints.
    peers: Vec<String>,
    /// In-flight requests by correlation number.
    pending: Mutex<HashMap<u64, Sender<SyncResponse>>>,
    seq: AtomicU64,
    next_peer: AtomicUsize,
}

impl SyncClient {
    fn fetch(&self, req: SyncRequest) -> Result<SyncResponse> {
        if self.peers.is_empty() {
            return Err(Error::NotFound("no peers to sync from".into()));
        }
        let start = self.next_peer.fetch_add(1, Ordering::Relaxed);
        let mut last_err = Error::Timeout("sync fetch never attempted".into());
        for i in 0..self.peers.len() {
            let peer = &self.peers[(start + i) % self.peers.len()];
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = bounded(1);
            self.pending.lock().insert(seq, tx);
            if let Err(e) = self.net.send(
                &self.me,
                peer,
                PeerMsg::SyncRequest { seq, req },
                req.wire_size(),
            ) {
                self.pending.lock().remove(&seq);
                last_err = e;
                continue;
            }
            match rx.recv_timeout(SYNC_RPC_TIMEOUT) {
                Ok(resp) => return Ok(resp),
                Err(_) => {
                    self.pending.lock().remove(&seq);
                    last_err = Error::Timeout(format!(
                        "no sync response from {peer} within {SYNC_RPC_TIMEOUT:?}"
                    ));
                }
            }
        }
        Err(last_err)
    }

    fn deliver(&self, seq: u64, resp: &SyncResponse) {
        if let Some(tx) = self.pending.lock().remove(&seq) {
            let _ = tx.send(resp.clone());
        }
    }
}

pub(crate) struct NetworkInner {
    pub config: NetworkConfig,
    pub certs: Arc<CertificateRegistry>,
    /// One node per organization, in `config.orgs` order. Behind a lock
    /// because [`Network::rejoin_node`] replaces a slot in place.
    pub nodes: RwLock<Vec<Arc<Node>>>,
    pub ordering: Arc<OrderingService>,
    pub peer_net: Arc<SimNetwork<PeerMsg>>,
    /// Client↔node RPC traffic (same profile as the peer network); every
    /// node's frontend is served here, used by `Simulated` transports.
    pub client_net: Arc<SimNetwork<ClientWire>>,
    admins: Vec<Arc<KeyPair>>,
    clients: Mutex<HashMap<String, Arc<KeyPair>>>,
    /// OE nonce source shared by every client handle.
    pub nonce: Arc<AtomicU64>,
    /// Unique suffix for client transport endpoints.
    conn_seq: AtomicU64,
    /// Per-org kill switches for the orderer relay threads, so
    /// [`Network::stop_node`] can retire a relay (it exits at its next
    /// delivery without sending) and a rejoined node's fresh relay never
    /// duplicates block traffic.
    relay_stops: RelayStops,
}

/// See `NetworkInner::relay_stops`.
type RelayStops = Arc<Mutex<HashMap<String, Arc<AtomicBool>>>>;

/// A running permissioned network: one database node per organization, a
/// shared ordering service, and a simulated network in between.
pub struct Network {
    pub(crate) inner: Arc<NetworkInner>,
}

impl Network {
    /// Build and start the network.
    pub fn build(config: NetworkConfig) -> Result<Network> {
        if config.orgs.is_empty() {
            return Err(Error::Config(
                "a network needs at least one organization".into(),
            ));
        }
        let certs = CertificateRegistry::new();
        let mut ordering_cfg = config.ordering.clone();
        ordering_cfg.scheme = config.scheme;
        let ordering = OrderingService::start(ordering_cfg, &certs);
        let peer_net: Arc<SimNetwork<PeerMsg>> = SimNetwork::new(config.net_profile);
        let client_net: Arc<SimNetwork<ClientWire>> = SimNetwork::new(config.net_profile);

        // Per-org admins (their certificates are shared with every node at
        // startup, §3.7).
        let admins: Vec<Arc<KeyPair>> = config
            .orgs
            .iter()
            .map(|org| {
                let name = format!("{org}/admin");
                let key = Arc::new(KeyPair::generate(
                    name.clone(),
                    format!("admin-seed-{org}").as_bytes(),
                    config.scheme,
                ));
                certs.register(Certificate {
                    name,
                    org: org.clone(),
                    role: Role::Admin,
                    public_key: key.public_key(),
                });
                key
            })
            .collect();

        let relay_stops: RelayStops = Arc::new(Mutex::new(HashMap::new()));
        let mut nodes = Vec::with_capacity(config.orgs.len());
        for (i, org) in config.orgs.iter().enumerate() {
            // A fresh network has nothing to catch up on, and peers later
            // in the build order are not even registered yet — so recovery
            // here is local-only (`sync_on_recover: false`).
            nodes.push(launch_node(
                &config,
                org,
                i,
                &certs,
                &ordering,
                &peer_net,
                &client_net,
                &relay_stops,
                false,
            )?);
        }

        Ok(Network {
            inner: Arc::new(NetworkInner {
                config,
                certs,
                nodes: RwLock::new(nodes),
                ordering,
                peer_net,
                client_net,
                admins,
                clients: Mutex::new(HashMap::new()),
                nonce: Arc::new(AtomicU64::new(1)),
                conn_seq: AtomicU64::new(1),
                relay_stops,
            }),
        })
    }

    /// A second handle to the same running network (cheap: the network is
    /// internally reference-counted). Used by tooling and benchmarks.
    pub fn handle(&self) -> Network {
        Network {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.inner.config
    }

    /// The certificate registry shared by all nodes.
    pub fn certs(&self) -> &Arc<CertificateRegistry> {
        &self.inner.certs
    }

    /// The ordering service.
    pub fn ordering(&self) -> &Arc<OrderingService> {
        &self.inner.ordering
    }

    /// The database node of `org`.
    pub fn node(&self, org: &str) -> Result<Arc<Node>> {
        let idx = self.org_index(org)?;
        Ok(Arc::clone(&self.inner.nodes.read()[idx]))
    }

    /// All nodes, in organization order (a snapshot: rejoined nodes
    /// replace their slot, so re-read after [`Network::rejoin_node`]).
    pub fn nodes(&self) -> Vec<Arc<Node>> {
        self.inner.nodes.read().clone()
    }

    /// Stop `org`'s node, simulating a crash: the node's processing
    /// threads wind down and its peer- and client-network endpoints
    /// vanish (sends to them fail; the orderer relay stops). The block
    /// store and state snapshot on disk — if the network is persistent —
    /// are left exactly as the crash left them. Restart with
    /// [`Network::rejoin_node`].
    pub fn stop_node(&self, org: &str) -> Result<()> {
        let node = self.node(org)?;
        node.shutdown();
        if let Some(stop) = self.inner.relay_stops.lock().get(org) {
            stop.store(true, Ordering::Relaxed);
        }
        self.inner.peer_net.unregister(&node.config.name);
        self.inner
            .client_net
            .unregister(&transport::frontend_endpoint(&node.config.name));
        Ok(())
    }

    /// Restart `org`'s node after [`Network::stop_node`] (§3.6): reopen
    /// its block store and snapshot (empty for a late joiner), replay
    /// locally, then catch up from peers — fetching missing blocks, or a
    /// fast-sync snapshot when far enough behind — before serving
    /// clients. Returns the caught-up node; existing in-process client
    /// handles keep pointing at the stopped instance, so obtain fresh
    /// clients after a rejoin.
    pub fn rejoin_node(&self, org: &str) -> Result<Arc<Node>> {
        let idx = self.org_index(org)?;
        let node = launch_node(
            &self.inner.config,
            org,
            idx,
            &self.inner.certs,
            &self.inner.ordering,
            &self.inner.peer_net,
            &self.inner.client_net,
            &self.inner.relay_stops,
            true,
        )?;
        self.inner.nodes.write()[idx] = Arc::clone(&node);
        Ok(node)
    }

    /// Cut `org`'s node off the peer network (partition): blocks,
    /// forwarded transactions and sync traffic to or from it are dropped
    /// silently while senders keep succeeding. The node itself keeps
    /// running. Undo with [`Network::heal`], after which the node's
    /// block processor detects the delivery gap and catches up from
    /// peers.
    pub fn partition(&self, org: &str) -> Result<()> {
        let node = self.node(org)?;
        self.inner.peer_net.set_partitioned(&node.config.name, true);
        Ok(())
    }

    /// Reconnect a [`Network::partition`]ed node.
    pub fn heal(&self, org: &str) -> Result<()> {
        let node = self.node(org)?;
        self.inner
            .peer_net
            .set_partitioned(&node.config.name, false);
        Ok(())
    }

    /// Crash orderer replica `idx` (BFT ordering backend only). The
    /// remaining replicas install a new view once pending work goes
    /// unserved for the configured `view_change_timeout`, and peers
    /// subscribed to the dead orderer are re-homed to a live one — any
    /// delivery gap at the splice point is healed by the node-level peer
    /// catch-up.
    pub fn stop_orderer(&self, idx: usize) -> Result<()> {
        self.inner.ordering.stop_orderer(idx)
    }

    /// Stall orderer replica `idx` (BFT only): alive but unresponsive —
    /// a hung leader. Undo with [`Network::unstall_orderer`].
    pub fn stall_orderer(&self, idx: usize) -> Result<()> {
        self.inner.ordering.stall_orderer(idx)
    }

    /// Resume a stalled orderer replica.
    pub fn unstall_orderer(&self, idx: usize) -> Result<()> {
        self.inner.ordering.unstall_orderer(idx)
    }

    fn org_index(&self, org: &str) -> Result<usize> {
        self.inner
            .config
            .orgs
            .iter()
            .position(|o| o == org)
            .ok_or_else(|| Error::NotFound(format!("organization {org}")))
    }

    /// Open a transport connection to the node at `idx`.
    fn connect(&self, idx: usize, kind: TransportKind, who: &str) -> Arc<dyn NodeTransport> {
        let node = Arc::clone(&self.inner.nodes.read()[idx]);
        match kind {
            TransportKind::InProcess => Arc::new(InProcess::new(node)),
            TransportKind::Simulated => {
                let seq = self.inner.conn_seq.fetch_add(1, Ordering::Relaxed);
                let server = transport::frontend_endpoint(&node.config.name);
                Arc::new(Simulated::connect(
                    Arc::clone(&self.inner.client_net),
                    server,
                    format!("client:{who}#{seq}"),
                ))
            }
        }
    }

    fn make_client(
        &self,
        idx: usize,
        name: String,
        key: Arc<KeyPair>,
        kind: TransportKind,
    ) -> Client {
        let transport = self.connect(idx, kind, &name);
        Client::new(
            name,
            key,
            self.inner.config.flow,
            Arc::clone(&self.inner.nonce),
            transport,
            self.inner.config.client_window,
        )
    }

    fn client_key(&self, org: &str, name: &str) -> Arc<KeyPair> {
        let mut clients = self.inner.clients.lock();
        if let Some(k) = clients.get(name) {
            Arc::clone(k)
        } else {
            let key = Arc::new(KeyPair::generate(
                name.to_string(),
                format!("client-seed-{name}").as_bytes(),
                self.inner.config.scheme,
            ));
            self.inner.certs.register(Certificate {
                name: name.to_string(),
                org: org.to_string(),
                role: Role::Client,
                public_key: key.public_key(),
            });
            clients.insert(name.to_string(), Arc::clone(&key));
            key
        }
    }

    /// Create (and register) a client user of `org`, connected through
    /// the configured default transport (`NetworkConfig::client_transport`).
    pub fn client(&self, org: &str, user: &str) -> Result<Client> {
        self.client_with_transport(org, user, self.inner.config.client_transport)
    }

    /// Like [`Network::client`], but with an explicit transport backend —
    /// e.g. a `Simulated` connection on a network whose default is
    /// in-process, to measure client-observed latency.
    pub fn client_with_transport(
        &self,
        org: &str,
        user: &str,
        kind: TransportKind,
    ) -> Result<Client> {
        let idx = self.org_index(org)?;
        let name = format!("{org}/{user}");
        let key = self.client_key(org, &name);
        Ok(self.make_client(idx, name, key, kind))
    }

    /// Attach a client whose certificate was registered *on-chain* via
    /// `create_usertx` (the key pair lives with the caller).
    pub fn attach_client(&self, org: &str, user: &str, key: Arc<KeyPair>) -> Result<Client> {
        let idx = self.org_index(org)?;
        Ok(self.make_client(
            idx,
            format!("{org}/{user}"),
            key,
            self.inner.config.client_transport,
        ))
    }

    /// The admin client of `org`.
    pub fn admin(&self, org: &str) -> Result<Client> {
        let idx = self.org_index(org)?;
        Ok(self.make_client(
            idx,
            format!("{org}/admin"),
            Arc::clone(&self.inner.admins[idx]),
            self.inner.config.client_transport,
        ))
    }

    /// Apply bootstrap DDL (tables, indexes, contracts) directly and
    /// identically on every node — the genesis schema setup of §3.7.
    /// Once transactions are flowing, use the deploy system contracts
    /// instead.
    pub fn bootstrap_sql(&self, sql: &str) -> Result<()> {
        for node in self.nodes() {
            apply_bootstrap_sql(&node, sql, self.inner.config.flow)?;
        }
        Ok(())
    }

    /// Run the full §3.7 deployment workflow for one DDL statement:
    /// `create_deploytx` by the first org's admin, `approve_deploytx` by
    /// every org's admin, then `submit_deploytx`. Returns when the deploy
    /// transaction commits (or fails). Retriable serialization failures
    /// (the EO flow can see phantom reads under concurrent traffic) are
    /// retried at a fresh snapshot height; between steps, every node is
    /// awaited up to the previous step's commit block — an EO submission
    /// executes at its *own node's* current height, so a step whose
    /// predecessor that node has not yet processed would otherwise abort
    /// deterministically ("lacks approvals") rather than retriably.
    pub fn deploy_contract(&self, deploy_id: i64, sql: &str) -> Result<()> {
        let timeout = Duration::from_secs(30);
        let first = self.admin(&self.inner.config.orgs[0].clone())?;
        let staged = first.submit_retrying(
            crate::session::Call::new("create_deploytx")
                .arg(deploy_id)
                .arg(sql),
            timeout,
        )?;
        self.await_height(staged.block, timeout)?;
        let mut approved = staged.block;
        for org in self.inner.config.orgs.clone() {
            let admin = self.admin(&org)?;
            let n = admin.submit_retrying(
                crate::session::Call::new("approve_deploytx").arg(deploy_id),
                timeout,
            )?;
            approved = approved.max(n.block);
        }
        self.await_height(approved, timeout)?;
        first.submit_retrying(
            crate::session::Call::new("submit_deploytx").arg(deploy_id),
            timeout,
        )?;
        Ok(())
    }

    /// Wait until every node committed at least `height` **and** finished
    /// its post-commit work for it (ledger records, checkpoint hashes,
    /// notifications — the pipelined stage 3 may trail the committed
    /// height by a few blocks), so callers can assert on ledger and
    /// checkpoint state immediately after this returns.
    pub fn await_height(&self, height: BlockHeight, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            if self
                .nodes()
                .iter()
                .all(|n| n.height() >= height && n.postcommit_height() >= height)
            {
                return Ok(());
            }
            if Instant::now() >= deadline {
                let heights: Vec<(BlockHeight, BlockHeight)> = self
                    .nodes()
                    .iter()
                    .map(|n| (n.height(), n.postcommit_height()))
                    .collect();
                return Err(Error::internal(format!(
                    "timed out waiting for height {height}: nodes at \
                     (committed, post-commit) {heights:?}"
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Per-node full-state hashes (ledger excluded). Equal on honest nodes
    /// at equal heights.
    pub fn state_hashes(&self) -> Vec<(String, Digest)> {
        self.nodes()
            .iter()
            .map(|n| (n.config.name.clone(), n.state_hash()))
            .collect()
    }

    /// A fresh nonce for OE transaction ids.
    pub fn next_nonce(&self) -> u64 {
        self.inner.nonce.fetch_add(1, Ordering::Relaxed)
    }

    /// Stop every component.
    pub fn shutdown(&self) {
        for n in self.nodes() {
            n.shutdown();
        }
        self.inner.ordering.shutdown();
        self.inner.peer_net.shutdown();
        self.inner.client_net.shutdown();
    }
}

// The peer-network endpoint name of `org`'s database node — shared
// with the TCP deployment via `bcrdb_network::wire`.
use bcrdb_network::wire::peer_endpoint;

/// Construct, wire up and start one organization's node: certificates,
/// bootstrap, peer-network dispatch (transactions, blocks, sync
/// requests/responses), the orderer relay, outbound hooks (including
/// `sync_fetch`), recovery, the block processor and the client-facing
/// RPC frontend.
///
/// With `sync_on_recover`, the `sync_fetch` hook is installed *before*
/// [`Node::recover`], so recovery replays the local store and then
/// catches up from peers to the network head — the crash-restart /
/// late-join path. Without it (fresh network build, where peers may not
/// exist yet), recovery is local-only and the hook is installed after.
#[allow(clippy::too_many_arguments)]
fn launch_node(
    config: &NetworkConfig,
    org: &str,
    idx: usize,
    certs: &Arc<CertificateRegistry>,
    ordering: &Arc<OrderingService>,
    peer_net: &Arc<SimNetwork<PeerMsg>>,
    client_net: &Arc<SimNetwork<ClientWire>>,
    relay_stops: &RelayStops,
    sync_on_recover: bool,
) -> Result<Arc<Node>> {
    let node_name = peer_endpoint(org);
    // Peer identity (used to attribute checkpoint votes). Deterministic
    // from the org seed, so a rejoining node keeps its identity.
    let peer_key = KeyPair::generate(
        node_name.clone(),
        format!("peer-seed-{org}").as_bytes(),
        Scheme::Sim,
    );
    certs.register(Certificate {
        name: node_name.clone(),
        org: org.to_string(),
        role: Role::Peer,
        public_key: peer_key.public_key(),
    });

    let mut node_cfg = NodeConfig::new(node_name.clone(), org.to_string(), config.flow);
    node_cfg.verify_signatures = config.verify_signatures;
    node_cfg.executor_threads = config.executor_threads;
    node_cfg.serial_execution = config.serial_execution;
    node_cfg.snapshot_interval = config.snapshot_interval;
    node_cfg.min_exec_micros = config.min_exec_micros;
    node_cfg.statement_cache_cap = config.statement_cache_cap;
    node_cfg.fsync = config.fsync;
    node_cfg.gap_timeout = config.gap_timeout;
    node_cfg.sync_batch = config.sync_batch;
    node_cfg.snapshot_lag_threshold = config.snapshot_lag_threshold;
    node_cfg.pipeline = config.pipeline;
    node_cfg.apply_workers = config.apply_workers;
    node_cfg.vacuum_interval = config.vacuum_interval;
    node_cfg.data_dir = config.data_root.as_ref().map(|root| root.join(org));
    if config.paged {
        node_cfg.page_dir = config
            .data_root
            .as_ref()
            .map(|root| root.join(org).join("pages"));
        node_cfg.buffer_pool_frames = config.buffer_pool_frames.max(1);
        node_cfg.spill_retention = config.spill_retention.max(1);
    }
    let node = Node::new(node_cfg, Arc::clone(certs), config.orgs.clone())?;
    system::bootstrap_node(&node)?;
    if let Some(genesis) = &config.genesis_sql {
        apply_bootstrap_sql(&node, genesis, config.flow)?;
    }

    let sync_client = Arc::new(SyncClient {
        net: Arc::clone(peer_net),
        me: node_name.clone(),
        peers: config
            .orgs
            .iter()
            .filter(|o| o.as_str() != org)
            .map(|o| peer_endpoint(o))
            .collect(),
        pending: Mutex::new(HashMap::new()),
        seq: AtomicU64::new(1),
        next_peer: AtomicUsize::new(idx), // spread first requests around
    });

    // Inbound: peer network endpoint → dispatch to the node. Registered
    // before recovery so blocks delivered while we catch up queue on the
    // block channel instead of being lost.
    let net_rx = peer_net.register(node_name.clone());
    let (block_tx, block_rx) = unbounded();
    {
        let node = Arc::clone(&node);
        let peer_net = Arc::clone(peer_net);
        let sync_client = Arc::clone(&sync_client);
        let me = node_name.clone();
        std::thread::Builder::new()
            .name(format!("{node_name}-dispatch"))
            .spawn(move || {
                for delivered in net_rx.iter() {
                    match delivered.msg {
                        PeerMsg::Tx(tx) => node.on_peer_tx(*tx),
                        PeerMsg::Block(b) => {
                            if block_tx.send(b).is_err() {
                                return;
                            }
                        }
                        PeerMsg::SyncRequest { seq, req } => {
                            // Serve off-thread: a large batch or snapshot
                            // must not stall transaction/block dispatch.
                            let node = Arc::clone(&node);
                            let peer_net = Arc::clone(&peer_net);
                            let me = me.clone();
                            let to = delivered.from.clone();
                            std::thread::Builder::new()
                                .name(format!("{me}-sync-serve"))
                                .spawn(move || {
                                    let resp = Arc::new(node.serve_sync(&req));
                                    let size = resp.wire_size();
                                    let _ = peer_net.send(
                                        &me,
                                        &to,
                                        PeerMsg::SyncResponse { seq, resp },
                                        size,
                                    );
                                })
                                .expect("spawn sync server thread");
                        }
                        PeerMsg::SyncResponse { seq, resp } => {
                            sync_client.deliver(seq, &resp);
                        }
                    }
                }
            })
            .expect("spawn dispatch thread");
    }

    // Orderer → peer relay, modeling delivery latency/bandwidth. The
    // stop flag retires a stopped node's relay at its next delivery
    // (without sending), so a rejoined node's fresh relay never
    // duplicates block traffic; the retired relay's dropped receiver is
    // then pruned from the ordering service's subscriber list.
    let relay_stop = Arc::new(AtomicBool::new(false));
    relay_stops
        .lock()
        .insert(org.to_string(), Arc::clone(&relay_stop));
    let orderer_rx = ordering.subscribe_to(idx);
    {
        let peer_net = Arc::clone(peer_net);
        let to = node_name.clone();
        let stop = Arc::clone(&relay_stop);
        std::thread::Builder::new()
            .name(format!("{to}-orderer-relay"))
            .spawn(move || {
                for block in orderer_rx.iter() {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let size = block.wire_size();
                    if peer_net
                        .send(
                            &format!("orderer-gw-{idx}"),
                            &to,
                            PeerMsg::Block(block),
                            size,
                        )
                        .is_err()
                    {
                        return;
                    }
                }
            })
            .expect("spawn orderer relay");
    }

    // Outbound hooks.
    let hooks = NodeHooks {
        forward_tx: Some({
            let peer_net = Arc::clone(peer_net);
            let from = node_name.clone();
            let drop_permille = config.forward_drop_permille;
            Arc::new(move |tx: &Transaction| {
                // Deterministic pseudo-random drop keyed by the tx
                // id: simulates lossy/malicious forwarding; the
                // block processor executes these as missing txs.
                if drop_permille > 0 {
                    let h = u64::from_be_bytes(tx.id.0[..8].try_into().expect("8 bytes"));
                    if h % 1000 < drop_permille {
                        return;
                    }
                }
                let size = tx.wire_size();
                let _ = peer_net.broadcast(&from, &PeerMsg::Tx(Box::new(tx.clone())), size);
            })
        }),
        submit_orderer: Some({
            let ordering = Arc::clone(ordering);
            Arc::new(move |tx: Transaction| ordering.submit(tx))
        }),
        submit_checkpoint: Some({
            let ordering = Arc::clone(ordering);
            Arc::new(move |vote| {
                let _ = ordering.submit_checkpoint(vote);
            })
        }),
        // A single-organization network has nobody to sync from.
        sync_fetch: (!sync_client.peers.is_empty()).then(|| {
            let sync_client = Arc::clone(&sync_client);
            Arc::new(move |req: SyncRequest| sync_client.fetch(req)) as _
        }),
        ordering_stats: Some({
            let ordering = Arc::clone(ordering);
            Arc::new(move || {
                let s = ordering.stats_snapshot();
                bcrdb_node::OrderingSnapshot {
                    forwarded: s.forwarded,
                    cut: s.cut,
                    delivered: s.delivered,
                    current_view: s.current_view,
                    view_changes: s.view_changes,
                }
            }) as _
        }),
    };
    let recovered = if sync_on_recover {
        node.set_hooks(hooks);
        node.recover()
    } else {
        node.set_hooks(NodeHooks {
            sync_fetch: None,
            ..hooks.clone()
        });
        let r = node.recover();
        node.set_hooks(hooks);
        r
    };
    if let Err(e) = recovered {
        // Unwind the partial launch: without this, the registered peer
        // endpoint would keep absorbing blocks into a processor channel
        // that never starts.
        node.shutdown();
        relay_stop.store(true, Ordering::Relaxed);
        peer_net.unregister(&node_name);
        return Err(e);
    }
    node.start(block_rx);

    // Serve the node's client-facing RPC frontend on the client
    // network (used by `Simulated` transports) — only now, after the
    // node caught up, so clients never reach a stale replica.
    transport::serve_frontend(
        Arc::clone(&node),
        Arc::clone(client_net),
        transport::frontend_endpoint(&node_name),
    );
    Ok(node)
}

/// Apply bootstrap DDL (tables, indexes, contracts) on one node.
/// Shared with the TCP deployment ([`crate::deploy`]), which applies
/// the same genesis on every node process.
pub(crate) fn apply_bootstrap_sql(node: &Arc<Node>, sql: &str, flow: Flow) -> Result<()> {
    let stmts = bcrdb_sql::parse_statements(sql)?;
    let rules = match flow {
        Flow::OrderThenExecute => DeterminismRules::order_then_execute(),
        Flow::ExecuteOrderParallel => DeterminismRules::execute_order_parallel(),
    };
    for stmt in &stmts {
        match stmt {
            Statement::CreateTable { .. }
            | Statement::CreateIndex { .. }
            | Statement::DropTable { .. } => {
                apply_bootstrap_ddl(node, stmt)?;
            }
            Statement::CreateFunction(def) => {
                bcrdb_engine::procedures::ContractRegistry::validate(def, &rules)?;
                node.contracts().install(def.clone())?;
            }
            Statement::DropFunction { name } => {
                node.contracts().remove(name)?;
            }
            other => {
                return Err(Error::Config(format!(
                    "bootstrap SQL must be DDL only, found {other:?}"
                )));
            }
        }
    }
    Ok(())
}

fn apply_bootstrap_ddl(node: &Arc<Node>, stmt: &Statement) -> Result<()> {
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            primary_key,
        } => {
            let cols: Vec<bcrdb_common::schema::Column> = columns
                .iter()
                .map(|c| bcrdb_common::schema::Column {
                    name: c.name.clone(),
                    dtype: c.dtype,
                    nullable: c.nullable && !c.inline_pk,
                })
                .collect();
            let mut pk: Vec<usize> = columns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.inline_pk)
                .map(|(i, _)| i)
                .collect();
            if !primary_key.is_empty() {
                pk = primary_key
                    .iter()
                    .map(|n| {
                        columns
                            .iter()
                            .position(|c| &c.name == n)
                            .ok_or_else(|| Error::Analysis(format!("unknown pk column {n}")))
                    })
                    .collect::<Result<_>>()?;
            }
            let schema = bcrdb_common::schema::TableSchema::new(name.clone(), cols, pk)?;
            node.catalog().create_table(schema)?;
            Ok(())
        }
        Statement::CreateIndex {
            name,
            table,
            column,
        } => node.catalog().get(table)?.add_index(name, column),
        Statement::DropTable { name, if_exists } => node.catalog().drop_table(name, *if_exists),
        _ => Err(Error::internal("apply_bootstrap_ddl on non-DDL")),
    }
}
