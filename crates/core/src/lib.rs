#![warn(missing_docs)]
//! # bcrdb-core
//!
//! The public API of the blockchain relational database: assemble a
//! permissioned network of organizations (§3.7), obtain clients, deploy
//! smart contracts through the system-contract approval workflow, invoke
//! contracts as signed blockchain transactions and run (provenance)
//! queries.
//!
//! Clients speak to their node through a [`NodeTransport`] (the paper's
//! PostgreSQL-wire + libpq boundary, §4.3): [`InProcess`] for direct
//! zero-overhead dispatch, or [`Simulated`] to route client traffic over
//! the simulated network's latency/bandwidth model like peer and orderer
//! traffic (see [`transport`]).
//!
//! ```no_run
//! use bcrdb_core::{Network, NetworkConfig};
//!
//! let net = Network::build(NetworkConfig::quick(
//!     &["org1", "org2", "org3"],
//!     bcrdb_txn::ssi::Flow::ExecuteOrderParallel,
//! )).unwrap();
//! net.bootstrap_sql(
//!     "CREATE TABLE accounts (id INT PRIMARY KEY, balance FLOAT NOT NULL); \
//!      CREATE FUNCTION open_account(id INT, bal FLOAT) AS $$ \
//!        INSERT INTO accounts VALUES ($1, $2) $$",
//! ).unwrap();
//! let alice = net.client("org1", "alice").unwrap();
//! alice.call("open_account").arg(1).arg(100.0)
//!     .submit_wait(std::time::Duration::from_secs(5)).unwrap();
//! let balance: f64 = alice
//!     .select("SELECT balance FROM accounts WHERE id = $1")
//!     .bind(1)
//!     .fetch_scalar()
//!     .unwrap();
//! println!("balance: {balance}");
//! ```

pub mod client;
pub mod config;
pub mod deploy;
pub mod network;
pub mod session;
pub mod system;
pub mod tcp;
pub mod transport;

pub use bcrdb_node::pool_frames_by_env;
pub use client::Client;
pub use config::NetworkConfig;
pub use deploy::{
    await_height_tcp, deploy_contract_tcp, install_stop_signals, run_node_process,
    run_ordering_process, tcp_admin, tcp_client, ClusterSpec, NodeProc, NodeSpec, OrderingProc,
    TcpCluster, DEFAULT_GENESIS_SQL,
};
pub use network::Network;
pub use session::{
    Call, CallBuilder, PendingBatch, PendingTx, Prepared, PreparedRun, QueryBuilder,
};
pub use tcp::{serve_client_tcp, PeerFrame, TcpTransport};
pub use transport::{InProcess, NodeTransport, Simulated, TransportKind};
