//! Network-level configuration.

use std::path::PathBuf;
use std::time::Duration;

use bcrdb_crypto::identity::Scheme;
use bcrdb_network::NetProfile;
use bcrdb_ordering::OrderingConfig;
use bcrdb_txn::ssi::Flow;

use crate::transport::TransportKind;

/// Configuration for a whole permissioned network.
#[derive(Clone)]
pub struct NetworkConfig {
    /// Participating organizations; each runs one database node.
    pub orgs: Vec<String>,
    /// Transaction flow (§3.3 vs §3.4).
    pub flow: Flow,
    /// Ordering-service configuration (§4.4).
    pub ordering: OrderingConfig,
    /// Signature scheme for client/admin identities.
    pub scheme: Scheme,
    /// Network profile for peer↔peer and orderer→peer traffic
    /// (LAN vs multi-cloud WAN, §5 / Fig 8a).
    pub net_profile: NetProfile,
    /// Verify signatures on the hot path (disable only in protocol
    /// benchmarks; see DESIGN.md).
    pub verify_signatures: bool,
    /// Executor threads per node.
    pub executor_threads: usize,
    /// Serial execution baseline (§5.1 Ethereum comparison).
    pub serial_execution: bool,
    /// Root directory for per-node block stores and snapshots
    /// (`<root>/<org>/`); `None` keeps everything in memory.
    pub data_root: Option<PathBuf>,
    /// State-snapshot interval in blocks (0 = never).
    pub snapshot_interval: u64,
    /// Per-mille of peer-forwarded transactions to drop (EO flow),
    /// simulating lossy or malicious forwarding (§3.5(2)): dropped
    /// transactions are executed as "missing" by the block processor when
    /// their block arrives (§3.4.3), surfacing in the `mt` metric of
    /// Table 5. 0 disables.
    pub forward_drop_permille: u64,
    /// Minimum simulated per-transaction execution time (µs); see
    /// `NodeConfig::min_exec_micros`. Benchmark calibration only.
    pub min_exec_micros: u64,
    /// Genesis DDL (tables, indexes, contracts) applied identically on
    /// every node *before* recovery and before any traffic — the §3.7
    /// bootstrap step. Required for persistent networks so restarted nodes
    /// can replay their chains.
    pub genesis_sql: Option<String>,
    /// Default transport backend for clients: `InProcess` (direct calls,
    /// zero overhead) or `Simulated` (client↔node RPCs travel the
    /// simulated network under `net_profile`, like peer and orderer
    /// traffic). Per-client override: `Network::client_with_transport`.
    pub client_transport: TransportKind,
    /// Per-client admission window: maximum transactions in flight
    /// (submitted, handle not yet dropped) before `submit` returns
    /// `Error::Busy`.
    pub client_window: usize,
    /// Per-node prepared-statement cache bound (LRU entries); see
    /// `NodeConfig::statement_cache_cap`.
    pub statement_cache_cap: usize,
    /// `fsync` each node's block store on append (crash durability
    /// across power loss); see `NodeConfig::fsync`.
    pub fsync: bool,
    /// Delivery-gap timeout before a node's block processor triggers a
    /// peer catch-up round; see `NodeConfig::gap_timeout`.
    pub gap_timeout: Duration,
    /// Blocks per catch-up request; see `NodeConfig::sync_batch`.
    pub sync_batch: u64,
    /// Lag (in blocks) at which a sync server offers a state snapshot
    /// instead of blocks; 0 disables fast-sync. See
    /// `NodeConfig::snapshot_lag_threshold`.
    pub snapshot_lag_threshold: u64,
    /// Pipelined block commit on every node: overlap execution,
    /// the serial commit core and post-commit work across consecutive
    /// blocks. See `NodeConfig::pipeline`. Defaults to on; the
    /// `BCRDB_PIPELINE` environment variable (`off`/`0`/`false`)
    /// disables it network-wide for A/B runs and the CI test matrix.
    pub pipeline: bool,
    /// Write-set apply workers per node for the commit stage; `1`
    /// restores the fully serial apply. See `NodeConfig::apply_workers`.
    /// Defaults from the `BCRDB_APPLY` environment variable
    /// (`serial`/`off`/`1` forces serial, a number sets the pool size,
    /// unset uses the core count) for A/B runs and the CI test matrix.
    pub apply_workers: usize,
    /// Run each node's maintenance vacuum every N blocks (0 = never);
    /// see `NodeConfig::vacuum_interval`.
    pub vacuum_interval: u64,
    /// Disk-backed paged table storage on every node: cold heap
    /// segments spill to 8 KB slotted-page files under
    /// `<data_root>/<org>/pages/` through a per-node buffer pool,
    /// letting committed state exceed RAM (see `NodeConfig::page_dir`
    /// and `docs/ON_DISK_FORMAT.md`). Requires `data_root`.
    pub paged: bool,
    /// Buffer-pool capacity per node in 8 KB frames (minimum 1; only
    /// meaningful with `paged`). Defaults from the `BCRDB_POOL_FRAMES`
    /// environment variable (unset = 1024 frames) for A/B runs and the
    /// CI small-pool matrix; see `NodeConfig::buffer_pool_frames`.
    pub buffer_pool_frames: usize,
    /// Blocks of recent history kept resident on paged nodes; see
    /// `NodeConfig::spill_retention`. Minimum 1.
    pub spill_retention: u64,
}

impl NetworkConfig {
    /// Sensible defaults for tests and examples: solo orderer, small
    /// blocks, short timeout, instant network, simulated signatures.
    pub fn quick(orgs: &[&str], flow: Flow) -> NetworkConfig {
        NetworkConfig {
            orgs: orgs.iter().map(|s| s.to_string()).collect(),
            flow,
            ordering: OrderingConfig::solo(16, Duration::from_millis(50)),
            scheme: Scheme::Sim,
            net_profile: NetProfile::instant(),
            verify_signatures: true,
            executor_threads: 4,
            serial_execution: false,
            data_root: None,
            snapshot_interval: 0,
            forward_drop_permille: 0,
            min_exec_micros: 0,
            genesis_sql: None,
            client_transport: TransportKind::InProcess,
            client_window: 1024,
            statement_cache_cap: 1024,
            fsync: false,
            gap_timeout: Duration::from_secs(1),
            sync_batch: 64,
            snapshot_lag_threshold: 512,
            pipeline: bcrdb_node::pipeline_enabled_by_env(),
            apply_workers: bcrdb_node::apply_workers_by_env(),
            vacuum_interval: 0,
            paged: false,
            buffer_pool_frames: bcrdb_node::pool_frames_by_env(),
            spill_retention: 64,
        }
    }

    /// The paper's default deployment shape: one orderer per organization
    /// (Kafka-style CFT), block timeout 1 s.
    pub fn paper_default(orgs: &[&str], flow: Flow, block_size: usize) -> NetworkConfig {
        let mut cfg = NetworkConfig::quick(orgs, flow);
        cfg.ordering = OrderingConfig::kafka(orgs.len(), block_size, Duration::from_secs(1));
        cfg.net_profile = NetProfile::lan();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_shape() {
        let c = NetworkConfig::quick(&["a", "b"], Flow::OrderThenExecute);
        assert_eq!(c.orgs, vec!["a", "b"]);
        assert!(c.verify_signatures);
        assert!(c.data_root.is_none());
        assert_eq!(c.client_transport, TransportKind::InProcess);
        assert!(c.client_window >= 1);
        assert!(c.statement_cache_cap >= 1);
        assert!(c.apply_workers >= 1);
        let p = NetworkConfig::paper_default(&["a", "b", "c"], Flow::ExecuteOrderParallel, 100);
        assert_eq!(p.ordering.orderers, 3);
        assert_eq!(p.ordering.block_size, 100);
    }
}
