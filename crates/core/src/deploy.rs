//! Real-TCP deployment: wire one organization's node — or the ordering
//! service — into a cluster of separate OS processes connected by
//! length-prefixed canonical-codec frames over localhost or a real
//! network.
//!
//! This module is the process-granular sibling of [`crate::network`]:
//! [`run_node_process`] replicates `launch_node`'s wiring recipe exactly
//! (certificates from deterministic seeds, bootstrap, peer dispatch,
//! orderer relay, outbound hooks, recovery ordering, block processor,
//! client frontend — in that order), but every arrow that used to be a
//! [`bcrdb_network::SimNetwork`] send is a TCP socket:
//!
//! * **peer plane** — every node listens on its peer address and dials
//!   every other organization once, with reconnect-and-backoff. The
//!   outbound link carries forwarded transactions and catch-up requests;
//!   the serving side answers sync requests on whichever socket they
//!   arrived on (off-thread, so a snapshot transfer never stalls
//!   dispatch).
//! * **ordering plane** — one TCP listener per orderer replica
//!   ([`run_ordering_process`]); a node dials its replica, identifies
//!   itself, streams submissions and checkpoint votes up and receives
//!   the block stream down. A reconnect resubscribes from the current
//!   block; anything missed in between is healed by the node's normal
//!   delivery-gap catch-up.
//! * **client plane** — [`crate::tcp::serve_client_tcp`], started only
//!   after recovery so clients never reach a stale replica.
//!
//! Every identity (admins, peers, orderers, bench users) derives from a
//! deterministic seed, so each process rebuilds the same certificate
//! registry locally — nothing secret crosses the wire at bootstrap,
//! mirroring the out-of-band certificate distribution of §3.7.

use std::collections::HashMap;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bcrdb_chain::block::Block;
use bcrdb_chain::sync::{SyncRequest, SyncResponse};
use bcrdb_chain::tx::Transaction;
use bcrdb_common::codec::{Decode, Encode};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::BlockHeight;
use bcrdb_crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role, Scheme};
use bcrdb_network::wire::{
    peer_endpoint, read_frame, write_frame, FrameEvent, PeerAddr, MAX_ORDERER_FRAME, MAX_PEER_FRAME,
};
use bcrdb_node::{Node, NodeConfig, NodeHooks};
use bcrdb_ordering::tcp::serve_orderer;
use bcrdb_ordering::{OrdererWire, OrderingConfig, OrderingService};
use bcrdb_txn::ssi::Flow;
use crossbeam_channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;

use crate::client::Client;
use crate::network::{apply_bootstrap_sql, PeerMsg};
use crate::session::Call;
use crate::system;
use crate::tcp::{serve_client_tcp, PeerFrame, TcpTransport};
use crate::transport::NodeTransport;

/// Stop-flag polling cadence for accept loops and socket readers.
const POLL: Duration = Duration::from_millis(100);

/// Bound on how long a stuck peer may block a socket write.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// First reconnect delay of a dialer; doubles per failure up to
/// [`DIAL_BACKOFF_MAX`].
const DIAL_BACKOFF_MIN: Duration = Duration::from_millis(100);

/// Reconnect backoff ceiling.
const DIAL_BACKOFF_MAX: Duration = Duration::from_secs(2);

/// How long one catch-up round trip may take per peer before failing
/// over to the next (same budget as the simulated deployment).
const SYNC_RPC_TIMEOUT: Duration = Duration::from_secs(15);

/// How long a booting node waits for its orderer (and, on rejoin, at
/// least one peer) before giving up.
const LINK_WAIT: Duration = Duration::from_secs(30);

/// Genesis DDL used by the binaries and the TCP benchmark when no
/// schema file is given: the paper's *simple* evaluation contract
/// (single-row INSERT, Fig 9), matching `bcrdb-bench`'s default
/// workload.
pub const DEFAULT_GENESIS_SQL: &str = "\
    CREATE TABLE bench_simple (id INT PRIMARY KEY, f1 INT NOT NULL, \
        f2 INT NOT NULL, f3 TEXT NOT NULL, f4 FLOAT NOT NULL); \
    CREATE FUNCTION bench_tx(id INT, f1 INT, f2 INT, f3 TEXT, f4 FLOAT) AS $$ \
        INSERT INTO bench_simple VALUES ($1, $2, $3, $4, $5) $$";

// ------------------------------------------------------------- specs

/// Network-wide parameters every process of one deployment must agree
/// on. All identities derive from these fields plus deterministic
/// seeds, so each process reconstructs the same certificate registry
/// without any exchange.
#[derive(Clone)]
pub struct ClusterSpec {
    /// Participating organizations; each runs one database node, and
    /// the ordering service runs one orderer replica per organization.
    pub orgs: Vec<String>,
    /// Transaction flow (§3.3 vs §3.4).
    pub flow: Flow,
    /// Genesis DDL applied identically on every node before recovery.
    pub genesis_sql: Option<String>,
    /// Maximum transactions per block.
    pub block_size: usize,
    /// Maximum age of the oldest pending transaction before a block is
    /// cut anyway.
    pub block_timeout: Duration,
    /// Pre-registered bench users per organization (`bench0`,
    /// `bench1`, …— see [`ClusterSpec::bench_user`]): client
    /// certificates a load generator in another process can assume
    /// exist.
    pub bench_clients: usize,
    /// `fsync` each node's block store on append.
    pub fsync: bool,
    /// Signature scheme for every identity in the deployment.
    pub scheme: Scheme,
}

impl ClusterSpec {
    /// A spec with bench-friendly defaults: small blocks cut at 100 ms,
    /// 64 pre-registered bench users per org, simulated signatures, and
    /// the [`DEFAULT_GENESIS_SQL`] schema.
    pub fn new(orgs: &[&str], flow: Flow) -> ClusterSpec {
        ClusterSpec {
            orgs: orgs.iter().map(|s| s.to_string()).collect(),
            flow,
            genesis_sql: Some(DEFAULT_GENESIS_SQL.to_string()),
            block_size: 64,
            block_timeout: Duration::from_millis(100),
            bench_clients: 64,
            fsync: false,
            scheme: Scheme::Sim,
        }
    }

    /// The ordering-service configuration this spec implies: Kafka-style
    /// CFT with one orderer replica per organization (the paper's
    /// default deployment shape).
    pub fn ordering_config(&self) -> OrderingConfig {
        let mut cfg = OrderingConfig::kafka(self.orgs.len(), self.block_size, self.block_timeout);
        cfg.scheme = self.scheme;
        cfg
    }

    /// Name of the `i`-th pre-registered bench user (without the org
    /// prefix).
    pub fn bench_user(i: usize) -> String {
        format!("bench{i}")
    }

    /// Rebuild the deployment's certificate registry from deterministic
    /// seeds: per-org admins and peers, per-replica orderers, and
    /// `bench_clients` users per org. Every process calls this locally;
    /// the registries are identical by construction.
    pub fn certs(&self) -> Arc<CertificateRegistry> {
        let certs = CertificateRegistry::new();
        for org in &self.orgs {
            let name = format!("{org}/admin");
            let key = KeyPair::generate(
                name.clone(),
                format!("admin-seed-{org}").as_bytes(),
                self.scheme,
            );
            certs.register(Certificate {
                name,
                org: org.clone(),
                role: Role::Admin,
                public_key: key.public_key(),
            });
            let peer = peer_endpoint(org);
            let key = KeyPair::generate(
                peer.clone(),
                format!("peer-seed-{org}").as_bytes(),
                Scheme::Sim,
            );
            certs.register(Certificate {
                name: peer,
                org: org.clone(),
                role: Role::Peer,
                public_key: key.public_key(),
            });
            for i in 0..self.bench_clients {
                let name = format!("{org}/{}", ClusterSpec::bench_user(i));
                let key = KeyPair::generate(
                    name.clone(),
                    format!("client-seed-{name}").as_bytes(),
                    self.scheme,
                );
                certs.register(Certificate {
                    name: name.clone(),
                    org: org.clone(),
                    role: Role::Client,
                    public_key: key.public_key(),
                });
            }
        }
        // Must mirror `OrderingService::start`'s registration exactly,
        // or nodes reject every block signature.
        for i in 0..self.orgs.len() {
            let name = bcrdb_ordering::service::orderer_name(i);
            let key = KeyPair::generate(
                name.clone(),
                format!("orderer-seed-{i}").as_bytes(),
                self.scheme,
            );
            certs.register(Certificate {
                name,
                org: "ordering".into(),
                role: Role::Orderer,
                public_key: key.public_key(),
            });
        }
        certs
    }

    fn org_index(&self, org: &str) -> Result<usize> {
        self.orgs
            .iter()
            .position(|o| o == org)
            .ok_or_else(|| Error::NotFound(format!("organization {org}")))
    }
}

/// Everything one node process needs beyond the [`ClusterSpec`]: which
/// organization it is, where it listens, and where everyone else is.
pub struct NodeSpec {
    /// This node's organization (must appear in `ClusterSpec::orgs`).
    pub org: String,
    /// Bound listener for the client plane (RPC frontend).
    pub client_listener: TcpListener,
    /// Bound listener for the peer plane.
    pub peer_listener: TcpListener,
    /// Peer-plane addresses of every *other* organization's node.
    pub peers: Vec<PeerAddr>,
    /// Address of this node's orderer replica.
    pub orderer_addr: String,
    /// Block store / snapshot directory (`None` keeps state in memory —
    /// such a node cannot survive a restart).
    pub data_dir: Option<PathBuf>,
    /// Disk-backed paged table storage: spill cold heap segments to
    /// slotted-page files under `<data_dir>/pages/` through a buffer
    /// pool of `pool_frames` 8 KB frames (see `NodeConfig::page_dir`).
    /// Requires `data_dir`.
    pub paged: bool,
    /// Buffer-pool capacity in 8 KB frames when `paged` (minimum 1).
    /// Defaults from `BCRDB_POOL_FRAMES` (unset = 1024).
    pub pool_frames: usize,
    /// Restart / late-join: catch up from peers during recovery before
    /// serving clients (§3.6). A fresh cluster boots with `false`.
    pub rejoin: bool,
}

// ------------------------------------------------------- peer plane

/// The writer half of one outbound peer link. `None` while the dialer
/// is reconnecting; sends fail fast instead of queueing into the void.
struct PeerLink {
    org: String,
    addr: String,
    writer: Mutex<Option<TcpStream>>,
    up: AtomicBool,
}

impl PeerLink {
    fn send(&self, frame: &PeerFrame) -> Result<()> {
        let bytes = frame.encode_to_vec();
        let mut guard = self.writer.lock();
        let Some(stream) = guard.as_mut() else {
            return Err(Error::Io(format!("peer link to {} is down", self.org)));
        };
        if let Err(e) = write_frame(stream, &bytes, MAX_PEER_FRAME) {
            let _ = stream.shutdown(Shutdown::Both);
            *guard = None;
            self.up.store(false, Ordering::Relaxed);
            return Err(e);
        }
        Ok(())
    }
}

/// TCP port of `network::SyncClient`: round-robin catch-up requests
/// across the outbound peer links with failover on timeout or a downed
/// link; responses come back on the same socket and are delivered by
/// the link's reader.
struct TcpSync {
    links: Vec<Arc<PeerLink>>,
    pending: Mutex<HashMap<u64, Sender<SyncResponse>>>,
    seq: AtomicU64,
    next: AtomicUsize,
}

impl TcpSync {
    fn fetch(&self, req: SyncRequest) -> Result<SyncResponse> {
        if self.links.is_empty() {
            return Err(Error::NotFound("no peers to sync from".into()));
        }
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let mut last_err = Error::Timeout("sync fetch never attempted".into());
        for i in 0..self.links.len() {
            let link = &self.links[(start + i) % self.links.len()];
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = bounded(1);
            self.pending.lock().insert(seq, tx);
            if let Err(e) = link.send(&PeerFrame::Msg(PeerMsg::SyncRequest { seq, req })) {
                self.pending.lock().remove(&seq);
                last_err = e;
                continue;
            }
            match rx.recv_timeout(SYNC_RPC_TIMEOUT) {
                Ok(resp) => return Ok(resp),
                Err(_) => {
                    self.pending.lock().remove(&seq);
                    last_err = Error::Timeout(format!(
                        "no sync response from {} within {SYNC_RPC_TIMEOUT:?}",
                        link.org
                    ));
                }
            }
        }
        Err(last_err)
    }

    fn deliver(&self, seq: u64, resp: &SyncResponse) {
        if let Some(tx) = self.pending.lock().remove(&seq) {
            let _ = tx.send(resp.clone());
        }
    }
}

/// Reply channel for frames that answer in place (sync responses go
/// back on whichever socket the request arrived on).
type PeerReply = Arc<dyn Fn(PeerFrame) -> Result<()> + Send + Sync>;

/// Route one inbound peer frame exactly like `launch_node`'s dispatch
/// thread routes [`PeerMsg`]s. Returns `false` when the connection can
/// no longer be trusted and must be severed.
fn handle_peer_frame(
    frame: PeerFrame,
    node: &Arc<Node>,
    block_tx: &Sender<Arc<Block>>,
    sync: &Arc<TcpSync>,
    reply: &PeerReply,
) -> bool {
    match frame {
        // A repeated Hello is harmless.
        PeerFrame::Hello { .. } => true,
        PeerFrame::Msg(PeerMsg::Tx(tx)) => {
            node.on_peer_tx(*tx);
            true
        }
        PeerFrame::Msg(PeerMsg::Block(b)) => block_tx.send(b).is_ok(),
        PeerFrame::Msg(PeerMsg::SyncRequest { seq, req }) => {
            // Serve off-thread: a large batch or snapshot must not
            // stall transaction/block dispatch on this connection.
            let node = Arc::clone(node);
            let reply = Arc::clone(reply);
            thread::Builder::new()
                .name(format!("{}-sync-serve", node.config.name))
                .spawn(move || {
                    let resp = Arc::new(node.serve_sync(&req));
                    let _ = reply(PeerFrame::Msg(PeerMsg::SyncResponse { seq, resp }));
                })
                .is_ok()
        }
        PeerFrame::Msg(PeerMsg::SyncResponse { seq, resp }) => {
            sync.deliver(seq, &resp);
            true
        }
    }
}

fn configure_stream(stream: &TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
}

/// Maintain one outbound peer link: dial with exponential backoff, send
/// `Hello`, publish the writer half, then read frames (sync responses,
/// mainly) until the socket dies — and start over.
fn spawn_peer_dialer(
    link: Arc<PeerLink>,
    my_org: String,
    node: Arc<Node>,
    block_tx: Sender<Arc<Block>>,
    sync: Arc<TcpSync>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name(format!("peer-dial:{}", link.org))
        .spawn(move || {
            let reply: PeerReply = {
                let link = Arc::clone(&link);
                Arc::new(move |f| link.send(&f))
            };
            let mut backoff = DIAL_BACKOFF_MIN;
            while !stop.load(Ordering::Relaxed) {
                let Ok(stream) = TcpStream::connect(&link.addr) else {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(DIAL_BACKOFF_MAX);
                    continue;
                };
                configure_stream(&stream);
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                *link.writer.lock() = Some(write_half);
                if link
                    .send(&PeerFrame::Hello {
                        org: my_org.clone(),
                    })
                    .is_err()
                {
                    continue;
                }
                link.up.store(true, Ordering::Relaxed);
                backoff = DIAL_BACKOFF_MIN;
                let mut reader = stream;
                while !stop.load(Ordering::Relaxed) {
                    match read_frame(&mut reader, MAX_PEER_FRAME) {
                        Ok(FrameEvent::Frame(payload)) => match PeerFrame::decode_all(&payload) {
                            Ok(f) => {
                                if !handle_peer_frame(f, &node, &block_tx, &sync, &reply) {
                                    break;
                                }
                            }
                            Err(_) => break,
                        },
                        Ok(FrameEvent::Idle) => continue,
                        Ok(FrameEvent::Eof) | Err(_) => break,
                    }
                }
                link.up.store(false, Ordering::Relaxed);
                *link.writer.lock() = None;
                let _ = reader.shutdown(Shutdown::Both);
            }
        })
        .expect("spawn peer dialer")
}

/// Accept loop of the peer plane: one handler thread per inbound
/// connection, routing frames through [`handle_peer_frame`] and
/// answering sync requests on the same socket.
fn spawn_peer_acceptor(
    listener: TcpListener,
    node: Arc<Node>,
    block_tx: Sender<Arc<Block>>,
    sync: Arc<TcpSync>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    let name = node.config.name.clone();
    thread::Builder::new()
        .name(format!("{name}-peer-accept"))
        .spawn(move || {
            listener
                .set_nonblocking(true)
                .expect("listener nonblocking");
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let node = Arc::clone(&node);
                        let block_tx = block_tx.clone();
                        let sync = Arc::clone(&sync);
                        let stop = Arc::clone(&stop);
                        let _ = thread::Builder::new()
                            .name(format!("{}-peer-conn", node.config.name))
                            .spawn(move || {
                                serve_peer_connection(node, block_tx, sync, stream, stop)
                            });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
                    Err(_) => thread::sleep(POLL),
                }
            }
        })
        .expect("spawn peer accept loop")
}

fn serve_peer_connection(
    node: Arc<Node>,
    block_tx: Sender<Arc<Block>>,
    sync: Arc<TcpSync>,
    stream: TcpStream,
    stop: Arc<AtomicBool>,
) {
    configure_stream(&stream);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let reply: PeerReply = {
        let writer = Arc::clone(&writer);
        Arc::new(move |f| write_frame(&mut *writer.lock(), &f.encode_to_vec(), MAX_PEER_FRAME))
    };
    let mut reader = stream;
    while !stop.load(Ordering::Relaxed) {
        match read_frame(&mut reader, MAX_PEER_FRAME) {
            Ok(FrameEvent::Frame(payload)) => match PeerFrame::decode_all(&payload) {
                Ok(f) => {
                    if !handle_peer_frame(f, &node, &block_tx, &sync, &reply) {
                        break;
                    }
                }
                Err(_) => break,
            },
            Ok(FrameEvent::Idle) => continue,
            Ok(FrameEvent::Eof) | Err(_) => break,
        }
    }
    let _ = reader.shutdown(Shutdown::Both);
}

// --------------------------------------------------- ordering plane

/// Writer half of the node's link to its orderer replica; same
/// fail-fast-while-down discipline as [`PeerLink`].
struct OrdererLink {
    addr: String,
    writer: Mutex<Option<TcpStream>>,
    up: AtomicBool,
}

impl OrdererLink {
    fn send(&self, msg: &OrdererWire) -> Result<()> {
        let bytes = msg.encode_to_vec();
        let mut guard = self.writer.lock();
        let Some(stream) = guard.as_mut() else {
            return Err(Error::Io(format!("orderer link to {} is down", self.addr)));
        };
        if let Err(e) = write_frame(stream, &bytes, MAX_ORDERER_FRAME) {
            let _ = stream.shutdown(Shutdown::Both);
            *guard = None;
            self.up.store(false, Ordering::Relaxed);
            return Err(e);
        }
        Ok(())
    }
}

/// Maintain the orderer link: dial with backoff, identify with `Hello`,
/// feed the pushed block stream into the node's block channel. Each
/// reconnect resubscribes from the replica's current block; the node's
/// gap detection plus peer catch-up heal whatever was missed.
fn spawn_orderer_dialer(
    link: Arc<OrdererLink>,
    node_name: String,
    block_tx: Sender<Arc<Block>>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name(format!("{node_name}-orderer-dial"))
        .spawn(move || {
            let mut backoff = DIAL_BACKOFF_MIN;
            while !stop.load(Ordering::Relaxed) {
                let Ok(stream) = TcpStream::connect(&link.addr) else {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(DIAL_BACKOFF_MAX);
                    continue;
                };
                configure_stream(&stream);
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                *link.writer.lock() = Some(write_half);
                if link
                    .send(&OrdererWire::Hello {
                        node: node_name.clone(),
                    })
                    .is_err()
                {
                    continue;
                }
                link.up.store(true, Ordering::Relaxed);
                backoff = DIAL_BACKOFF_MIN;
                let mut reader = stream;
                while !stop.load(Ordering::Relaxed) {
                    match read_frame(&mut reader, MAX_ORDERER_FRAME) {
                        Ok(FrameEvent::Frame(payload)) => {
                            match OrdererWire::decode_all(&payload) {
                                Ok(OrdererWire::Block(b)) => {
                                    if block_tx.send(b).is_err() {
                                        return; // node shut down
                                    }
                                }
                                // Anything else from an orderer is a
                                // protocol violation: sever, redial.
                                _ => break,
                            }
                        }
                        Ok(FrameEvent::Idle) => continue,
                        Ok(FrameEvent::Eof) | Err(_) => break,
                    }
                }
                link.up.store(false, Ordering::Relaxed);
                *link.writer.lock() = None;
                let _ = reader.shutdown(Shutdown::Both);
            }
        })
        .expect("spawn orderer dialer")
}

// --------------------------------------------------- node processes

/// A running node process: the node plus its accept loops and dialers.
pub struct NodeProc {
    node: Arc<Node>,
    stop: Arc<AtomicBool>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl NodeProc {
    /// The node itself (metrics, heights, hub introspection).
    pub fn node(&self) -> &Arc<Node> {
        &self.node
    }

    /// Stop everything: node threads, accept loops, dialers, and —
    /// through the shared stop flag — every per-connection worker.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.node.shutdown();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

fn await_link(up: impl Fn() -> bool, what: &str) -> Result<()> {
    let deadline = Instant::now() + LINK_WAIT;
    while !up() {
        if Instant::now() >= deadline {
            return Err(Error::Timeout(format!(
                "no connection to {what} within {LINK_WAIT:?}"
            )));
        }
        thread::sleep(Duration::from_millis(10));
    }
    Ok(())
}

/// Construct, wire up and start one organization's node over TCP —
/// the process-granular equivalent of the simulated deployment's
/// `launch_node`, with the identical recovery ordering: certificates
/// and bootstrap first, peer plane and orderer link before recovery
/// (so blocks delivered during catch-up queue instead of being lost),
/// the client frontend only after the node is caught up.
pub fn run_node_process(cluster: &ClusterSpec, spec: NodeSpec) -> Result<NodeProc> {
    cluster.org_index(&spec.org)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    let certs = cluster.certs();
    let node_name = peer_endpoint(&spec.org);

    let mut cfg = NodeConfig::new(node_name.clone(), spec.org.clone(), cluster.flow);
    cfg.fsync = cluster.fsync;
    cfg.data_dir = spec.data_dir.clone();
    if spec.paged {
        cfg.page_dir = spec.data_dir.as_ref().map(|d| d.join("pages"));
        cfg.buffer_pool_frames = spec.pool_frames.max(1);
    }
    // pipeline and apply_workers stay at the NodeConfig::new defaults,
    // which read BCRDB_PIPELINE / BCRDB_APPLY — per-process env is the
    // natural per-node knob for a process-granular deployment.
    let node = Node::new(cfg, Arc::clone(&certs), cluster.orgs.clone())?;
    system::bootstrap_node(&node)?;
    if let Some(genesis) = &cluster.genesis_sql {
        apply_bootstrap_sql(&node, genesis, cluster.flow)?;
    }

    let (block_tx, block_rx) = unbounded();

    // Peer plane: one outbound link per other organization, plus the
    // inbound accept loop — both up before recovery, like the sim
    // deployment registers its peer endpoint before recovering.
    let links: Vec<Arc<PeerLink>> = spec
        .peers
        .iter()
        .map(|p| {
            Arc::new(PeerLink {
                org: p.org.clone(),
                addr: p.addr.clone(),
                writer: Mutex::new(None),
                up: AtomicBool::new(false),
            })
        })
        .collect();
    let sync = Arc::new(TcpSync {
        links: links.clone(),
        pending: Mutex::new(HashMap::new()),
        seq: AtomicU64::new(1),
        next: AtomicUsize::new(0),
    });
    for link in &links {
        handles.push(spawn_peer_dialer(
            Arc::clone(link),
            spec.org.clone(),
            Arc::clone(&node),
            block_tx.clone(),
            Arc::clone(&sync),
            Arc::clone(&stop),
        ));
    }
    handles.push(spawn_peer_acceptor(
        spec.peer_listener,
        Arc::clone(&node),
        block_tx.clone(),
        Arc::clone(&sync),
        Arc::clone(&stop),
    ));

    // Ordering plane.
    let orderer = Arc::new(OrdererLink {
        addr: spec.orderer_addr.clone(),
        writer: Mutex::new(None),
        up: AtomicBool::new(false),
    });
    handles.push(spawn_orderer_dialer(
        Arc::clone(&orderer),
        node_name.clone(),
        block_tx.clone(),
        Arc::clone(&stop),
    ));

    // Unwind a partial launch on any failure from here on.
    let abort = |e: Error, handles: Vec<JoinHandle<()>>| {
        stop.store(true, Ordering::Relaxed);
        node.shutdown();
        for h in handles {
            let _ = h.join();
        }
        Err(e)
    };

    // Without its orderer the node can neither submit nor receive
    // blocks; a rejoining node additionally needs someone to sync from.
    if let Err(e) = await_link(|| orderer.up.load(Ordering::Relaxed), "orderer") {
        return abort(e, handles);
    }
    if spec.rejoin && !links.is_empty() {
        if let Err(e) = await_link(
            || links.iter().any(|l| l.up.load(Ordering::Relaxed)),
            "any peer",
        ) {
            return abort(e, handles);
        }
    }

    let hooks = NodeHooks {
        forward_tx: Some({
            let links = links.clone();
            Arc::new(move |tx: &Transaction| {
                let frame = PeerFrame::Msg(PeerMsg::Tx(Box::new(tx.clone())));
                for link in &links {
                    let _ = link.send(&frame);
                }
            })
        }),
        submit_orderer: Some({
            let orderer = Arc::clone(&orderer);
            Arc::new(move |tx: Transaction| orderer.send(&OrdererWire::Submit(Box::new(tx))))
        }),
        submit_checkpoint: Some({
            let orderer = Arc::clone(&orderer);
            Arc::new(move |vote| {
                let _ = orderer.send(&OrdererWire::Vote(vote));
            })
        }),
        sync_fetch: (!links.is_empty()).then(|| {
            let sync = Arc::clone(&sync);
            Arc::new(move |req: SyncRequest| sync.fetch(req)) as _
        }),
        // The ordering service runs in another process; its counters
        // are in that process's metrics, not this node's.
        ordering_stats: None,
    };
    let recovered = if spec.rejoin {
        node.set_hooks(hooks);
        node.recover()
    } else {
        node.set_hooks(NodeHooks {
            sync_fetch: None,
            ..hooks.clone()
        });
        let r = node.recover();
        node.set_hooks(hooks);
        r
    };
    if let Err(e) = recovered {
        return abort(e, handles);
    }
    node.start(block_rx);

    // Serve clients only now, after catch-up, so they never reach a
    // stale replica.
    handles.push(serve_client_tcp(
        Arc::clone(&node),
        spec.client_listener,
        Arc::clone(&stop),
    ));
    Ok(NodeProc {
        node,
        stop,
        handles: Mutex::new(handles),
    })
}

/// The ordering-service process: the full (in-process) consensus
/// backend plus one TCP listener per orderer replica.
pub struct OrderingProc {
    service: Arc<OrderingService>,
    stop: Arc<AtomicBool>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl OrderingProc {
    /// The running ordering service.
    pub fn service(&self) -> &Arc<OrderingService> {
        &self.service
    }

    /// Stop the listeners and the consensus threads.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.service.shutdown();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Start the ordering service with one bound TCP listener per orderer
/// replica (`listeners[i]` serves replica `i`). Consensus among the
/// replicas stays in-process — only the node-facing surface speaks TCP.
pub fn run_ordering_process(
    cluster: &ClusterSpec,
    listeners: Vec<TcpListener>,
) -> Result<OrderingProc> {
    let cfg = cluster.ordering_config();
    if listeners.len() != cfg.orderers {
        return Err(Error::Config(format!(
            "{} listeners for {} orderer replicas",
            listeners.len(),
            cfg.orderers
        )));
    }
    let certs = cluster.certs();
    let service = OrderingService::start(cfg, &certs);
    let stop = Arc::new(AtomicBool::new(false));
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| serve_orderer(Arc::clone(&service), i, l, Arc::clone(&stop)))
        .collect();
    Ok(OrderingProc {
        service,
        stop,
        handles: Mutex::new(handles),
    })
}

// ----------------------------------------------------- client side

/// Connect a client with the given user name to a node's client-plane
/// address over TCP. The key derives from the same deterministic seed
/// the node process registered at bootstrap, so only admins, bench
/// users (see [`ClusterSpec::bench_user`]) and on-chain-registered
/// users authenticate.
///
/// Each client carries its own nonce counter starting at 1: two live
/// clients for the *same* user would mint colliding transaction ids,
/// so give every connection its own user (the bench fleet does).
pub fn tcp_client(cluster: &ClusterSpec, org: &str, user: &str, addr: &str) -> Result<Client> {
    let name = format!("{org}/{user}");
    let key = Arc::new(KeyPair::generate(
        name.clone(),
        format!("client-seed-{name}").as_bytes(),
        cluster.scheme,
    ));
    let transport: Arc<dyn NodeTransport> = Arc::new(TcpTransport::connect(addr)?);
    Ok(Client::new(
        name,
        key,
        cluster.flow,
        Arc::new(AtomicU64::new(1)),
        transport,
        1024,
    ))
}

/// Connect `org`'s admin to a node's client-plane address over TCP.
pub fn tcp_admin(cluster: &ClusterSpec, org: &str, addr: &str) -> Result<Client> {
    cluster.org_index(org)?;
    let name = format!("{org}/admin");
    let key = Arc::new(KeyPair::generate(
        name.clone(),
        format!("admin-seed-{org}").as_bytes(),
        cluster.scheme,
    ));
    let transport: Arc<dyn NodeTransport> = Arc::new(TcpTransport::connect(addr)?);
    Ok(Client::new(
        name,
        key,
        cluster.flow,
        Arc::new(AtomicU64::new(1)),
        transport,
        1024,
    ))
}

/// Wait until every client's node reports committed *and* post-commit
/// height of at least `height` — the cross-process equivalent of
/// `Network::await_height`, polled over the Metrics RPC.
pub fn await_height_tcp(clients: &[Client], height: BlockHeight, timeout: Duration) -> Result<()> {
    let deadline = Instant::now() + timeout;
    loop {
        let mut heights = Vec::with_capacity(clients.len());
        let mut all = true;
        for c in clients {
            let m = c.node_metrics()?;
            all &= m.committed_height >= height && m.postcommit_height >= height;
            heights.push((m.committed_height, m.postcommit_height));
        }
        if all {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(Error::internal(format!(
                "timed out waiting for height {height}: nodes at \
                 (committed, post-commit) {heights:?}"
            )));
        }
        thread::sleep(Duration::from_millis(20));
    }
}

/// Run the §3.7 deployment workflow for one DDL statement over TCP:
/// `create_deploytx` by the first org's admin, `approve_deploytx` by
/// every org's admin, then `submit_deploytx` — the TCP sibling of
/// `Network::deploy_contract`. `admins[i]` must be `cluster.orgs[i]`'s
/// admin connected to its own org's node.
pub fn deploy_contract_tcp(
    cluster: &ClusterSpec,
    admins: &[Client],
    deploy_id: i64,
    sql: &str,
) -> Result<()> {
    if admins.len() != cluster.orgs.len() {
        return Err(Error::Config(format!(
            "{} admin clients for {} organizations",
            admins.len(),
            cluster.orgs.len()
        )));
    }
    let timeout = Duration::from_secs(30);
    let first = &admins[0];
    let staged = first.submit_retrying(
        Call::new("create_deploytx").arg(deploy_id).arg(sql),
        timeout,
    )?;
    await_height_tcp(admins, staged.block, timeout)?;
    let mut approved = staged.block;
    for admin in admins {
        let n = admin.submit_retrying(Call::new("approve_deploytx").arg(deploy_id), timeout)?;
        approved = approved.max(n.block);
    }
    await_height_tcp(admins, approved, timeout)?;
    first.submit_retrying(Call::new("submit_deploytx").arg(deploy_id), timeout)?;
    Ok(())
}

// ------------------------------------------------------- utilities

static STOP_SIGNAL: AtomicBool = AtomicBool::new(false);

extern "C" fn stop_on_signal(_sig: i32) {
    STOP_SIGNAL.store(true, Ordering::SeqCst);
}

/// Install SIGINT/SIGTERM handlers that flip a process-wide stop flag,
/// so the server binaries can shut down gracefully (`kill -TERM`) —
/// flush, close sockets, leave a cleanly resumable block store. On
/// non-Unix targets this returns the flag without installing handlers.
pub fn install_stop_signals() -> &'static AtomicBool {
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        signal(2, stop_on_signal); // SIGINT
        signal(15, stop_on_signal); // SIGTERM
    }
    &STOP_SIGNAL
}

// -------------------------------------------- in-process TCP cluster

/// A whole cluster — ordering service plus one node per organization —
/// in a single process, but connected through *real* localhost TCP
/// sockets on ephemeral ports. This is the harness for the TCP bench
/// phase and transport tests; multi-process deployments use the
/// `bcrdb-node` binary with the same [`run_node_process`] underneath.
pub struct TcpCluster {
    spec: ClusterSpec,
    ordering: OrderingProc,
    nodes: Vec<NodeProc>,
    client_addrs: Vec<String>,
}

impl TcpCluster {
    /// Bind ephemeral listeners for every plane, start the ordering
    /// process and one node per organization (fresh boot, no rejoin).
    /// With `data_root`, each node persists under `<root>/<org>/`.
    pub fn launch(spec: ClusterSpec, data_root: Option<PathBuf>) -> Result<TcpCluster> {
        let io_err = |e: std::io::Error| Error::Io(e.to_string());
        let n = spec.orgs.len();
        let mut ord_listeners = Vec::with_capacity(n);
        for _ in 0..n {
            ord_listeners.push(TcpListener::bind("127.0.0.1:0").map_err(io_err)?);
        }
        let ord_addrs: Vec<String> = ord_listeners
            .iter()
            .map(|l| Ok(l.local_addr().map_err(io_err)?.to_string()))
            .collect::<Result<_>>()?;
        let ordering = run_ordering_process(&spec, ord_listeners)?;

        let mut peer_listeners = Vec::with_capacity(n);
        let mut client_listeners = Vec::with_capacity(n);
        for _ in 0..n {
            peer_listeners.push(TcpListener::bind("127.0.0.1:0").map_err(io_err)?);
            client_listeners.push(TcpListener::bind("127.0.0.1:0").map_err(io_err)?);
        }
        let peer_addrs: Vec<String> = peer_listeners
            .iter()
            .map(|l| Ok(l.local_addr().map_err(io_err)?.to_string()))
            .collect::<Result<_>>()?;
        let client_addrs: Vec<String> = client_listeners
            .iter()
            .map(|l| Ok(l.local_addr().map_err(io_err)?.to_string()))
            .collect::<Result<_>>()?;

        let mut nodes: Vec<NodeProc> = Vec::with_capacity(n);
        for ((i, org), (client_listener, peer_listener)) in spec
            .orgs
            .iter()
            .enumerate()
            .zip(client_listeners.into_iter().zip(peer_listeners))
        {
            let node_spec = NodeSpec {
                org: org.clone(),
                client_listener,
                peer_listener,
                peers: spec
                    .orgs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(j, o)| PeerAddr {
                        org: o.clone(),
                        addr: peer_addrs[j].clone(),
                    })
                    .collect(),
                orderer_addr: ord_addrs[i].clone(),
                data_dir: data_root.as_ref().map(|r| r.join(org)),
                paged: false,
                pool_frames: bcrdb_node::pool_frames_by_env(),
                rejoin: false,
            };
            match run_node_process(&spec, node_spec) {
                Ok(proc) => nodes.push(proc),
                Err(e) => {
                    for proc in &nodes {
                        proc.shutdown();
                    }
                    ordering.shutdown();
                    return Err(e);
                }
            }
        }
        Ok(TcpCluster {
            spec,
            ordering,
            nodes,
            client_addrs,
        })
    }

    /// The cluster's spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Client-plane addresses, in organization order.
    pub fn client_addrs(&self) -> &[String] {
        &self.client_addrs
    }

    /// The running ordering service.
    pub fn ordering(&self) -> &Arc<OrderingService> {
        self.ordering.service()
    }

    /// Node handles, in organization order (introspection: heights,
    /// hub waiter counts, state hashes).
    pub fn nodes(&self) -> Vec<Arc<Node>> {
        self.nodes.iter().map(|p| Arc::clone(p.node())).collect()
    }

    /// A TCP client for `user` connected to `org`'s node.
    pub fn client(&self, org: &str, user: &str) -> Result<Client> {
        let idx = self.spec.org_index(org)?;
        tcp_client(&self.spec, org, user, &self.client_addrs[idx])
    }

    /// `org`'s admin connected to its own node over TCP.
    pub fn admin(&self, org: &str) -> Result<Client> {
        let idx = self.spec.org_index(org)?;
        tcp_admin(&self.spec, org, &self.client_addrs[idx])
    }

    /// Wait until every node committed and post-committed `height`
    /// (in-process handles, no RPC).
    pub fn await_height(&self, height: BlockHeight, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            if self
                .nodes
                .iter()
                .all(|p| p.node().height() >= height && p.node().postcommit_height() >= height)
            {
                return Ok(());
            }
            if Instant::now() >= deadline {
                let heights: Vec<(BlockHeight, BlockHeight)> = self
                    .nodes
                    .iter()
                    .map(|p| (p.node().height(), p.node().postcommit_height()))
                    .collect();
                return Err(Error::internal(format!(
                    "timed out waiting for height {height}: nodes at \
                     (committed, post-commit) {heights:?}"
                )));
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stop every node and the ordering service.
    pub fn shutdown(&self) {
        for proc in &self.nodes {
            proc.shutdown();
        }
        self.ordering.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_chain::ledger::TxStatus;

    #[test]
    fn cluster_certs_are_deterministic_and_complete() {
        let spec = ClusterSpec::new(&["org1", "org2"], Flow::OrderThenExecute);
        let a = spec.certs();
        let b = spec.certs();
        for name in [
            "org1/admin",
            "org2/admin",
            "org1/peer",
            "org2/peer",
            "ordering/orderer0",
            "ordering/orderer1",
            "org1/bench0",
            "org2/bench63",
        ] {
            let ca = a.lookup(name).unwrap_or_else(|| panic!("missing {name}"));
            let cb = b.lookup(name).expect("second registry");
            assert_eq!(ca.public_key.to_bytes(), cb.public_key.to_bytes());
        }
    }

    #[test]
    fn tcp_cluster_commits_over_real_sockets() {
        let spec = ClusterSpec::new(&["org1", "org2", "org3"], Flow::OrderThenExecute);
        let cluster = TcpCluster::launch(spec, None).expect("launch");
        let client = cluster.client("org1", "bench0").expect("client");
        let n = client
            .call("bench_tx")
            .arg(1i64)
            .arg(2i64)
            .arg(3i64)
            .arg("payload")
            .arg(4.5f64)
            .submit_wait(Duration::from_secs(30))
            .expect("commit over TCP");
        assert!(matches!(n.status, TxStatus::Committed));
        cluster
            .await_height(n.block, Duration::from_secs(30))
            .expect("all nodes converge");

        // Every node sees the row, over its own TCP connection.
        for (i, org) in ["org1", "org2", "org3"].iter().enumerate() {
            let c = tcp_client(
                cluster.spec(),
                org,
                &ClusterSpec::bench_user(1),
                &cluster.client_addrs()[i],
            )
            .expect("reader client");
            let f1: i64 = c
                .select("SELECT f1 FROM bench_simple WHERE id = $1")
                .bind(1i64)
                .fetch_scalar()
                .expect("row visible");
            assert_eq!(f1, 2);
        }
        cluster.shutdown();
    }
}
