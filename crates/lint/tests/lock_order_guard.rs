//! Lock-order guard for the parallel commit path.
//!
//! The apply-worker pool (`crates/node/src/commit/apply.rs`) runs while
//! the block processor holds the commit stage, and the executor pool's
//! `node::waiting` lock gates the release of parked executions right
//! after the apply barrier. A nested acquisition coupling the pool's
//! run-state locks with `node::waiting` (in either direction) is one
//! refactor away from a commit-thread/worker deadlock — so beyond the
//! global acyclicity check, this test pins the apply locks to be
//! leaf-only: no edge in the workspace lock graph touches them at all.

use bcrdb_lint::{load_workspace, locks};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// The apply pool's run-state lock sites, by lint key.
const APPLY_LOCKS: &[&str] = &["node::out", "node::remaining"];

#[test]
fn lock_graph_is_acyclic() {
    let files = load_workspace(&workspace_root()).expect("workspace scan");
    let graph = locks::build_graph(&files);
    let mut findings = Vec::new();
    locks::check(&graph, &mut findings);
    assert!(
        findings.is_empty(),
        "lock-order cycle:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn apply_pool_locks_are_leaf_only() {
    let files = load_workspace(&workspace_root()).expect("workspace scan");
    let graph = locks::build_graph(&files);
    // The apply locks exist (guards against a rename silently retiring
    // this test)...
    for key in APPLY_LOCKS {
        let field = key.split("::").nth(1).unwrap();
        let apply_src = files
            .iter()
            .find(|f| f.rel == "crates/node/src/commit/apply.rs")
            .expect("apply.rs is part of the workspace");
        assert!(
            apply_src.raw.contains(&format!("{field}.lock()")),
            "apply.rs no longer takes `{field}.lock()`; update APPLY_LOCKS"
        );
    }
    // ...and appear in no lock-order edge whatsoever: they are only
    // ever taken one at a time, never nested inside or around another
    // lock — in particular never against the exec pool's
    // `node::waiting`.
    let offending: Vec<String> = graph
        .edges
        .iter()
        .filter(|((a, b), _)| {
            APPLY_LOCKS.contains(&a.as_str()) || APPLY_LOCKS.contains(&b.as_str())
        })
        .map(|((a, b), (file, line))| format!("{a} -> {b} at {file}:{line}"))
        .collect();
    assert!(
        offending.is_empty(),
        "apply-pool locks entered the lock-order graph:\n  {}",
        offending.join("\n  ")
    );
}

/// The buffer pool's innermost lock sites. `storage::latch` guards the
/// frame table and clock hand; `storage::disk` guards one page file's
/// fd + journal. Faults and write-back take them *last* — a heap
/// `slots` lock is routinely held around both (`fault`, `spill`), so
/// acquiring any further lock while holding them would couple the
/// commit path to the eviction path and is one refactor away from an
/// ABBA deadlock against a concurrent fault.
const POOL_LOCKS: &[&str] = &["storage::latch", "storage::disk"];

#[test]
fn buffer_pool_locks_never_wrap_another_lock() {
    let files = load_workspace(&workspace_root()).expect("workspace scan");
    let graph = locks::build_graph(&files);
    // The pool locks exist under their pinned names (guards against a
    // rename silently retiring this test)...
    let pager_src = files
        .iter()
        .find(|f| f.rel == "crates/storage/src/pager.rs")
        .expect("pager.rs is part of the workspace");
    for key in POOL_LOCKS {
        let field = key.split("::").nth(1).unwrap();
        assert!(
            pager_src.raw.contains(&format!("{field}.lock()")),
            "pager.rs no longer takes `{field}.lock()`; update POOL_LOCKS"
        );
    }
    // ...and are strictly leaf acquisitions: incoming edges are fine
    // (the `files` directory and heap locks wrap them), outgoing edges
    // are not — nothing may be acquired while a pool lock is held.
    let offending: Vec<String> = graph
        .edges
        .iter()
        .filter(|((a, _), _)| POOL_LOCKS.contains(&a.as_str()))
        .map(|((a, b), (file, line))| format!("{a} -> {b} at {file}:{line}"))
        .collect();
    assert!(
        offending.is_empty(),
        "a lock is acquired while a buffer-pool lock is held:\n  {}",
        offending.join("\n  ")
    );
}
