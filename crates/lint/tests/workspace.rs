//! Workspace snapshot tests: the committed artifacts must match a
//! fresh scan, so they can never drift from the code.

use bcrdb_lint::{analyze_root, baseline};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn committed_baseline_matches_fresh_scan() {
    let root = workspace_root();
    let analysis = analyze_root(&root).expect("workspace scan");
    let committed = std::fs::read_to_string(root.join("LINT_BASELINE.txt"))
        .expect("LINT_BASELINE.txt is committed at the workspace root");
    assert_eq!(
        baseline::parse(&baseline::render(&analysis.findings)),
        baseline::parse(&committed),
        "LINT_BASELINE.txt is stale; regenerate with `cargo run -p bcrdb-lint -- --write-baseline`"
    );
}

#[test]
fn workspace_scan_is_clean() {
    // Stronger than the baseline match: the workspace itself carries
    // zero findings — every determinism exception is annotated, the
    // lock graph is acyclic, and no wire size drifted.
    let analysis = analyze_root(&workspace_root()).expect("workspace scan");
    assert!(
        analysis.findings.is_empty(),
        "unannotated findings:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn committed_lock_graph_matches_fresh_scan() {
    let root = workspace_root();
    let analysis = analyze_root(&root).expect("workspace scan");
    let committed = std::fs::read_to_string(root.join("LOCK_ORDER.dot"))
        .expect("LOCK_ORDER.dot is committed at the workspace root");
    assert_eq!(
        analysis.lock_dot, committed,
        "LOCK_ORDER.dot is stale; regenerate with `cargo run -p bcrdb-lint -- --dot LOCK_ORDER.dot`"
    );
}
