//! Fixture-tree tests: each directory under `fixtures/` is a miniature
//! workspace; the analyzer must produce exactly the expected findings.

use bcrdb_lint::{analyze_root, Finding};
use std::path::PathBuf;

fn run(fixture: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    analyze_root(&root).expect("fixture scan").findings
}

#[test]
fn clean_fixture_has_no_findings() {
    let out = run("clean");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn hash_iter_fixture_is_flagged() {
    let out = run("hash_iter");
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "hash-iter");
    assert!(out[0].detail.contains("votes.iter()"), "{out:?}");
}

#[test]
fn wall_clock_fixture_is_flagged() {
    let out = run("wall_clock");
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "wall-clock");
}

#[test]
fn suppressed_fixture_is_clean() {
    let out = run("suppressed");
    assert!(out.is_empty(), "annotated findings must not fire: {out:?}");
}

#[test]
fn lock_cycle_fixture_is_flagged() {
    let out = run("lock_cycle");
    assert!(
        out.iter().any(|f| f.rule == "lock-cycle"),
        "ABBA must be a cycle: {out:?}"
    );
    let cycle = out.iter().find(|f| f.rule == "lock-cycle").unwrap();
    assert!(cycle.detail.contains("ordering::alpha"), "{cycle:?}");
    assert!(cycle.detail.contains("ordering::beta"), "{cycle:?}");
}

#[test]
fn wire_drift_fixture_is_flagged() {
    let out = run("wire_drift");
    assert!(
        out.iter()
            .any(|f| f.rule == "wire-arms" && f.detail.contains("Msg::Ack")),
        "missing variant must be drift: {out:?}"
    );
    assert!(
        out.iter()
            .any(|f| f.rule == "wire-arms" && f.detail.contains("wildcard")),
        "wildcard arm must be drift: {out:?}"
    );
}

#[test]
fn magic_size_fixture_is_flagged() {
    let out = run("magic_size");
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "magic-size");
    assert!(out[0].detail.contains("29 * 8"), "{out:?}");
}

#[test]
fn bad_slots_fixture_is_flagged() {
    let out = run("bad_slots");
    assert!(
        out.iter()
            .any(|f| f.rule == "wire-slots" && f.detail.contains("Snap.b has no slot entry")),
        "uncovered field must be drift: {out:?}"
    );
    assert!(
        out.iter()
            .any(|f| f.rule == "wire-slots" && f.detail.contains("ghost")),
        "unknown entry must be drift: {out:?}"
    );
}
