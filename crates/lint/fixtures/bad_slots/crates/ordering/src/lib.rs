//! Slot-table drift fixture: the table misses a field and names a
//! nonexistent one.
pub struct Snap {
    pub a: u64,
    pub b: u64,
    pub inner: Inner,
}

pub struct Inner {
    pub x: u64,
}

// bcrdb-lint: slots(Snap)
pub const SLOTS: &[&str] = &[
    "a",
    "inner.x",
    "ghost",
];
