//! Violation fixture: wall-clock read on the consensus path.
use std::time::Instant;

pub fn decide() -> bool {
    let now = Instant::now();
    now.elapsed().as_millis() % 2 == 0
}
