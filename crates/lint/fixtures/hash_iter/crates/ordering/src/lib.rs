//! Violation fixture: order-sensitive iteration over a hash map.
use std::collections::HashMap;

pub struct State {
    votes: HashMap<u64, u64>,
}

pub fn serialize(state: &State) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, v) in state.votes.iter() {
        out.push(k + v);
    }
    out
}
