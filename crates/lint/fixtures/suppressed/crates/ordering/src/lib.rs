//! Suppression fixture: the same violations, annotated with reasons.
use std::collections::HashMap;
use std::time::Instant;

pub struct State {
    votes: HashMap<u64, u64>,
}

pub fn total(state: &State) -> u64 {
    // bcrdb-lint: allow(hash-iter, reason = "sum is order-insensitive")
    state.votes.values().sum()
}

pub fn stamp() -> Instant {
    // bcrdb-lint: allow(wall-clock, reason = "local timer, never replicated")
    Instant::now()
}
