//! Wire-drift fixture: the size function forgot a variant and hides
//! behind a wildcard arm.
pub enum Msg {
    Ping,
    Payload(Vec<u8>),
    Ack,
}

pub fn wire_size(m: &Msg) -> usize {
    match m {
        Msg::Ping => 1,
        Msg::Payload(p) => 5 + p.len(),
        _ => 0,
    }
}
