//! Clean fixture: ordered collections, no clocks, disciplined locks.
use std::collections::BTreeMap;

pub struct State {
    rounds: BTreeMap<u64, u64>,
    lookup: HashMap<u64, u64>,
}

pub fn sum(state: &State) -> u64 {
    // BTreeMap iteration is ordered; HashMap point lookups are fine.
    let direct = state.lookup.get(&1).copied().unwrap_or(0);
    state.rounds.values().sum::<u64>() + direct
}

pub fn locked(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let ga = a.lock();
    let gb = b.lock();
    *ga + *gb
}
