//! Deliberate ABBA fixture: two functions acquire the same pair of
//! locks in opposite orders.
pub struct S {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

pub fn forward(s: &S) -> u64 {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    *a + *b
}

pub fn backward(s: &S) -> u64 {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    *a + *b
}
