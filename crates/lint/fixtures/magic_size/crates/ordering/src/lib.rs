//! Magic-size fixture: an unexplained byte product in a size function.
pub struct Snapshot;

pub fn response_wire_size(_s: &Snapshot) -> usize {
    1 + 29 * 8
}
