//! Lock-order analysis.
//!
//! For every function body in the workspace, this pass extracts the
//! sequence of nested `lock()`/`read()`/`write()` acquisitions. Each
//! acquisition is keyed by a *lock-site identifier* —
//! `<crate>::<receiver-tail-ident>` — the last identifier of the
//! receiver chain, which in this workspace is always the lock field
//! name (`env.processed.lock()` → `node::processed`). Whenever lock B
//! is taken while lock A is held, the edge `A → B` joins the
//! cross-crate lock-order graph; a cycle in that graph is a potential
//! ABBA deadlock and fails the build (`lock-cycle`).
//!
//! Guard lifetimes are approximated from syntax:
//! * an unbound guard (`x.lock().push(v)`) is released at the `;`
//!   ending its statement;
//! * a `let`-bound guard lives until its block closes (the brace depth
//!   drops below the binding), or until an explicit `drop(name)`.
//!
//! The analysis is name-level and intra-function: it does not see
//! locks held across function calls. That keeps it free of false
//! cycles; the complementary dynamic check is the scheduled TSan job.

use crate::scanner::SourceFile;
use crate::textutil::*;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// The cross-crate lock-order graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Directed edges held → newly-acquired, with one example site
    /// (`file`, `line`) per edge.
    pub edges: BTreeMap<(String, String), (String, usize)>,
}

/// One acquisition currently on the per-function stack.
struct Held {
    key: String,
    /// Brace depth at acquisition.
    depth: i32,
    /// `let`-bound guard name, or `None` for a temporary.
    bound: Option<String>,
}

/// Extract lock acquisition edges from every function in `files`.
pub fn build_graph(files: &[SourceFile]) -> LockGraph {
    let mut graph = LockGraph::default();
    for file in files {
        scan_file(file, &mut graph);
    }
    graph
}

fn scan_file(file: &SourceFile, graph: &mut LockGraph) {
    let code = &file.code;
    for fn_pos in word_positions(code, "fn") {
        let Some(open_rel) = code[fn_pos..].find('{') else {
            continue;
        };
        // Trait method declarations end in `;` before any `{`.
        if let Some(semi_rel) = code[fn_pos..].find(';') {
            if semi_rel < open_rel && !code[fn_pos..fn_pos + semi_rel].contains('(') {
                continue;
            }
        }
        let open = fn_pos + open_rel;
        let close = matching_brace(code, open);
        scan_body(file, open, close, graph);
    }
}

/// Lock sites inside `code[open..=close]`, tracked against a guard
/// stack, emitting held→new edges.
fn scan_body(file: &SourceFile, open: usize, close: usize, graph: &mut LockGraph) {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut stack: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i <= close {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                stack.retain(|h| h.depth <= depth);
            }
            b';' => {
                // Temporaries die at the end of their statement.
                stack.retain(|h| h.bound.is_some() || h.depth != depth);
            }
            b'.' => {
                if let Some(key) = lock_site_at(file, i) {
                    let line = line_at(code, i);
                    for held in &stack {
                        if held.key != key {
                            graph
                                .edges
                                .entry((held.key.clone(), key.clone()))
                                .or_insert_with(|| (file.rel.clone(), line));
                        }
                    }
                    let bound = binding_name(code, i);
                    stack.push(Held { key, depth, bound });
                    // Skip past the call so `.lock()` isn't rescanned.
                }
            }
            // `drop(name)` releases a bound guard early.
            b'd' if ident_starting_at(code, i) == Some("drop")
                && (i == 0 || !is_ident(bytes[i - 1])) =>
            {
                let after = skip_ws(code, i + 4);
                if bytes.get(after) == Some(&b'(') {
                    if let Some(name) = ident_starting_at(code, skip_ws(code, after + 1)) {
                        stack.retain(|h| h.bound.as_deref() != Some(name));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Is the `.` at `dot` the start of a `lock()`/`read()`/`write()`
/// acquisition? Returns its lock-site key.
fn lock_site_at(file: &SourceFile, dot: usize) -> Option<String> {
    let code = &file.code;
    let after = &code[dot + 1..];
    // The empty-parens requirement filters `io::Read::read(buf)`-style
    // calls, which always take arguments.
    ["lock", "read", "write"]
        .into_iter()
        .find(|m| after.starts_with(m) && after[m.len()..].starts_with("()"))?;
    let chain = receiver_chain(code, dot);
    let tail = chain
        .iter()
        .find(|id| *id != "self")
        .cloned()
        .or_else(|| chain.first().cloned())?;
    Some(format!("{}::{}", file.crate_name, tail))
}

/// The `let <name> =` binding of the expression containing the lock
/// call at `dot`, if any.
fn binding_name(code: &str, dot: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let chain = receiver_chain(code, dot);
    // Walk back over the chain to its start, then expect `=` and a
    // name, same approach as the determinism pass.
    let mut pos = dot;
    let mut remaining = chain.len();
    while remaining > 0 && pos > 0 {
        pos = skip_ws_back(code, pos);
        let c = bytes[pos - 1];
        if c == b')' {
            let mut d = 0i32;
            while pos > 0 {
                match bytes[pos - 1] {
                    b')' => d += 1,
                    b'(' => {
                        d -= 1;
                        if d == 0 {
                            pos -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                pos -= 1;
            }
        } else if c == b'?' || c == b'.' {
            pos -= 1;
        } else if is_ident(c) {
            let id = ident_ending_at(code, pos)?;
            pos -= id.len();
            remaining -= 1;
        } else {
            break;
        }
    }
    let pos = skip_ws_back(code, pos);
    if pos == 0 || bytes[pos - 1] != b'=' {
        return None;
    }
    if pos >= 2
        && matches!(
            bytes[pos - 2],
            b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/'
        )
    {
        return None;
    }
    let name_end = skip_ws_back(code, pos - 1);
    let name = ident_ending_at(code, name_end)?;
    if name == "let" || name == "mut" {
        return None;
    }
    Some(name.to_string())
}

/// Report every cycle in the graph as a `lock-cycle` finding.
pub fn check(graph: &LockGraph, out: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in graph.edges.keys() {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default();
    }
    // Iterative DFS with colors; report the first cycle through each
    // back edge.
    let mut color: BTreeMap<&str, u8> = adj.keys().map(|k| (*k, 0u8)).collect();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        if color[start] != 0 {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        dfs(
            start,
            &adj,
            &mut color,
            &mut path,
            graph,
            &mut reported,
            out,
        );
    }
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    color: &mut BTreeMap<&'a str, u8>,
    path: &mut Vec<&'a str>,
    graph: &LockGraph,
    reported: &mut BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    color.insert(node, 1);
    path.push(node);
    for &next in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
        match color.get(next).copied().unwrap_or(0) {
            0 => dfs(next, adj, color, path, graph, reported, out),
            1 => {
                // Back edge: the cycle is path[pos..] + next.
                let pos = path.iter().position(|&n| n == next).unwrap_or(0);
                let mut cycle: Vec<&str> = path[pos..].to_vec();
                cycle.push(next);
                // Canonicalize: rotate so the smallest node leads.
                let detail = cycle.join(" -> ");
                if reported.insert(detail.clone()) {
                    let (file, line) = graph
                        .edges
                        .get(&(node.to_string(), next.to_string()))
                        .cloned()
                        .unwrap_or_default();
                    out.push(Finding {
                        file,
                        line,
                        rule: "lock-cycle",
                        detail: format!("lock-order cycle: {detail}"),
                    });
                }
            }
            _ => {}
        }
    }
    path.pop();
    color.insert(node, 2);
}

/// Render the graph as deterministic DOT for the DESIGN.md artifact.
pub fn to_dot(graph: &LockGraph) -> String {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in graph.edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let mut out = String::from(
        "digraph lock_order {\n    rankdir=LR;\n    node [shape=box, fontname=\"monospace\"];\n",
    );
    for n in &nodes {
        out.push_str(&format!("    \"{n}\";\n"));
    }
    for ((a, b), (file, line)) in &graph.edges {
        out.push_str(&format!(
            "    \"{a}\" -> \"{b}\" [label=\"{file}:{line}\"];\n"
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::scan(
            PathBuf::from("/x/lib.rs"),
            format!("crates/{crate_name}/src/lib.rs"),
            crate_name.into(),
            src.into(),
        )
    }

    #[test]
    fn nested_locks_make_an_edge() {
        let f = scan(
            "a",
            "fn f(s: &S) { let g = s.alpha.lock(); s.beta.lock().push(1); }\n",
        );
        let graph = build_graph(&[f]);
        assert!(graph
            .edges
            .contains_key(&("a::alpha".into(), "a::beta".into())));
    }

    #[test]
    fn sequential_locks_make_no_edge() {
        let f = scan(
            "a",
            "fn f(s: &S) { s.alpha.lock().push(1); s.beta.lock().push(2); }\n",
        );
        let graph = build_graph(&[f]);
        assert!(graph.edges.is_empty(), "{:?}", graph.edges);
    }

    #[test]
    fn drop_releases_bound_guard() {
        let f = scan(
            "a",
            "fn f(s: &S) { let g = s.alpha.lock(); drop(g); s.beta.lock().push(1); }\n",
        );
        let graph = build_graph(&[f]);
        assert!(graph.edges.is_empty(), "{:?}", graph.edges);
    }

    #[test]
    fn scope_end_releases_bound_guard() {
        let f = scan(
            "a",
            "fn f(s: &S) { { let g = s.alpha.lock(); } s.beta.lock().push(1); }\n",
        );
        let graph = build_graph(&[f]);
        assert!(graph.edges.is_empty(), "{:?}", graph.edges);
    }

    #[test]
    fn cycle_is_reported() {
        let f1 = scan(
            "a",
            "fn f(s: &S) { let g = s.alpha.lock(); s.beta.lock().push(1); }\n",
        );
        let f2 = scan(
            "a",
            "fn g(s: &S) { let g = s.beta.lock(); s.alpha.lock().push(1); }\n",
        );
        // Distinct rel paths so both files survive.
        let graph = build_graph(&[f1, f2]);
        let mut out = Vec::new();
        check(&graph, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock-cycle");
        assert!(out[0].detail.contains("a::alpha"), "{out:?}");
    }

    #[test]
    fn read_with_args_is_not_a_lock() {
        let f = scan(
            "a",
            "fn f(s: &S, buf: &mut [u8]) { let g = s.alpha.lock(); s.file.read(buf); }\n",
        );
        let graph = build_graph(&[f]);
        assert!(graph.edges.is_empty(), "{:?}", graph.edges);
    }

    #[test]
    fn dot_is_deterministic() {
        let f = scan(
            "a",
            "fn f(s: &S) { let g = s.alpha.lock(); s.beta.lock().push(1); }\n",
        );
        let graph = build_graph(&[f]);
        let dot = to_dot(&graph);
        assert!(dot.contains("\"a::alpha\" -> \"a::beta\""), "{dot}");
    }
}
