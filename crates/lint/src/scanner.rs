//! Source preparation for the rule passes: comment/string-aware
//! sanitization, suppression/directive parsing, and `#[cfg(test)]`
//! module blanking.
//!
//! Every rule works on [`SourceFile::code`], a copy of the file where
//! comments, string literals and test modules are replaced by spaces
//! (newlines preserved). That keeps line numbers intact while making
//! naive textual scans safe: a `HashMap` inside a doc comment or a
//! `".lock()"` inside a string can never produce a finding.

use std::cell::Cell;
use std::path::PathBuf;

/// One `// bcrdb-lint: allow(<rule>, reason = "…")` suppression.
#[derive(Debug)]
pub struct Allow {
    /// The suppressed rule name, e.g. `hash-iter`.
    pub rule: String,
    /// The mandatory justification; empty when the author omitted it
    /// (reported by the `bad-allow` rule).
    pub reason: String,
    /// 1-based line of the comment. The allow covers findings on this
    /// line and on the next line (for comment-above-statement style).
    pub line: usize,
    /// Set when a finding was suppressed by this allow; a never-used
    /// allow is reported by the `unused-allow` rule.
    pub used: Cell<bool>,
}

/// One `// bcrdb-lint: slots(<Struct>)` directive marking a wire-slot
/// const table (see the `wire-slots` rule).
#[derive(Debug)]
pub struct SlotsDirective {
    /// The struct the following const table describes.
    pub strukt: String,
    /// 1-based line of the directive comment.
    pub line: usize,
    /// The string entries of the const table following the directive.
    pub entries: Vec<String>,
}

/// A scanned source file, ready for the rule passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators, e.g.
    /// `crates/ordering/src/bft.rs`.
    pub rel: String,
    /// Crate directory name under `crates/`, e.g. `ordering`.
    pub crate_name: String,
    /// Raw file contents.
    pub raw: String,
    /// Sanitized contents: comments, strings and `#[cfg(test)]` modules
    /// blanked with spaces; newlines preserved, so (line, column) in
    /// `code` matches `raw`.
    pub code: String,
    /// Suppression comments, in file order.
    pub allows: Vec<Allow>,
    /// Wire-slot table directives, in file order.
    pub slots: Vec<SlotsDirective>,
}

impl SourceFile {
    /// Scan `raw` into a rule-ready file.
    pub fn scan(path: PathBuf, rel: String, crate_name: String, raw: String) -> SourceFile {
        let (mut code, comments) = sanitize(&raw);
        blank_test_modules(&mut code);
        let mut allows = Vec::new();
        let mut slots = Vec::new();
        for (line, text) in &comments {
            let Some(rest) = text.trim().strip_prefix("bcrdb-lint:") else {
                continue;
            };
            let rest = rest.trim();
            if let Some(args) = strip_call(rest, "allow") {
                let (rule, reason) = parse_allow_args(args);
                allows.push(Allow {
                    rule,
                    reason,
                    line: *line,
                    used: Cell::new(false),
                });
            } else if let Some(args) = strip_call(rest, "slots") {
                let entries = slot_entries_after(&raw, *line);
                slots.push(SlotsDirective {
                    strukt: args.trim().to_string(),
                    line: *line,
                    entries,
                });
            }
        }
        SourceFile {
            path,
            rel,
            crate_name,
            raw,
            code,
            allows,
            slots,
        }
    }

    /// The sanitized lines (1-based indexing via `line - 1`).
    pub fn code_lines(&self) -> Vec<&str> {
        self.code.lines().collect()
    }

    /// Is a finding of `rule` at `line` covered by an allow on the same
    /// line or the line directly above? Marks the allow used.
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        for a in &self.allows {
            if a.rule == rule && !a.reason.is_empty() && (a.line == line || a.line + 1 == line) {
                a.used.set(true);
                return true;
            }
        }
        false
    }
}

/// `strip_call("allow(x, y)", "allow")` → `Some("x, y")`.
fn strip_call<'a>(s: &'a str, name: &str) -> Option<&'a str> {
    let rest = s.strip_prefix(name)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    Some(&rest[..close])
}

/// Parse `hash-iter, reason = "why"` into (rule, reason).
fn parse_allow_args(args: &str) -> (String, String) {
    let (rule, rest) = match args.split_once(',') {
        Some((r, rest)) => (r.trim().to_string(), rest.trim()),
        None => (args.trim().to_string(), ""),
    };
    let reason = rest
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim())
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
        .unwrap_or("")
        .trim()
        .to_string();
    (rule, reason)
}

/// Collect the string literals of the const table following a `slots`
/// directive: every `"…"` from the directive line until the first `];`.
fn slot_entries_after(raw: &str, directive_line: usize) -> Vec<String> {
    let mut entries = Vec::new();
    for line in raw.lines().skip(directive_line) {
        let mut rest = line;
        while let Some(start) = rest.find('"') {
            let tail = &rest[start + 1..];
            let Some(end) = tail.find('"') else { break };
            entries.push(tail[..end].to_string());
            rest = &tail[end + 1..];
        }
        if line.contains("];") {
            break;
        }
    }
    entries
}

/// Blank comments and string/char literals with spaces, preserving
/// newlines. Returns the sanitized text plus the captured comment
/// bodies as (1-based line, text) pairs (block comments are captured at
/// their starting line).
pub fn sanitize(raw: &str) -> (String, Vec<(usize, String)>) {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        CharLit,
    }
    let mut out = String::with_capacity(raw.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut mode = Mode::Code;
    let mut line = 1usize;
    let mut comment_buf = String::new();
    let mut comment_line = 1usize;
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0usize;
    // The last code char emitted, for raw-string and lifetime lookback.
    let mut prev_code = ' ';
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied().unwrap_or('\0');
        if c == '\n' {
            if mode == Mode::LineComment {
                comments.push((comment_line, std::mem::take(&mut comment_buf)));
                mode = Mode::Code;
            }
            out.push('\n');
            line += 1;
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && next == '/' {
                    mode = Mode::LineComment;
                    comment_line = line;
                    comment_buf.clear();
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::BlockComment(1);
                    comment_line = line;
                    comment_buf.clear();
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    // `r"…"` / `br#"…"#` raw strings: count the hashes.
                    let mut j = i;
                    let mut hashes = 0usize;
                    while j > 0 && chars[j - 1] == '#' {
                        hashes += 1;
                        j -= 1;
                    }
                    let is_raw = j > 0
                        && (chars[j - 1] == 'r' && !prev_code.is_alphanumeric() || {
                            j > 1 && chars[j - 1] == 'r' && chars[j - 2] == 'b'
                        });
                    // Only a raw string if the hashes (if any) directly
                    // follow an `r`; a bare `"` after `#` tokens from
                    // attributes can't happen in valid Rust.
                    if is_raw
                        || (hashes == 0
                            && matches!(chars.get(i.wrapping_sub(1)), Some('r'))
                            && i > 0)
                    {
                        mode = Mode::RawStr(hashes);
                    } else {
                        mode = Mode::Str;
                    }
                    out.push('"');
                    i += 1;
                } else if c == '\'' {
                    // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                    let after = chars.get(i + 2).copied().unwrap_or('\0');
                    if next == '\\' || after == '\'' || !(next.is_alphanumeric() || next == '_') {
                        mode = Mode::CharLit;
                        out.push('\'');
                        i += 1;
                    } else {
                        // Lifetime: emit as-is.
                        out.push('\'');
                        prev_code = '\'';
                        i += 1;
                    }
                } else {
                    out.push(c);
                    if !c.is_whitespace() {
                        prev_code = c;
                    }
                    i += 1;
                }
            }
            Mode::LineComment => {
                comment_buf.push(c);
                out.push(' ');
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    if depth == 1 {
                        comments.push((comment_line, std::mem::take(&mut comment_buf)));
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    comment_buf.push(c);
                    out.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                    if chars.get(i - 1) == Some(&'\n') {
                        // String continuation across a line break.
                        out.pop();
                        out.pop();
                        out.push(' ');
                        out.push('\n');
                        line += 1;
                    }
                } else if c == '"' {
                    mode = Mode::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        mode = Mode::Code;
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        i += 1 + hashes;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Mode::CharLit => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    mode = Mode::Code;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    if mode == Mode::LineComment {
        comments.push((comment_line, comment_buf));
    }
    (out, comments)
}

/// Blank every `#[cfg(test)] mod … { … }` region: test code may be as
/// nondeterministic as it likes.
fn blank_test_modules(code: &mut String) {
    let bytes: Vec<char> = code.chars().collect();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut search = 0usize;
    let text: String = bytes.iter().collect();
    while let Some(pos) = text[search..].find("#[cfg(test)]") {
        let start = search + pos;
        // Find the opening brace of the following item.
        let Some(brace_rel) = text[start..].find('{') else {
            break;
        };
        let open = start + brace_rel;
        let mut depth = 0i32;
        let mut end = None;
        for (off, ch) in text[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(open + off);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = end.unwrap_or(text.len() - 1);
        spans.push((start, close));
        search = close + 1;
    }
    if spans.is_empty() {
        return;
    }
    let mut out: Vec<char> = text.chars().collect();
    for (s, e) in spans {
        for item in out.iter_mut().take(e + 1).skip(s) {
            if *item != '\n' {
                *item = ' ';
            }
        }
    }
    *code = out.into_iter().collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> SourceFile {
        SourceFile::scan(
            PathBuf::from("/x/lib.rs"),
            "crates/x/src/lib.rs".into(),
            "x".into(),
            src.into(),
        )
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan("let a = \"HashMap.iter()\"; // HashMap\nlet b = 1; /* Instant::now */\n");
        assert!(!f.code.contains("HashMap"));
        assert!(!f.code.contains("Instant"));
        assert_eq!(f.code.lines().count(), f.raw.lines().count());
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let f = scan("let a = r#\"x \"q\" HashSet\"#; let c = 'h'; let l: &'static str = \"y\";\n");
        assert!(!f.code.contains("HashSet"));
        assert!(f.code.contains("'static"), "lifetime survives: {}", f.code);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let f = scan("let a = \"x\\\"HashMap\"; let b = HashSet::new();\n");
        assert!(!f.code.contains("HashMap"));
        assert!(f.code.contains("HashSet"), "code after string survives");
    }

    #[test]
    fn cfg_test_modules_are_blanked() {
        let src = "fn live() { m.iter(); }\n#[cfg(test)]\nmod tests {\n    fn t() { m.keys(); }\n}\nfn live2() {}\n";
        let f = scan(src);
        assert!(f.code.contains("live2"));
        assert!(f.code.contains("iter"));
        assert!(!f.code.contains("keys"));
    }

    #[test]
    fn allow_directives_are_parsed() {
        let src = "// bcrdb-lint: allow(hash-iter, reason = \"sorted below\")\nx.iter();\n// bcrdb-lint: allow(wall-clock)\ny();\n";
        let f = scan(src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "hash-iter");
        assert_eq!(f.allows[0].reason, "sorted below");
        assert_eq!(f.allows[0].line, 1);
        assert_eq!(f.allows[1].reason, "", "missing reason parses empty");
        assert!(f.suppressed("hash-iter", 2), "line-above coverage");
        assert!(!f.suppressed("wall-clock", 4), "reasonless allow is inert");
        assert!(f.allows[0].used.get());
    }

    #[test]
    fn slots_directive_captures_table() {
        let src =
            "// bcrdb-lint: slots(Snap)\npub const S: &[&str] = &[\n    \"a\", \"b.c\",\n];\n";
        let f = scan(src);
        assert_eq!(f.slots.len(), 1);
        assert_eq!(f.slots[0].strukt, "Snap");
        assert_eq!(f.slots[0].entries, vec!["a".to_string(), "b.c".into()]);
    }
}
