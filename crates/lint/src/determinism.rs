//! Determinism lints for the consensus/commit path.
//!
//! Two rules, applied only to files in the determinism scope (see
//! [`crate::in_determinism_scope`]):
//!
//! * `hash-iter` — order-sensitive iteration over a `HashMap`/`HashSet`
//!   (or a type alias / guard thereof): `for … in`, `.iter()`,
//!   `.keys()`, `.values()`, `.drain()` and friends. Hash iteration
//!   order is seeded per-process, so any such loop whose effect reaches
//!   hashed, serialized, or delivered data diverges across nodes.
//! * `wall-clock` — `SystemTime::now` / `Instant::now` reads. Wall
//!   clocks differ across nodes; any read feeding replicated state is a
//!   divergence.
//!
//! Both are suppressible with
//! `// bcrdb-lint: allow(<rule>, reason = "…")` on the same or the
//! preceding line; the reason is mandatory.
//!
//! Name tracking is heuristic and textual: a name is "hash-typed" when
//! it is declared with a `HashMap`/`HashSet` annotation (field, param,
//! `let` with annotation, struct literal), assigned a
//! `HashMap::new()`-style expression, declared via a type alias whose
//! definition mentions a hash collection, or is a guard binding over a
//! hash-typed lock (`let g = self.records.read()`). The tracking is
//! file-local and name-level — precise enough in practice because the
//! workspace keeps collection fields distinctly named.

use crate::scanner::SourceFile;
use crate::textutil::*;
use crate::Finding;
use std::collections::BTreeSet;

/// Iteration methods whose visit order is the hash order.
const FLAGGED_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Run both determinism rules over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    wall_clock(file, out);
    hash_iter(file, out);
}

fn push(
    file: &SourceFile,
    out: &mut Vec<Finding>,
    rule: &'static str,
    line: usize,
    detail: String,
) {
    if !file.suppressed(rule, line) {
        out.push(Finding {
            file: file.rel.clone(),
            line,
            rule,
            detail,
        });
    }
}

fn wall_clock(file: &SourceFile, out: &mut Vec<Finding>) {
    for source in ["SystemTime", "Instant"] {
        for pos in word_positions(&file.code, source) {
            let rest = &file.code[pos + source.len()..];
            if rest.trim_start().starts_with("::now") {
                let line = line_at(&file.code, pos);
                push(
                    file,
                    out,
                    "wall-clock",
                    line,
                    format!("{source}::now() read on the commit path"),
                );
            }
        }
    }
}

/// Collect the set of identifiers declared with a hash-collection type
/// in this file (heuristic; see module docs).
pub fn hash_typed_names(file: &SourceFile) -> BTreeSet<String> {
    let code = &file.code;
    // Type words: the std collections plus any same-file alias whose
    // definition mentions one.
    let mut hash_words: BTreeSet<String> = ["HashMap", "HashSet"]
        .into_iter()
        .map(String::from)
        .collect();
    for pos in word_positions(code, "type") {
        let after = skip_ws(code, pos + 4);
        let Some(alias) = ident_starting_at(code, after) else {
            continue;
        };
        let Some(semi_rel) = code[after..].find(';') else {
            continue;
        };
        let def = &code[after..after + semi_rel];
        if contains_word(def, "HashMap") || contains_word(def, "HashSet") {
            hash_words.insert(alias.to_string());
        }
    }

    let mut names = BTreeSet::new();
    for word in &hash_words {
        for pos in word_positions(code, word) {
            if let Some(name) = binding_before(code, pos) {
                names.insert(name);
            }
        }
    }

    // Guard bindings: `let g = self.records.read()` makes `g`
    // hash-typed when `records` is. One fixpoint round suffices for
    // the workspace's nesting depth, but run a couple to be safe.
    for _ in 0..3 {
        let mut grew = false;
        for guard in [
            ".lock()",
            ".read()",
            ".write()",
            ".borrow()",
            ".borrow_mut()",
        ] {
            let method = &guard[1..guard.len() - 2];
            for pos in word_positions(code, method) {
                let dot = pos.saturating_sub(1);
                if code.as_bytes().get(dot) != Some(&b'.')
                    || !code[pos + method.len()..].starts_with("()")
                {
                    continue;
                }
                let chain = receiver_chain(code, dot);
                if !chain.iter().any(|id| names.contains(id)) {
                    continue;
                }
                if let Some(name) = binding_for_chain(code, dot, &chain) {
                    if names.insert(name) {
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    names
}

/// Given the dot of a `.lock()`-style call and its receiver chain,
/// find the `let <name> =` binding the expression is assigned to.
fn binding_for_chain(code: &str, dot: usize, chain: &[String]) -> Option<String> {
    // Walk back over the chain text to its start.
    let bytes = code.as_bytes();
    let mut pos = dot;
    let mut remaining = chain.len();
    while remaining > 0 && pos > 0 {
        pos = skip_ws_back(code, pos);
        let c = bytes[pos - 1];
        if c == b')' {
            let mut depth = 0i32;
            while pos > 0 {
                match bytes[pos - 1] {
                    b')' => depth += 1,
                    b'(' => {
                        depth -= 1;
                        if depth == 0 {
                            pos -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                pos -= 1;
            }
        } else if c == b'?' || c == b'.' {
            pos -= 1;
        } else if is_ident(c) {
            let id = ident_ending_at(code, pos)?;
            pos -= id.len();
            remaining -= 1;
        } else {
            break;
        }
    }
    let pos = skip_ws_back(code, pos);
    if pos == 0 || bytes[pos - 1] != b'=' {
        return None;
    }
    // Reject `==`, `=>`, `+=` and friends.
    if pos >= 2
        && matches!(
            bytes[pos - 2],
            b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/'
        )
    {
        return None;
    }
    let name_end = skip_ws_back(code, pos - 1);
    let name = ident_ending_at(code, name_end)?;
    if name == "mut" || name == "let" {
        return None;
    }
    Some(name.to_string())
}

/// Walk backward from a hash-type word occurrence to the identifier it
/// declares, if any: `records: RwLock<HashMap<…>>` → `records`;
/// `let seen = HashSet::new()` → `seen`. Returns `None` in
/// non-declaring positions (return types, turbofish, bare paths).
fn binding_before(code: &str, word_pos: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut pos = word_pos;
    let mut budget = 160usize; // stay within one declaration
    loop {
        pos = skip_ws_back(code, pos);
        if pos == 0 || budget == 0 {
            return None;
        }
        budget -= 1;
        let c = bytes[pos - 1];
        match c {
            b':' => {
                if pos >= 2 && bytes[pos - 2] == b':' {
                    // `std::collections::HashMap` — skip the path
                    // segment and keep walking left.
                    pos -= 2;
                    let end = skip_ws_back(code, pos);
                    let id = ident_ending_at(code, end)?;
                    pos = end - id.len();
                } else {
                    // Single `:` — a declaration annotation. The name
                    // is the ident just before it.
                    let end = skip_ws_back(code, pos - 1);
                    let name = ident_ending_at(code, end)?;
                    if KEYWORDS.contains(&name) {
                        return None;
                    }
                    return Some(name.to_string());
                }
            }
            b'=' => {
                if pos >= 2
                    && matches!(
                        bytes[pos - 2],
                        b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/'
                    )
                {
                    return None;
                }
                let end = skip_ws_back(code, pos - 1);
                let name = ident_ending_at(code, end)?;
                if KEYWORDS.contains(&name) {
                    return None;
                }
                return Some(name.to_string());
            }
            b'<' | b'>' | b',' | b'&' | b'\'' | b'(' => {
                pos -= 1;
            }
            b'[' => return None, // array/slice of maps iterates in index order
            _ if is_ident(c) => {
                let id = ident_ending_at(code, pos)?;
                if ORDERED_WRAPPERS.contains(&id) {
                    // `Vec<HashMap<…>>` etc: the binding iterates the
                    // ordered outer container, not the hash collection.
                    return None;
                }
                pos -= id.len();
            }
            _ => return None,
        }
    }
}

/// Outer containers whose own iteration order is deterministic even
/// when the element type is a hash collection.
const ORDERED_WRAPPERS: &[&str] = &["Vec", "VecDeque", "Option", "BinaryHeap"];

const KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "pub", "fn", "impl", "return", "in", "if", "else", "match", "type",
    "const", "static", "where", "dyn",
];

fn hash_iter(file: &SourceFile, out: &mut Vec<Finding>) {
    let code = &file.code;
    let names = hash_typed_names(file);
    if names.is_empty() {
        return;
    }

    // `.iter()`-style calls whose receiver chain touches a hash name.
    for method in FLAGGED_METHODS {
        for pos in word_positions(code, method) {
            let Some(dot) = pos.checked_sub(1) else {
                continue;
            };
            if code.as_bytes()[dot] != b'.' {
                continue;
            }
            // The order-sensitive methods are all argless; requiring
            // the empty parens also filters io::Read/Write methods.
            if !code[pos + method.len()..].starts_with("()") {
                continue;
            }
            let chain = receiver_chain(code, dot);
            let Some(hit) = chain.iter().find(|id| names.contains(*id)) else {
                continue;
            };
            let line = line_at(code, pos);
            push(
                file,
                out,
                "hash-iter",
                line,
                format!("{hit}.{method}() iterates a hash collection in nondeterministic order"),
            );
        }
    }

    // `for x in name`-style loops over a bare hash-typed name.
    for pos in word_positions(code, "for") {
        let after = skip_ws(code, pos + 3);
        if code.as_bytes().get(after) == Some(&b'<') {
            continue; // `for<'a>` HRTB
        }
        // Find the ` in ` keyword before the loop body brace.
        let Some(brace_rel) = code[pos..].find('{') else {
            continue;
        };
        let header = &code[pos..pos + brace_rel];
        let Some(in_rel) = find_in_keyword(header) else {
            continue; // `impl Trait for Type`
        };
        let expr = header[in_rel + 2..].trim();
        let expr = expr
            .trim_start_matches('&')
            .trim_start_matches("mut ")
            .trim();
        // Only a bare name / dotted path — method calls are covered by
        // the `.iter()` pass above.
        if expr.is_empty() || !expr.bytes().all(|b| is_ident(b) || b == b'.') {
            continue;
        }
        let last = expr.rsplit('.').next().unwrap_or(expr);
        if names.contains(last) {
            let line = line_at(code, pos);
            push(
                file,
                out,
                "hash-iter",
                line,
                format!("for-loop over hash collection {last} in nondeterministic order"),
            );
        }
    }
}

/// Offset of the ` in ` keyword inside a `for` header, if any.
fn find_in_keyword(header: &str) -> Option<usize> {
    let bytes = header.as_bytes();
    let mut from = 0;
    while let Some(rel) = header[from..].find("in") {
        let start = from + rel;
        let end = start + 2;
        let left_ok = start > 0 && !is_ident(bytes[start - 1]) && bytes[start - 1] != b'.';
        let right_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(src: &str) -> SourceFile {
        SourceFile::scan(
            PathBuf::from("/x/lib.rs"),
            "crates/ordering/src/lib.rs".into(),
            "ordering".into(),
            src.into(),
        )
    }

    fn findings(src: &str) -> Vec<Finding> {
        let f = scan(src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn field_annotation_declares_hash_name() {
        let src = "struct S { rounds: HashMap<u64, R> }\nfn f(s: &S) { for r in s.rounds { use_(r); } }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "hash-iter");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn let_new_declares_hash_name() {
        let src = "fn f() { let seen = HashSet::new(); for s in &seen { } }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn guard_binding_inherits_hash_type() {
        let src = "struct S { records: RwLock<HashMap<u64, R>> }\nfn f(s: &S) { let rec = s.records.read(); let n = rec.values().count(); }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].detail.contains("rec.values()"), "{out:?}");
    }

    #[test]
    fn type_alias_is_tracked() {
        let src = "type Shard = Mutex<HashMap<u64, Vec<u64>>>;\nstruct S { shard: Shard }\nfn f(s: &S) { let g = s.shard.lock(); for x in g.keys() { } }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn btree_is_clean_and_get_is_clean() {
        let src = "struct S { a: BTreeMap<u64, R>, b: HashMap<u64, R> }\nfn f(s: &S) { for x in &s.a { } let v = s.b.get(&1); }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn vec_of_maps_is_not_hash_typed() {
        let src = "struct S { shards: Vec<Mutex<HashMap<u64, u64>>> }\nfn f(s: &S) { for sh in &s.shards { use_(sh); } }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_and_suppressible() {
        let src = "fn f() { let t = Instant::now(); }\n// bcrdb-lint: allow(wall-clock, reason = \"metrics only\")\nfn g() { let t = SystemTime::now(); }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn reasonless_allow_does_not_suppress() {
        let src = "// bcrdb-lint: allow(wall-clock)\nfn f() { let t = Instant::now(); }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn chained_temp_guard_is_flagged() {
        let src = "struct S { m: Mutex<HashMap<u64, u64>> }\nfn f(s: &S) { let n = s.m.lock().keys().count(); }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
    }
}
