//! `bcrdb-lint` CLI.
//!
//! ```text
//! cargo run -p bcrdb-lint                      # report all findings
//! cargo run -p bcrdb-lint -- --deny-new       # CI gate: fail only on findings not in LINT_BASELINE.txt
//! cargo run -p bcrdb-lint -- --write-baseline # accept current findings
//! cargo run -p bcrdb-lint -- --dot LOCK_ORDER.dot
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or new findings with
//! `--deny-new`), 2 usage/IO error.

use bcrdb_lint::{analyze, baseline, load_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_FILE: &str = "LINT_BASELINE.txt";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny_new = false;
    let mut write_baseline = false;
    let mut dot_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--deny-new" => deny_new = true,
            "--write-baseline" => write_baseline = true,
            "--dot" => match args.next() {
                Some(p) => dot_path = Some(PathBuf::from(p)),
                None => return usage("--dot needs a path"),
            },
            "--help" | "-h" => {
                println!("{}", HELP);
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let files = match load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bcrdb-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let analysis = analyze(&files);
    println!(
        "bcrdb-lint: scanned {} files, lock graph has {} edges, {} finding(s)",
        files.len(),
        analysis
            .lock_dot
            .lines()
            .filter(|l| l.contains("->"))
            .count(),
        analysis.findings.len()
    );

    if let Some(path) = &dot_path {
        if let Err(e) = std::fs::write(path, &analysis.lock_dot) {
            eprintln!("bcrdb-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("bcrdb-lint: wrote lock-order graph to {}", path.display());
    }

    if write_baseline {
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, baseline::render(&analysis.findings)) {
            eprintln!("bcrdb-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "bcrdb-lint: wrote {} finding(s) to {}",
            analysis.findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if deny_new {
        let base_text = std::fs::read_to_string(root.join(BASELINE_FILE)).unwrap_or_default();
        let base = baseline::parse(&base_text);
        let new = baseline::new_findings(&analysis.findings, &base);
        if new.is_empty() {
            println!("bcrdb-lint: no findings beyond the committed baseline");
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "bcrdb-lint: {} finding(s) not in {}:",
            new.len(),
            BASELINE_FILE
        );
        for f in new {
            eprintln!("  {f}");
        }
        eprintln!(
            "fix the finding, or annotate it with // bcrdb-lint: allow(<rule>, reason = \"…\")"
        );
        return ExitCode::FAILURE;
    }

    if analysis.findings.is_empty() {
        return ExitCode::SUCCESS;
    }
    for f in &analysis.findings {
        println!("  {f}");
    }
    ExitCode::FAILURE
}

/// Default workspace root: the current directory when it looks like
/// the workspace, else the compile-time workspace the binary came
/// from.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("crates").is_dir() {
        cwd
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bcrdb-lint: {msg}\n{HELP}");
    ExitCode::from(2)
}

const HELP: &str =
    "usage: bcrdb-lint [--root <workspace>] [--deny-new] [--write-baseline] [--dot <path>]
  --root <path>      workspace root to scan (default: cwd or the built workspace)
  --deny-new         fail only on findings not in LINT_BASELINE.txt (CI gate)
  --write-baseline   accept the current findings into LINT_BASELINE.txt
  --dot <path>       write the lock-order graph as DOT";
