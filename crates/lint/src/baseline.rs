//! Findings baseline: `--deny-new` semantics.
//!
//! The baseline file (`LINT_BASELINE.txt` at the workspace root) holds
//! one line per accepted finding, tab-separated `rule\tfile\tdetail`.
//! Line numbers are deliberately excluded so unrelated edits don't
//! churn the file; duplicate keys are counted as a multiset. In
//! `--deny-new` mode a scan passes iff its findings are a sub-multiset
//! of the baseline — findings may disappear freely, but any new one
//! fails the build.

use crate::Finding;
use std::collections::BTreeMap;

/// A multiset of baseline keys.
pub type Baseline = BTreeMap<String, usize>;

/// The baseline key of a finding (no line number: stable across
/// unrelated edits).
pub fn key(f: &Finding) -> String {
    format!("{}\t{}\t{}", f.rule, f.file, f.detail)
}

/// Parse baseline file contents.
pub fn parse(text: &str) -> Baseline {
    let mut out = Baseline::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *out.entry(line.to_string()).or_insert(0) += 1;
    }
    out
}

/// Serialize findings to baseline file contents (sorted, one line per
/// occurrence).
pub fn render(findings: &[Finding]) -> String {
    let mut lines: Vec<String> = findings.iter().map(key).collect();
    lines.sort();
    let mut out = String::from(
        "# bcrdb-lint accepted findings. One line per finding: rule<TAB>file<TAB>detail.\n\
         # Regenerate with: cargo run -p bcrdb-lint -- --write-baseline\n",
    );
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// The findings not covered by the baseline (the multiset difference).
pub fn new_findings<'a>(findings: &'a [Finding], baseline: &Baseline) -> Vec<&'a Finding> {
    let mut budget = baseline.clone();
    let mut out = Vec::new();
    for f in findings {
        let k = key(f);
        match budget.get_mut(&k) {
            Some(n) if *n > 0 => *n -= 1,
            _ => out.push(f),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, detail: &str) -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule,
            detail: detail.into(),
        }
    }

    #[test]
    fn subset_passes_superset_fails() {
        let findings = vec![f("hash-iter", "a.iter()"), f("hash-iter", "a.iter()")];
        let base = parse(&render(&findings));
        assert!(new_findings(&findings, &base).is_empty());
        let mut more = findings.clone();
        more.push(f("hash-iter", "a.iter()"));
        assert_eq!(new_findings(&more, &base).len(), 1, "third copy is new");
        assert!(new_findings(&findings[..1], &base).is_empty());
    }

    #[test]
    fn keys_exclude_line_numbers() {
        let mut a = f("wall-clock", "Instant::now() read on the commit path");
        let mut b = a.clone();
        a.line = 1;
        b.line = 500;
        assert_eq!(key(&a), key(&b));
    }
}
