//! Wire-size drift checks.
//!
//! The simulated network charges every message its serialized size, so
//! each message type carries a hand-written `wire_size()`; when a
//! struct gains a field or an enum gains a variant, the size function
//! silently under-charges and every latency/throughput number drifts.
//! Three rules keep the pairs honest:
//!
//! * `wire-arms` — a `*wire_size*` function that matches on an enum
//!   defined in the same file must reference **every** variant of that
//!   enum, and must not hide behind a `_ =>` wildcard arm.
//! * `magic-size` — a bare `N * M` integer-literal product inside a
//!   `*wire_size*` function is an unexplained byte count; sizes must be
//!   derived from named constants (e.g. a slot table's `len() * 8`).
//! * `wire-slots` — a const table annotated
//!   `// bcrdb-lint: slots(Struct)` must list exactly the fields of
//!   `Struct` (one level of `outer.inner` nesting allowed for embedded
//!   structs defined in the same file). The table's length then feeds
//!   the `WIRE_SIZE` constant, so adding a field without updating the
//!   table is a build failure instead of a silent drift.

use crate::scanner::SourceFile;
use crate::textutil::*;
use crate::Finding;
use std::collections::BTreeMap;

/// Run all three wire rules over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let fns = wire_fns(&file.code);
    if !fns.is_empty() {
        let enums = enum_defs(&file.code);
        for (name, open, close) in &fns {
            check_arms(file, name, *open, *close, &enums, out);
            check_magic(file, name, *open, *close, out);
        }
    }
    check_slots(file, out);
}

fn push(
    file: &SourceFile,
    out: &mut Vec<Finding>,
    rule: &'static str,
    line: usize,
    detail: String,
) {
    if !file.suppressed(rule, line) {
        out.push(Finding {
            file: file.rel.clone(),
            line,
            rule,
            detail,
        });
    }
}

/// Every `fn` whose name contains `wire_size`, as (name, body open,
/// body close).
fn wire_fns(code: &str) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for pos in word_positions(code, "fn") {
        let after = skip_ws(code, pos + 2);
        let Some(name) = ident_starting_at(code, after) else {
            continue;
        };
        if !name.contains("wire_size") {
            continue;
        }
        let Some(open_rel) = code[pos..].find('{') else {
            continue;
        };
        let open = pos + open_rel;
        out.push((name.to_string(), open, matching_brace(code, open)));
    }
    out
}

/// Same-file enum definitions: name → (line, variant names).
fn enum_defs(code: &str) -> BTreeMap<String, (usize, Vec<String>)> {
    let mut out = BTreeMap::new();
    for pos in word_positions(code, "enum") {
        let after = skip_ws(code, pos + 4);
        let Some(name) = ident_starting_at(code, after) else {
            continue;
        };
        let Some(open_rel) = code[after..].find('{') else {
            continue;
        };
        let open = after + open_rel;
        let close = matching_brace(code, open);
        let variants = top_level_idents(&code[open + 1..close]);
        out.insert(name.to_string(), (line_at(code, pos), variants));
    }
    out
}

/// Identifiers that start items at depth 0 of a `{}`-stripped body:
/// enum variants (`Ack,` `Rows(Vec<Row>),` `Metrics { .. }`).
fn top_level_idents(body: &str) -> Vec<String> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut expect_item = true;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'{' | b'(' | b'<' | b'[' => depth += 1,
            b'}' | b')' | b'>' | b']' => depth -= 1,
            b',' if depth == 0 => expect_item = true,
            b'#' => {
                // Skip `#[…]` attributes.
                let j = skip_ws(body, i + 1);
                if bytes.get(j) == Some(&b'[') {
                    let mut d = 0i32;
                    let mut k = j;
                    while k < bytes.len() {
                        match bytes[k] {
                            b'[' => d += 1,
                            b']' => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k;
                }
            }
            b'=' => {
                // Discriminant `Variant = 3`; not an item start.
                expect_item = false;
            }
            _ if is_ident(c) && depth == 0 && expect_item => {
                let id = ident_starting_at(body, i).unwrap_or("");
                if !id.is_empty() {
                    out.push(id.to_string());
                    i += id.len();
                    expect_item = false;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// `wire-arms`: the size fn must reference every variant of any
/// same-file enum it matches on, with no wildcard arm.
fn check_arms(
    file: &SourceFile,
    fn_name: &str,
    open: usize,
    close: usize,
    enums: &BTreeMap<String, (usize, Vec<String>)>,
    out: &mut Vec<Finding>,
) {
    let body = &file.code[open..=close];
    let line = line_at(&file.code, open);
    for (enum_name, (_, variants)) in enums {
        if !body.contains(&format!("{enum_name}::")) {
            continue;
        }
        for v in variants {
            if !contains_word(body, v) {
                push(
                    file,
                    out,
                    "wire-arms",
                    line,
                    format!("{fn_name} does not cover {enum_name}::{v}"),
                );
            }
        }
        if contains_wildcard_arm(body) {
            push(
                file,
                out,
                "wire-arms",
                line,
                format!("{fn_name} hides {enum_name} variants behind a wildcard arm"),
            );
        }
    }
}

/// A `_ =>` match arm (with word-boundary check so `x_ =>` doesn't
/// count).
fn contains_wildcard_arm(body: &str) -> bool {
    let bytes = body.as_bytes();
    for (i, w) in body.as_bytes().windows(4).enumerate() {
        if w == b"_ =>" && (i == 0 || !is_ident(bytes[i - 1])) {
            return true;
        }
    }
    false
}

/// `magic-size`: a bare `intlit * intlit` product inside a size fn.
fn check_magic(
    file: &SourceFile,
    fn_name: &str,
    open: usize,
    close: usize,
    out: &mut Vec<Finding>,
) {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut i = open;
    while i <= close {
        if bytes[i] == b'*' {
            // Left operand: integer literal?
            let lend = skip_ws_back(code, i);
            let left = ident_ending_at(code, lend);
            // Right operand: integer literal?
            let rstart = skip_ws(code, i + 1);
            let right = ident_starting_at(code, rstart);
            if let (Some(l), Some(r)) = (left, right) {
                let l = l.to_string();
                let r = r.to_string();
                if is_int_literal(&l) && is_int_literal(&r) {
                    let line = line_at(code, i);
                    push(
                        file,
                        out,
                        "magic-size",
                        line,
                        format!("magic byte count {l} * {r} in {fn_name}; derive it from a named constant"),
                    );
                }
            }
        }
        i += 1;
    }
}

fn is_int_literal(tok: &str) -> bool {
    !tok.is_empty() && tok.bytes().all(|b| b.is_ascii_digit() || b == b'_')
}

/// `wire-slots`: validate every `slots(Struct)` table against the
/// struct's fields.
fn check_slots(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.slots.is_empty() {
        return;
    }
    let structs = struct_defs(&file.code);
    for dir in &file.slots {
        let Some(fields) = structs.get(&dir.strukt) else {
            push(
                file,
                out,
                "wire-slots",
                dir.line,
                format!(
                    "slots({}) names a struct not defined in this file",
                    dir.strukt
                ),
            );
            continue;
        };
        // Every entry must resolve to a field (one nesting level).
        let mut covered: BTreeMap<&str, bool> =
            fields.iter().map(|(f, _)| (f.as_str(), false)).collect();
        for entry in &dir.entries {
            let (top, sub) = match entry.split_once('.') {
                Some((t, s)) => (t, Some(s)),
                None => (entry.as_str(), None),
            };
            let Some(fld_ty) = fields.iter().find(|(f, _)| f == top).map(|(_, t)| t) else {
                push(
                    file,
                    out,
                    "wire-slots",
                    dir.line,
                    format!("slot entry {entry} is not a field of {}", dir.strukt),
                );
                continue;
            };
            covered.insert(top, true);
            if let Some(sub) = sub {
                match structs.get(fld_ty) {
                    Some(sub_fields) if sub_fields.iter().any(|(f, _)| f == sub) => {}
                    Some(_) => push(
                        file,
                        out,
                        "wire-slots",
                        dir.line,
                        format!("slot entry {entry} is not a field of {fld_ty}"),
                    ),
                    None => push(
                        file,
                        out,
                        "wire-slots",
                        dir.line,
                        format!("slot entry {entry}: {fld_ty} is not defined in this file"),
                    ),
                }
            }
        }
        for (field, seen) in covered {
            if !seen {
                push(
                    file,
                    out,
                    "wire-slots",
                    dir.line,
                    format!("{}.{field} has no slot entry", dir.strukt),
                );
            }
        }
    }
}

/// Same-file struct definitions: name → [(field, type-tail)]. The type
/// tail is the last path segment of the field's type with generics
/// stripped, enough to chase one nesting level.
fn struct_defs(code: &str) -> BTreeMap<String, Vec<(String, String)>> {
    let mut out = BTreeMap::new();
    for pos in word_positions(code, "struct") {
        let after = skip_ws(code, pos + 6);
        let Some(name) = ident_starting_at(code, after) else {
            continue;
        };
        let Some(open_rel) = code[after..].find('{') else {
            continue; // tuple/unit struct
        };
        // Don't cross a `;` (unit struct followed by other items).
        if let Some(semi_rel) = code[after..].find(';') {
            if semi_rel < open_rel {
                continue;
            }
        }
        let open = after + open_rel;
        let close = matching_brace(code, open);
        let body = &code[open + 1..close];
        let mut fields = Vec::new();
        let bytes = body.as_bytes();
        let mut depth = 0i32;
        let mut i = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'{' | b'(' | b'<' => depth += 1,
                b'}' | b')' | b'>' => depth -= 1,
                b':' if depth == 0 => {
                    let name_end = skip_ws_back(body, i);
                    if let Some(fname) = ident_ending_at(body, name_end) {
                        // Type tail: read forward to `,` or end at depth 0.
                        let ty_start = skip_ws(body, i + 1);
                        let mut j = ty_start;
                        let mut d = 0i32;
                        while j < bytes.len() {
                            match bytes[j] {
                                b'<' | b'(' | b'[' => d += 1,
                                b'>' | b')' | b']' => {
                                    if d == 0 {
                                        break;
                                    }
                                    d -= 1;
                                }
                                b',' if d == 0 => break,
                                _ => {}
                            }
                            j += 1;
                        }
                        let ty = body[ty_start..j].trim();
                        let tail = ty
                            .split('<')
                            .next()
                            .unwrap_or(ty)
                            .rsplit("::")
                            .next()
                            .unwrap_or(ty)
                            .trim()
                            .to_string();
                        fields.push((fname.to_string(), tail));
                        i = j;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out.insert(name.to_string(), fields);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(src: &str) -> SourceFile {
        SourceFile::scan(
            PathBuf::from("/x/lib.rs"),
            "crates/node/src/lib.rs".into(),
            "node".into(),
            src.into(),
        )
    }

    fn findings(src: &str) -> Vec<Finding> {
        let f = scan(src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn missing_variant_is_drift() {
        let src = "enum Msg { A, B(u8), C }\nfn wire_size(m: &Msg) -> usize { match m { Msg::A => 1, Msg::B(_) => 2, _ => 0 } }\n";
        let out = findings(src);
        assert!(out.iter().any(|f| f.detail.contains("Msg::C")), "{out:?}");
        assert!(out.iter().any(|f| f.detail.contains("wildcard")), "{out:?}");
    }

    #[test]
    fn full_coverage_is_clean() {
        let src = "enum Msg { A, B(u8) }\nfn wire_size(m: &Msg) -> usize { match m { Msg::A => 1, Msg::B(_) => 2 } }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn magic_product_is_flagged_and_named_const_is_not() {
        let src = "const W: usize = 8;\nfn wire_size() -> usize { 1 + 31 * 8 }\nfn response_wire_size() -> usize { 4 * W }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].detail.contains("31 * 8"));
    }

    #[test]
    fn slots_table_mismatch_is_drift() {
        let src = "struct Snap { a: u64, b: f64, o: Inner }\nstruct Inner { x: u64 }\n// bcrdb-lint: slots(Snap)\npub const SLOTS: &[&str] = &[\n    \"a\", \"o.x\", \"o.bogus\",\n];\n";
        let out = findings(src);
        assert!(
            out.iter()
                .any(|f| f.detail.contains("Snap.b has no slot entry")),
            "{out:?}"
        );
        assert!(out.iter().any(|f| f.detail.contains("o.bogus")), "{out:?}");
    }

    #[test]
    fn slots_table_match_is_clean() {
        let src = "struct Snap { a: u64, o: Inner }\nstruct Inner { x: u64, y: u64 }\n// bcrdb-lint: slots(Snap)\npub const SLOTS: &[&str] = &[\n    \"a\", \"o.x\", \"o.y\",\n];\n";
        let out = findings(src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn enum_in_other_fn_is_ignored() {
        let src =
            "enum Msg { A, B }\nfn other(m: &Msg) -> usize { match m { Msg::A => 1, _ => 0 } }\n";
        assert!(findings(src).is_empty());
    }
}
