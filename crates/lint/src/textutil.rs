//! Small byte-level text scanning helpers shared by the rule passes.
//!
//! All helpers operate on sanitized code (see [`crate::scanner`]), so
//! they may treat the input as plain program text: no comments, no
//! string contents.

/// Is `c` an identifier byte (`[A-Za-z0-9_]`)?
pub fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// 1-based line number of byte offset `pos`.
pub fn line_at(code: &str, pos: usize) -> usize {
    code.as_bytes()[..pos.min(code.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Byte offsets of every whole-word occurrence of `word`.
pub fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let start = from + rel;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

/// Does `code` contain `word` as a whole word?
pub fn contains_word(code: &str, word: &str) -> bool {
    !word_positions(code, word).is_empty()
}

/// The identifier ending exactly at byte offset `end` (exclusive), or
/// `None` if the preceding byte is not an identifier byte.
pub fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    if end == 0 || !is_ident(bytes[end - 1]) {
        return None;
    }
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    Some(&code[start..end])
}

/// The identifier starting exactly at byte offset `start`, or `None`.
pub fn ident_starting_at(code: &str, start: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    if start >= bytes.len() || !is_ident(bytes[start]) {
        return None;
    }
    let mut end = start;
    while end < bytes.len() && is_ident(bytes[end]) {
        end += 1;
    }
    Some(&code[start..end])
}

/// Skip whitespace (including newlines) backward from `pos`
/// (exclusive); returns the offset just after the previous
/// non-whitespace byte.
pub fn skip_ws_back(code: &str, mut pos: usize) -> usize {
    let bytes = code.as_bytes();
    while pos > 0 && bytes[pos - 1].is_ascii_whitespace() {
        pos -= 1;
    }
    pos
}

/// Skip whitespace forward from `pos`; returns the offset of the next
/// non-whitespace byte (or `code.len()`).
pub fn skip_ws(code: &str, mut pos: usize) -> usize {
    let bytes = code.as_bytes();
    while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
        pos += 1;
    }
    pos
}

/// Offset of the `}` matching the `{` at `open`, or `code.len() - 1`
/// when unbalanced.
pub fn matching_brace(code: &str, open: usize) -> usize {
    let bytes = code.as_bytes();
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

/// Walk a method-call receiver chain backward from the `.` at `dot`.
///
/// For `self.records.read().values()` with `dot` at the dot before
/// `values`, returns the chain identifiers right-to-left:
/// `["read", "records", "self"]`. Balanced `(...)` groups are skipped
/// so call results participate in the chain.
pub fn receiver_chain(code: &str, dot: usize) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut pos = dot;
    loop {
        pos = skip_ws_back(code, pos);
        if pos == 0 {
            break;
        }
        let c = bytes[pos - 1];
        if c == b')' {
            // Skip the balanced group, then expect the callee ident.
            let mut depth = 0i32;
            let mut i = pos;
            while i > 0 {
                match bytes[i - 1] {
                    b')' => depth += 1,
                    b'(' => {
                        depth -= 1;
                        if depth == 0 {
                            i -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i -= 1;
            }
            pos = i;
        } else if c == b'?' {
            pos -= 1;
        } else if is_ident(c) {
            let Some(id) = ident_ending_at(code, pos) else {
                break;
            };
            pos -= id.len();
            out.push(id.to_string());
            // Continue only across a field/method dot.
            let before = skip_ws_back(code, pos);
            if before > 0 && bytes[before - 1] == b'.' {
                pos = before - 1;
            } else {
                break;
            }
        } else if c == b'.' {
            pos -= 1;
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_respect_boundaries() {
        let code = "HashMap MyHashMap HashMapX HashMap";
        assert_eq!(word_positions(code, "HashMap").len(), 2);
        assert!(contains_word(code, "MyHashMap"));
    }

    #[test]
    fn chain_walks_through_calls() {
        let code = "let n = self.records.read().values();";
        let dot = code.find(".values").unwrap();
        assert_eq!(receiver_chain(code, dot), vec!["read", "records", "self"]);
    }

    #[test]
    fn chain_stops_at_statement_start() {
        let code = "foo(bar).lock()";
        let dot = code.find(".lock").unwrap();
        assert_eq!(receiver_chain(code, dot), vec!["foo"]);
    }
}
