//! `bcrdb-lint` — workspace static analysis for determinism, lock
//! ordering, and wire-size drift.
//!
//! The core safety claim of the system is that every node produces a
//! byte-identical chain, checkpoint hashes, and ledger. That property
//! is enforced dynamically by `tests/pipeline_determinism.rs`, but it
//! is one unordered `HashMap` iteration away from silent divergence.
//! This crate is the static standing guard: a hand-rolled token
//! scanner (no external deps, consistent with the offline
//! `crates/compat` policy) that walks every `crates/*/src/**.rs` file
//! and enforces three rule families:
//!
//! 1. **Determinism** ([`determinism`]) — order-sensitive iteration
//!    over `HashMap`/`HashSet` and wall-clock reads inside the
//!    consensus/commit-path scope, suppressible only via
//!    `// bcrdb-lint: allow(<rule>, reason = "…")`.
//! 2. **Lock order** ([`locks`]) — per-function nested
//!    `lock()`/`read()`/`write()` acquisition sequences, combined into
//!    a cross-crate lock-order graph; any cycle is a finding. The
//!    graph is emitted as a DOT artifact.
//! 3. **Wire-size drift** ([`wire`]) — pairs `wire_size()` impls with
//!    their type definitions, flagging enum arms missing from the size
//!    match and magic `N * M` byte constants not derived from a named
//!    slot table.

#![warn(missing_docs)]

pub mod baseline;
pub mod determinism;
pub mod locks;
pub mod scanner;
pub mod textutil;
pub mod wire;

use scanner::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file, `/`-separated.
    pub file: String,
    /// 1-based line number (0 for file-level findings such as cycles).
    pub line: usize,
    /// Rule name, e.g. `hash-iter`.
    pub rule: &'static str,
    /// Short human-readable detail; stable across unrelated edits (no
    /// line numbers inside) so it can key the baseline.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.detail
        )
    }
}

/// Full result of a workspace scan.
pub struct Analysis {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// The lock-order graph in DOT form (deterministic ordering).
    pub lock_dot: String,
}

/// Crates whose whole `src/` is in the determinism scope.
const DETERMINISM_CRATES: &[&str] = &["ordering", "txn", "chain", "engine"];
/// Individual files added to the determinism scope.
const DETERMINISM_FILES: &[&str] = &[
    "crates/node/src/processor.rs",
    "crates/node/src/commit/mod.rs",
    "crates/node/src/commit/apply.rs",
    // Paged storage: page images, spill/fault, and snapshot carry all
    // feed replicated state hashes, so hash-order iteration or clock
    // reads here diverge across nodes just like commit-path code.
    "crates/storage/src/page.rs",
    "crates/storage/src/pager.rs",
    "crates/storage/src/table.rs",
    "crates/storage/src/persist.rs",
    // Planner statistics feed plan choice, and plans choose the index
    // ranges that double as SSI predicate locks — divergent stats mean
    // divergent abort decisions and divergent chains.
    "crates/storage/src/stats.rs",
];

/// Is this file part of the consensus/commit path the determinism
/// rules guard?
pub fn in_determinism_scope(file: &SourceFile) -> bool {
    DETERMINISM_CRATES.contains(&file.crate_name.as_str())
        || DETERMINISM_FILES.contains(&file.rel.as_str())
}

/// Discover and scan every `crates/<name>/src/**/*.rs` under `root`.
///
/// The single-level `crates/<name>` glob deliberately skips the
/// vendored `crates/compat/*` shims, and only `src/` trees are
/// scanned, so integration tests and benches are out of scope.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = dir
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut rs_files = Vec::new();
        collect_rs(&src, &mut rs_files)?;
        rs_files.sort();
        for path in rs_files {
            let raw = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::scan(path, rel, crate_name.clone(), raw));
        }
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run every rule family over the scanned files.
pub fn analyze(files: &[SourceFile]) -> Analysis {
    let mut findings = Vec::new();
    for file in files {
        if in_determinism_scope(file) {
            determinism::check(file, &mut findings);
        }
        wire::check(file, &mut findings);
    }
    let graph = locks::build_graph(files);
    locks::check(&graph, &mut findings);
    let lock_dot = locks::to_dot(&graph);
    // Unused / malformed allows are findings too, after all rules ran.
    for file in files {
        for a in &file.allows {
            if a.reason.is_empty() {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: a.line,
                    rule: "bad-allow",
                    detail: format!("allow({}) is missing its reason = \"…\"", a.rule),
                });
            } else if !a.used.get() {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: a.line,
                    rule: "unused-allow",
                    detail: format!("allow({}) suppresses nothing", a.rule),
                });
            }
        }
    }
    findings.sort();
    findings.dedup();
    Analysis { findings, lock_dot }
}

/// Convenience: load + analyze in one call.
pub fn analyze_root(root: &Path) -> std::io::Result<Analysis> {
    let files = load_workspace(root)?;
    Ok(analyze(&files))
}
