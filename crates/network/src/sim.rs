//! The simulated network: registered endpoints, a delivery scheduler
//! thread, per-link bandwidth serialization.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_common::error::{Error, Result};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::profile::NetProfile;

/// A delivered message with its origin.
#[derive(Clone, Debug)]
pub struct Delivered<M> {
    /// Sender endpoint name.
    pub from: String,
    /// The message.
    pub msg: M,
}

struct Scheduled<M> {
    deliver_at: Instant,
    seq: u64,
    to: String,
    delivered: Delivered<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

struct State<M> {
    endpoints: HashMap<String, Sender<Delivered<M>>>,
    /// Endpoints currently cut off: messages from *or* to them are
    /// silently dropped at delivery time, while sends still succeed —
    /// exactly how a network partition looks to the sender (no error,
    /// just silence). Heal with [`SimNetwork::set_partitioned`].
    partitioned: HashSet<String>,
    queue: BinaryHeap<Scheduled<M>>,
    /// Next instant each directed link is free (bandwidth serialization).
    link_free: HashMap<(String, String), Instant>,
    /// Last scheduled delivery per link: jitter must never reorder a
    /// stream (links model TCP/TLS connections, which are FIFO).
    link_last_delivery: HashMap<(String, String), Instant>,
    profile: NetProfile,
    seq: u64,
    /// Deterministic jitter source (xorshift; no external dependency).
    rng_state: u64,
    shutdown: bool,
}

/// An in-process network with simulated delays.
///
/// Clone the `Arc` and hand it to every component; each component
/// registers an endpoint and receives messages on its channel.
pub struct SimNetwork<M> {
    state: Mutex<State<M>>,
    wake: Condvar,
}

impl<M: Send + Clone + 'static> SimNetwork<M> {
    /// Create a network with the given profile; spawns the delivery thread.
    pub fn new(profile: NetProfile) -> Arc<SimNetwork<M>> {
        let net = Arc::new(SimNetwork {
            state: Mutex::new(State {
                endpoints: HashMap::new(),
                partitioned: HashSet::new(),
                queue: BinaryHeap::new(),
                link_free: HashMap::new(),
                link_last_delivery: HashMap::new(),
                profile,
                seq: 0,
                rng_state: 0x9e3779b97f4a7c15,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let worker = Arc::clone(&net);
        std::thread::Builder::new()
            .name("simnet-delivery".into())
            .spawn(move || worker.delivery_loop())
            .expect("spawn delivery thread");
        net
    }

    /// Replace the network profile (e.g. switch LAN → WAN mid-test).
    pub fn set_profile(&self, profile: NetProfile) {
        self.state.lock().profile = profile;
    }

    /// Current profile.
    pub fn profile(&self) -> NetProfile {
        self.state.lock().profile
    }

    /// Register an endpoint; returns its receive channel.
    pub fn register(&self, name: impl Into<String>) -> Receiver<Delivered<M>> {
        let (tx, rx) = unbounded();
        self.state.lock().endpoints.insert(name.into(), tx);
        rx
    }

    /// Remove an endpoint (simulating a node crash); queued messages to it
    /// are dropped at delivery time.
    pub fn unregister(&self, name: &str) {
        self.state.lock().endpoints.remove(name);
    }

    /// Cut an endpoint off (network partition) or heal it. While
    /// partitioned, messages from or to the endpoint are dropped at
    /// delivery time but sends still *succeed* — senders see silence,
    /// not errors, matching a real partition. In-flight messages
    /// scheduled before the heal are dropped too.
    pub fn set_partitioned(&self, name: &str, partitioned: bool) {
        let mut st = self.state.lock();
        if partitioned {
            st.partitioned.insert(name.to_string());
        } else {
            st.partitioned.remove(name);
            // Messages addressed to or from the endpoint while it was cut
            // off are gone for good — drop them now so the heal does not
            // retroactively deliver them.
            let drained: Vec<Scheduled<M>> = std::mem::take(&mut st.queue)
                .into_iter()
                .filter(|s| s.to != name && s.delivered.from != name)
                .collect();
            st.queue = drained.into();
        }
    }

    /// Is the endpoint currently partitioned away?
    pub fn is_partitioned(&self, name: &str) -> bool {
        self.state.lock().partitioned.contains(name)
    }

    /// Registered endpoint names (sorted).
    pub fn endpoint_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.state.lock().endpoints.keys().cloned().collect();
        names.sort();
        names
    }

    /// Send `msg` of `size` bytes from `from` to `to`.
    pub fn send(&self, from: &str, to: &str, msg: M, size: usize) -> Result<()> {
        let mut st = self.state.lock();
        if st.shutdown {
            return Err(Error::Shutdown("network stopped".into()));
        }
        if !st.endpoints.contains_key(to) {
            return Err(Error::NotFound(format!("network endpoint {to}")));
        }
        let now = Instant::now();
        let profile = st.profile;
        // Jitter via xorshift64*.
        let jitter = if profile.jitter.is_zero() {
            Duration::ZERO
        } else {
            let mut x = st.rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            st.rng_state = x;
            let frac = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f64 / (1u64 << 24) as f64;
            profile.jitter.mul_f64(frac)
        };
        // Per-link bandwidth serialization: the link transmits one message
        // at a time.
        let link = (from.to_string(), to.to_string());
        let tx_delay = profile.transmission_delay(size);
        let free_at = st.link_free.get(&link).copied().unwrap_or(now).max(now);
        let tx_done = free_at + tx_delay;
        st.link_free.insert(link.clone(), tx_done);
        let mut deliver_at = tx_done + profile.latency + jitter;
        // FIFO per link: never deliver before an earlier message on the
        // same link.
        if let Some(last) = st.link_last_delivery.get(&link) {
            deliver_at = deliver_at.max(*last);
        }
        st.link_last_delivery.insert(link, deliver_at);

        st.seq += 1;
        let seq = st.seq;
        st.queue.push(Scheduled {
            deliver_at,
            seq,
            to: to.to_string(),
            delivered: Delivered {
                from: from.to_string(),
                msg,
            },
        });
        drop(st);
        self.wake.notify_one();
        Ok(())
    }

    /// Broadcast to every endpoint except the sender.
    pub fn broadcast(&self, from: &str, msg: &M, size: usize) -> Result<usize> {
        let targets: Vec<String> = {
            let st = self.state.lock();
            st.endpoints
                .keys()
                .filter(|n| n.as_str() != from)
                .cloned()
                .collect()
        };
        let mut sent = 0;
        for t in &targets {
            if self.send(from, t, msg.clone(), size).is_ok() {
                sent += 1;
            }
        }
        Ok(sent)
    }

    /// Stop the delivery thread (queued messages are dropped).
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.wake.notify_all();
    }

    fn delivery_loop(&self) {
        let mut st = self.state.lock();
        loop {
            if st.shutdown {
                return;
            }
            let now = Instant::now();
            // Deliver everything due.
            while let Some(next) = st.queue.peek() {
                if next.deliver_at > now {
                    break;
                }
                let item = st.queue.pop().expect("peeked");
                if st.partitioned.contains(&item.to)
                    || st.partitioned.contains(&item.delivered.from)
                {
                    continue; // dropped by the partition
                }
                if let Some(tx) = st.endpoints.get(&item.to) {
                    // Receiver may be gone (dropped receiver): ignore.
                    let _ = tx.send(item.delivered);
                }
            }
            match st.queue.peek().map(|n| n.deliver_at) {
                Some(at) => {
                    let timeout = at.saturating_duration_since(Instant::now());
                    self.wake
                        .wait_for(&mut st, timeout.max(Duration::from_micros(10)));
                }
                None => {
                    self.wake.wait(&mut st);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn basic_delivery() {
        let net: Arc<SimNetwork<String>> = SimNetwork::new(NetProfile::instant());
        let rx_b = net.register("b");
        net.register("a");
        net.send("a", "b", "hello".into(), 5).unwrap();
        let got = rx_b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.from, "a");
        assert_eq!(got.msg, "hello");
        net.shutdown();
    }

    #[test]
    fn unknown_endpoint_is_error() {
        let net: Arc<SimNetwork<u32>> = SimNetwork::new(NetProfile::instant());
        net.register("a");
        assert!(net.send("a", "nope", 1, 4).is_err());
        net.shutdown();
    }

    #[test]
    fn latency_is_applied() {
        let profile = NetProfile {
            latency: Duration::from_millis(30),
            jitter: Duration::ZERO,
            bandwidth_bytes_per_sec: None,
        };
        let net: Arc<SimNetwork<u32>> = SimNetwork::new(profile);
        let rx = net.register("b");
        net.register("a");
        let t0 = Instant::now();
        net.send("a", "b", 7, 8).unwrap();
        let got = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(got.msg, 7);
        assert!(elapsed >= Duration::from_millis(28), "{elapsed:?}");
        net.shutdown();
    }

    #[test]
    fn ordering_preserved_per_link() {
        let net: Arc<SimNetwork<u32>> = SimNetwork::new(NetProfile::instant());
        let rx = net.register("b");
        net.register("a");
        for i in 0..100u32 {
            net.send("a", "b", i, 4).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap().msg, i);
        }
        net.shutdown();
    }

    #[test]
    fn bandwidth_serializes_large_messages() {
        // 1 MB/s link: two 100 KB messages take ≥ ~200 ms in total.
        let profile = NetProfile {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            bandwidth_bytes_per_sec: Some(1_000_000),
        };
        let net: Arc<SimNetwork<u32>> = SimNetwork::new(profile);
        let rx = net.register("b");
        net.register("a");
        let t0 = Instant::now();
        net.send("a", "b", 1, 100_000).unwrap();
        net.send("a", "b", 2, 100_000).unwrap();
        rx.recv_timeout(Duration::from_secs(2)).unwrap();
        rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(180), "{elapsed:?}");
        net.shutdown();
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let net: Arc<SimNetwork<u32>> = SimNetwork::new(NetProfile::instant());
        let rx_a = net.register("a");
        let rx_b = net.register("b");
        let rx_c = net.register("c");
        let sent = net.broadcast("a", &9, 4).unwrap();
        assert_eq!(sent, 2);
        assert_eq!(rx_b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 9);
        assert_eq!(rx_c.recv_timeout(Duration::from_secs(1)).unwrap().msg, 9);
        assert!(rx_a.recv_timeout(Duration::from_millis(50)).is_err());
        net.shutdown();
    }

    #[test]
    fn partition_drops_silently_and_heals() {
        let net: Arc<SimNetwork<u32>> = SimNetwork::new(NetProfile::instant());
        let rx_b = net.register("b");
        net.register("a");
        net.set_partitioned("b", true);
        assert!(net.is_partitioned("b"));
        // Sends into the partition succeed (the sender sees silence, not
        // an error) but never deliver — even after the heal.
        net.send("a", "b", 1, 4).unwrap();
        assert!(rx_b.recv_timeout(Duration::from_millis(50)).is_err());
        net.set_partitioned("b", false);
        assert!(rx_b.recv_timeout(Duration::from_millis(50)).is_err());
        // Post-heal traffic flows again.
        net.send("a", "b", 2, 4).unwrap();
        assert_eq!(rx_b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 2);
        net.shutdown();
    }

    #[test]
    fn unregister_simulates_crash() {
        let net: Arc<SimNetwork<u32>> = SimNetwork::new(NetProfile::instant());
        net.register("a");
        let _rx = net.register("b");
        net.unregister("b");
        assert!(net.send("a", "b", 1, 4).is_err());
        assert_eq!(net.endpoint_names(), vec!["a".to_string()]);
        net.shutdown();
    }
}
