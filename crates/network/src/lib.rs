#![warn(missing_docs)]
//! # bcrdb-network
//!
//! In-process network simulation with latency and bandwidth models.
//!
//! The paper evaluates two deployments (§5): all nodes in one data centre
//! (LAN: 5 Gbps, sub-millisecond RTT) and a multi-cloud/WAN setup spanning
//! four continents (50–60 Mbps, ~100 ms RTT). [`SimNetwork`] reproduces the
//! communication layer of both: every registered endpoint gets a receive
//! channel, and every send is scheduled for delivery after
//! `latency + jitter + size/bandwidth`, with per-link serialization (a link
//! transmits one message at a time, so bandwidth backpressure emerges
//! naturally).
//!
//! The network is generic over the message type so the ordering service
//! (orderer-to-orderer consensus messages) and the peer layer
//! (transactions, blocks, checkpoint votes) can share the implementation.

pub mod profile;
pub mod sim;
pub mod tcp;
pub mod wire;

pub use profile::NetProfile;
pub use sim::{Delivered, SimNetwork};
pub use wire::{FrameEvent, PeerAddr};
