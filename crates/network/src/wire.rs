//! Length-prefixed framing and endpoint addressing, shared by the
//! simulated and TCP transports.
//!
//! Every plane of the system — client↔node RPC, peer↔peer forwarding and
//! catch-up, node↔orderer submission and block delivery — moves
//! canonical-codec payloads. The simulated network charges those
//! payloads their codec-derived byte sizes; the TCP transport actually
//! sends the bytes. This module is the single place where the on-wire
//! envelope lives so the two backends cannot drift:
//!
//! * a frame is a 4-byte big-endian length followed by that many payload
//!   bytes ([`write_frame`]/[`read_frame`]);
//! * per-plane frame caps bound what a decoder will ever allocate,
//!   derived from the codec's own decode limits (see the constants);
//! * endpoint names ([`frontend_endpoint`], [`peer_endpoint`],
//!   [`orderer_endpoint`]) and socket-address pairs ([`PeerAddr`]) are
//!   defined once for both backends.
//!
//! A malformed frame is a protocol error, never a panic or a hang: an
//! oversized length prefix is [`Error::Decode`], a mid-frame EOF or
//! socket failure is [`Error::Io`], and a clean EOF at a frame boundary
//! is [`FrameEvent::Eof`] so per-connection workers can distinguish an
//! orderly disconnect from a torn one.

use std::io::{ErrorKind, Read, Write};

use bcrdb_common::error::{Error, Result};

/// Bytes of the frame header (one big-endian `u32` length).
pub const FRAME_HEADER: usize = 4;

/// Frame cap for the client↔node plane.
///
/// Derived from the client codec's own bounds: the largest legitimate
/// frames are `Submit` envelopes and `Rows` responses, both built from
/// codec rows whose decoder already rejects a row longer than its input.
/// 64 MiB comfortably covers a maximal query result while keeping a
/// corrupt length prefix from forcing a multi-gigabyte allocation.
pub const MAX_CLIENT_FRAME: u32 = 64 << 20;

/// Frame cap for the peer plane (forwarded transactions, blocks,
/// catch-up).
///
/// Catch-up responses are the largest messages in the system: the sync
/// codec accepts up to `MAX_SYNC_BLOCKS` (100 000) blocks or a full
/// state snapshot in one `SyncResponse`. 1 GiB bounds the allocation a
/// corrupt prefix can demand while never truncating an honest snapshot.
pub const MAX_PEER_FRAME: u32 = 1 << 30;

/// Frame cap for the node↔orderer plane.
///
/// Bounded by one block: the block codec rejects more than 1 000 000
/// transactions per block, and ordered blocks are cut at the configured
/// `block_size` long before that. 256 MiB covers any block the decoder
/// would accept downstream.
pub const MAX_ORDERER_FRAME: u32 = 256 << 20;

/// Endpoint name of a node's RPC frontend on the client plane.
pub fn frontend_endpoint(node_name: &str) -> String {
    format!("{node_name}/rpc")
}

/// Endpoint name of `org`'s database node on the peer plane.
pub fn peer_endpoint(org: &str) -> String {
    format!("{org}/peer")
}

/// Endpoint name of orderer replica `i` on the ordering plane.
pub fn orderer_endpoint(i: usize) -> String {
    format!("ordering/orderer{i}")
}

/// An `org=host:port` pair naming one peer's listening socket — the
/// address type shared by the `bcrdb-node` binary flags and the deploy
/// harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerAddr {
    /// The peer's organization.
    pub org: String,
    /// Its peer-plane listen address (`host:port`).
    pub addr: String,
}

impl PeerAddr {
    /// Parse `org=host:port`.
    pub fn parse(s: &str) -> Result<PeerAddr> {
        let (org, addr) = s
            .split_once('=')
            .ok_or_else(|| Error::Config(format!("peer address `{s}` is not org=host:port")))?;
        if org.is_empty() || addr.is_empty() {
            return Err(Error::Config(format!(
                "peer address `{s}` has an empty org or address"
            )));
        }
        Ok(PeerAddr {
            org: org.to_string(),
            addr: addr.to_string(),
        })
    }
}

impl std::fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.org, self.addr)
    }
}

/// Total bytes a payload occupies on the wire (header + payload).
pub fn framed_size(payload_len: usize) -> usize {
    FRAME_HEADER + payload_len
}

/// One read attempt's outcome on a framed stream.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame's payload.
    Frame(Vec<u8>),
    /// The peer closed the stream cleanly at a frame boundary.
    Eof,
    /// The read timed out before the first header byte arrived (the
    /// stream is idle, not broken); callers poll their stop flag and
    /// retry.
    Idle,
}

/// Write one frame. Fails with [`Error::Decode`] if the payload exceeds
/// `max` (the sender is about to violate the plane's protocol — the
/// receiver would sever the connection anyway), or [`Error::Io`] on a
/// socket failure.
///
/// Header and payload are sent as a single buffered write so concurrent
/// writers serialized by a lock can never interleave partial frames.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: u32) -> Result<()> {
    if payload.len() > max as usize {
        return Err(Error::Decode(format!(
            "outgoing frame of {} bytes exceeds the {max}-byte cap",
            payload.len()
        )));
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf).map_err(|e| Error::Io(e.to_string()))?;
    w.flush().map_err(|e| Error::Io(e.to_string()))
}

/// Read one frame.
///
/// * A clean EOF before the first header byte is [`FrameEvent::Eof`].
/// * A read timeout before the first header byte is [`FrameEvent::Idle`].
/// * A length prefix above `max` is [`Error::Decode`] — the stream can no
///   longer be trusted and must be closed.
/// * A timeout, error, or EOF *mid-frame* is [`Error::Io`] (torn frame).
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<FrameEvent> {
    let mut header = [0u8; FRAME_HEADER];
    // First header byte decides between EOF / idle / a frame in flight.
    let mut got = 0usize;
    while got == 0 {
        match r.read(&mut header) {
            Ok(0) => return Ok(FrameEvent::Eof),
            Ok(n) => got = n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Ok(FrameEvent::Idle);
            }
            Err(e) => return Err(Error::Io(e.to_string())),
        }
    }
    read_exact_io(r, &mut header[got..])?;
    let len = u32::from_be_bytes(header);
    if len > max {
        return Err(Error::Decode(format!(
            "incoming frame of {len} bytes exceeds the {max}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_io(r, &mut payload)?;
    Ok(FrameEvent::Frame(payload))
}

/// `read_exact` that treats *any* shortfall — including timeouts and
/// EOF — as a torn frame ([`Error::Io`]): once a header byte arrived,
/// the rest of the frame must follow.
fn read_exact_io(r: &mut impl Read, mut buf: &mut [u8]) -> Result<()> {
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => return Err(Error::Io("connection closed mid-frame".into())),
            Ok(n) => buf = &mut buf[n..],
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::Io(format!("torn frame: {e}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", MAX_CLIENT_FRAME).unwrap();
        write_frame(&mut buf, b"", MAX_CLIENT_FRAME).unwrap();
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, MAX_CLIENT_FRAME).unwrap() {
            FrameEvent::Frame(p) => assert_eq!(p, b"hello"),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r, MAX_CLIENT_FRAME).unwrap() {
            FrameEvent::Frame(p) => assert!(p.is_empty()),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_frame(&mut r, MAX_CLIENT_FRAME).unwrap(),
            FrameEvent::Eof
        ));
    }

    #[test]
    fn oversized_length_prefix_is_decode_error() {
        // Hand-corrupted header claiming a frame far beyond the cap.
        let bytes = u32::MAX.to_be_bytes().to_vec();
        let err = match read_frame(&mut Cursor::new(bytes), 1024) {
            Err(e) => e,
            Ok(ev) => panic!("accepted corrupt frame: {ev:?}"),
        };
        assert!(matches!(err, Error::Decode(_)), "{err}");
    }

    #[test]
    fn oversized_outgoing_frame_is_rejected() {
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &[0u8; 100], 10).unwrap_err();
        assert!(matches!(err, Error::Decode(_)), "{err}");
        assert!(buf.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn truncated_header_and_payload_are_io_errors() {
        // Header cut mid-way.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0]), 1024).unwrap_err();
        assert!(matches!(err, Error::Io(_)), "{err}");
        // Header promises 8 bytes, stream carries 3.
        let mut bytes = 8u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut Cursor::new(bytes), 1024).unwrap_err();
        assert!(matches!(err, Error::Io(_)), "{err}");
    }

    #[test]
    fn peer_addr_parsing() {
        let p = PeerAddr::parse("org1=127.0.0.1:4001").unwrap();
        assert_eq!(p.org, "org1");
        assert_eq!(p.addr, "127.0.0.1:4001");
        assert_eq!(p.to_string(), "org1=127.0.0.1:4001");
        assert!(PeerAddr::parse("org1").is_err());
        assert!(PeerAddr::parse("=x").is_err());
        assert!(PeerAddr::parse("a=").is_err());
    }

    #[test]
    fn endpoint_names_are_stable() {
        assert_eq!(frontend_endpoint("org1/peer"), "org1/peer/rpc");
        assert_eq!(peer_endpoint("org1"), "org1/peer");
        assert_eq!(orderer_endpoint(2), "ordering/orderer2");
        assert_eq!(framed_size(10), 14);
    }
}
