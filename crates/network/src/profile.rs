//! Network profiles: the two deployment models of §5 of the paper.

use std::time::Duration;

/// Latency/bandwidth model for every link of a simulated network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetProfile {
    /// One-way propagation latency.
    pub latency: Duration,
    /// Uniform jitter added on top of `latency` (0..=jitter).
    pub jitter: Duration,
    /// Link bandwidth in bytes/second; `None` = infinite.
    pub bandwidth_bytes_per_sec: Option<u64>,
}

impl NetProfile {
    /// Instantaneous delivery (unit tests).
    pub fn instant() -> NetProfile {
        NetProfile {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            bandwidth_bytes_per_sec: None,
        }
    }

    /// Single data centre (paper: 5 Gbps, sub-millisecond RTT).
    pub fn lan() -> NetProfile {
        NetProfile {
            latency: Duration::from_micros(200),
            jitter: Duration::from_micros(100),
            bandwidth_bytes_per_sec: Some(5_000_000_000 / 8),
        }
    }

    /// Multi-cloud WAN (paper: 50–60 Mbps, nodes on four continents —
    /// ~100 ms one-way effective latency increase observed in Fig 8a).
    pub fn wan() -> NetProfile {
        NetProfile {
            latency: Duration::from_millis(50),
            jitter: Duration::from_millis(10),
            bandwidth_bytes_per_sec: Some(55_000_000 / 8),
        }
    }

    /// Transmission delay of `bytes` on this link.
    pub fn transmission_delay(&self, bytes: usize) -> Duration {
        match self.bandwidth_bytes_per_sec {
            Some(bw) if bw > 0 => Duration::from_secs_f64(bytes as f64 / bw as f64),
            _ => Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_delay_scales_with_size() {
        let wan = NetProfile::wan();
        let small = wan.transmission_delay(1_000);
        let large = wan.transmission_delay(100_000);
        assert!(large > small * 50);
        // 100 KB at ~6.9 MB/s ≈ 14.5 ms — the paper's "block of 500 txs is
        // ~100 KB, so WAN bandwidth barely matters" observation.
        assert!(large < Duration::from_millis(30), "{large:?}");
        assert_eq!(
            NetProfile::instant().transmission_delay(1 << 20),
            Duration::ZERO
        );
    }

    #[test]
    fn profiles_are_ordered_sensibly() {
        assert!(NetProfile::wan().latency > NetProfile::lan().latency * 10);
    }
}
