//! TCP socket helpers shared by every listener in the system.
//!
//! The only non-trivial piece is [`bind_reuse`]: a killed-and-restarted
//! node must rebind its well-known peer/client ports immediately, but the
//! dying process's accepted sockets linger in `TIME_WAIT` on those ports,
//! and a plain [`TcpListener::bind`] then fails with `EADDRINUSE` for up
//! to a minute. Setting `SO_REUSEADDR` before `bind(2)` is the standard
//! server fix; `std` offers no hook for it, so on Linux the socket is
//! assembled through raw `libc` calls (no external crates).

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};

/// Bind a TCP listener with `SO_REUSEADDR` set, so restarting a process
/// on the same port succeeds while old connections sit in `TIME_WAIT`.
///
/// Falls back to a plain [`TcpListener::bind`] on non-Linux targets and
/// for IPv6 addresses.
pub fn bind_reuse<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
    let mut last_err = None;
    for sa in addr.to_socket_addrs()? {
        match bind_one(sa) {
            Ok(l) => return Ok(l),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no addresses to bind")))
}

#[cfg(target_os = "linux")]
fn bind_one(addr: SocketAddr) -> io::Result<TcpListener> {
    let SocketAddr::V4(v4) = addr else {
        return TcpListener::bind(addr);
    };
    linux::bind_v4_reuse(v4)
}

#[cfg(not(target_os = "linux"))]
fn bind_one(addr: SocketAddr) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::fd::FromRawFd;
    use std::os::raw::{c_int, c_uint, c_void};

    const AF_INET: c_int = 2;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEADDR: c_int = 2;
    const LISTEN_BACKLOG: c_int = 1024;

    /// `struct sockaddr_in` as the Linux kernel lays it out.
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16, // network byte order
        sin_addr: u32, // network byte order
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: c_uint,
        ) -> c_int;
        fn bind(fd: c_int, addr: *const SockaddrIn, len: c_uint) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn check(ret: c_int, fd: Option<c_int>) -> io::Result<()> {
        if ret < 0 {
            let err = io::Error::last_os_error();
            if let Some(fd) = fd {
                // SAFETY: fd was returned by socket() and is still open.
                unsafe { close(fd) };
            }
            return Err(err);
        }
        Ok(())
    }

    pub(super) fn bind_v4_reuse(addr: SocketAddrV4) -> io::Result<TcpListener> {
        // SAFETY: plain syscalls on integers/structs we own; the fd is
        // closed on every error path and otherwise handed to TcpListener,
        // which owns it from then on.
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
            check(fd, None)?;
            let one: c_int = 1;
            check(
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    SO_REUSEADDR,
                    &one as *const c_int as *const c_void,
                    std::mem::size_of::<c_int>() as c_uint,
                ),
                Some(fd),
            )?;
            let sa = SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from_be_bytes(addr.ip().octets()).to_be(),
                sin_zero: [0u8; 8],
            };
            check(
                bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as c_uint),
                Some(fd),
            )?;
            check(listen(fd, LISTEN_BACKLOG), Some(fd))?;
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_reuse_rebinds_immediately() {
        // Bind an ephemeral port, connect once so an accepted socket
        // exists, drop everything, and rebind the same port right away.
        let first = bind_reuse("127.0.0.1:0").unwrap();
        let port = first.local_addr().unwrap().port();
        let client = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
        let (accepted, _) = first.accept().unwrap();
        drop(accepted);
        drop(client);
        drop(first);
        let again = bind_reuse(("127.0.0.1", port)).unwrap();
        assert_eq!(again.local_addr().unwrap().port(), port);
    }

    #[test]
    fn bound_listener_accepts_connections() {
        let l = bind_reuse("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let t = std::thread::spawn(move || std::net::TcpStream::connect(addr).map(|_| ()));
        let (_s, _) = l.accept().unwrap();
        t.join().unwrap().unwrap();
    }
}
