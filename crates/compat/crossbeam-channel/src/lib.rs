//! A minimal, dependency-free drop-in for the subset of
//! `crossbeam-channel` this workspace uses: multi-producer
//! *multi-consumer* channels with cloneable senders **and** receivers,
//! `recv_timeout`, and blocking iteration.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched. This shim implements the channel over a `Mutex<VecDeque>`
//! plus a condition variable. `bounded(n)` is accepted for API
//! compatibility but does not apply backpressure (sends never block);
//! every call site in this workspace sends at most `n` messages into a
//! bounded channel anyway.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing to receive.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T>(Arc<Inner<T>>);

/// The receiving half of a channel. Cloneable (multi-consumer: each
/// message is delivered to exactly one receiver).
pub struct Receiver<T>(Arc<Inner<T>>);

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (Sender(Arc::clone(&inner)), Receiver(inner))
}

/// Create a "bounded" channel (see module docs: capacity is advisory).
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

impl<T> Sender<T> {
    /// True when `other` sends into the same channel as `self` (matches
    /// the real crate's `Sender::same_channel`). Used to cancel channel
    /// registrations by identity.
    pub fn same_channel(&self, other: &Sender<T>) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// True when every receiver has been dropped (sends would fail).
    pub fn is_disconnected(&self) -> bool {
        self.0
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers
            == 0
    }

    /// Send a message; fails when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if st.receivers == 0 {
            return Err(SendError(value));
        }
        st.items.push_back(value);
        drop(st);
        self.0.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.0
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.0.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = st.items.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .0
                .ready
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block until a message arrives, the channel disconnects, or
    /// `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = st.items.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .0
                .ready
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(v) = st.items.pop_front() {
            return Ok(v);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.0
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator: yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.0
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers -= 1;
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_channel_is_identity() {
        let (tx, _rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        let (other, _orx) = unbounded::<u8>();
        assert!(tx.same_channel(&tx2));
        assert!(!tx.same_channel(&other));
    }

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
    }

    #[test]
    fn drop_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn drop_all_receivers_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn cloned_receivers_split_the_stream() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a: Vec<i32> = rx1.iter().collect();
        let b: Vec<i32> = rx2.iter().collect();
        assert_eq!(a.len() + b.len(), 100);
    }

    #[test]
    fn iter_ends_at_disconnect() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
