//! A minimal, dependency-free drop-in for the subset of `criterion`
//! this workspace's micro-benchmarks use.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched. This shim keeps the same source-level API (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `criterion_group!`, `criterion_main!`) and implements a simple but
//! honest measurement loop: per benchmark it warms up, then runs
//! `sample_size` samples of auto-calibrated batches and reports the
//! median, min and max time per iteration. Statistical machinery
//! (outlier classification, regression) is intentionally out of scope.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Benchmark driver configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the measured samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n── group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let report = run_benchmark(self, &mut f);
        print_report(name, &report, None);
        self
    }
}

/// A group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let report = run_benchmark(self.criterion, &mut f);
        print_report(name, &report, self.throughput);
        self
    }

    /// Finish the group (printing is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `self.iters` times, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, f: &mut F) -> Report {
    // Calibrate: grow the batch until one batch takes ≥ ~1 ms (or the
    // routine is so slow a single iteration blows past the budget).
    let mut iters: u64 = 1;
    loop {
        let t = time_batch(f, iters);
        if t >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    // Warm up.
    let warm_deadline = Instant::now() + config.warm_up_time;
    while Instant::now() < warm_deadline {
        time_batch(f, iters);
    }
    // Measure.
    let per_sample = config.measurement_time / config.sample_size as u32;
    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let sample_deadline = Instant::now() + per_sample;
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        // At least one batch per sample, more if the budget allows.
        loop {
            total += time_batch(f, iters);
            total_iters += iters;
            if Instant::now() >= sample_deadline {
                break;
            }
        }
        samples_ns.push(total.as_nanos() as f64 / total_iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    Report {
        median_ns: samples_ns[samples_ns.len() / 2],
        min_ns: samples_ns[0],
        max_ns: samples_ns[samples_ns.len() - 1],
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn print_report(name: &str, r: &Report, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbps = n as f64 / r.median_ns * 1_000.0; // bytes/ns → MB/s
            format!("  ({mbps:.1} MB/s)")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / r.median_ns * 1e9;
            format!("  ({eps:.0} elem/s)")
        }
        None => String::new(),
    };
    println!(
        "{name:<40} time: [{} {} {}]{rate}",
        fmt_ns(r.min_ns),
        fmt_ns(r.median_ns),
        fmt_ns(r.max_ns),
    );
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran + 1)
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
