//! A minimal, dependency-free drop-in for the subset of `parking_lot`
//! this workspace uses: [`Mutex`], [`RwLock`] and [`Condvar`] without
//! lock poisoning.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched; this shim wraps `std::sync` and strips poisoning (a panicked
//! holder simply releases the lock, as in `parking_lot`). Swap back to
//! the upstream crate by editing the workspace manifests — the API
//! surface used here is call-compatible.

use std::sync;
use std::time::Duration;

/// A mutex that does not poison: `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar`] waits.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.0.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(g) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside condvar wait")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s in place
/// (`parking_lot` style: the guard is passed by `&mut`).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
