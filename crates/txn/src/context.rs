//! The per-transaction data access layer.
//!
//! [`TxnCtx`] is what the SQL executor reads and writes through. It binds
//! together a block-height snapshot (§3.4.1), the SSI manager's conflict
//! tracking, and a write set that is applied — or rolled back — during the
//! serial commit phase.
//!
//! ## Race-freedom of conflict detection
//!
//! Readers **register their SIREAD/predicate locks before classifying
//! versions**, and writers **mark the version's xmax (or append the new
//! version) before probing the lock tables**. With both orderings in
//! place, for any concurrent reader/writer pair at least one side observes
//! the other (the usual store-buffer argument over the two mutexes), so the
//! rw-antidependency is recorded on every node regardless of thread timing
//! — the property the paper's determinism argument rests on.

use std::sync::Arc;

use bcrdb_common::error::{AbortReason, Error, Result};
use bcrdb_common::ids::{BlockHeight, RowId, TxId};
use bcrdb_common::value::{Row, Value};
use bcrdb_storage::index::KeyRange;
use bcrdb_storage::snapshot::{classify, Classification, ScanMode, Snapshot};
use bcrdb_storage::stats::StatsDelta;
use bcrdb_storage::table::Table;
use bcrdb_storage::version::{Version, UNASSIGNED_ROW_ID};
use parking_lot::Mutex;

use crate::ssi::{Flow, SsiManager};

/// A visible row produced by a scan: the logical row id, the row image and
/// the backing version (needed to target updates/deletes).
#[derive(Clone, Debug)]
pub struct VisibleRow {
    /// Logical row id ([`UNASSIGNED_ROW_ID`] for this transaction's own
    /// uncommitted inserts).
    pub row_id: RowId,
    /// Row values.
    pub data: Row,
    /// Backing version.
    pub version: Arc<Version>,
}

/// One entry of the write set, in execution order.
pub enum WriteOp {
    /// INSERT: the appended (pending) version.
    Insert {
        /// Target table.
        table: Arc<Table>,
        /// The new version.
        version: Arc<Version>,
    },
    /// UPDATE: old version flagged via xmax, successor appended.
    Update {
        /// Target table.
        table: Arc<Table>,
        /// The replaced version.
        old: Arc<Version>,
        /// The successor version.
        new: Arc<Version>,
    },
    /// DELETE: old version flagged via xmax.
    Delete {
        /// Target table.
        table: Arc<Table>,
        /// The deleted version.
        old: Arc<Version>,
    },
}

/// One row of the committed write-set summary, used by the checkpointing
/// phase to compute the block's write-set hash (§3.3.4).
#[derive(Clone, Debug, PartialEq)]
pub struct WriteRecord {
    /// Table name.
    pub table: String,
    /// 0 = insert, 1 = update, 2 = delete.
    pub kind: u8,
    /// Committed row id.
    pub row_id: RowId,
    /// New row image (empty for deletes).
    pub data: Row,
}

/// Result of the commit protocol for one transaction.
#[derive(Clone, Debug)]
pub enum CommitOutcome {
    /// Committed; carries the write-set summary for checkpoint hashing.
    Committed(Vec<WriteRecord>),
    /// Aborted with the given reason (write set rolled back).
    Aborted(AbortReason),
}

impl CommitOutcome {
    /// True if committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, CommitOutcome::Committed(_))
    }

    /// Take the committed write-set summary (`None` on abort) — the
    /// handoff from the serial commit phase to the post-commit stage,
    /// which hashes the block's write set off the commit thread.
    pub fn into_writes(self) -> Option<Vec<WriteRecord>> {
        match self {
            CommitOutcome::Committed(w) => Some(w),
            CommitOutcome::Aborted(_) => None,
        }
    }
}

/// One deferred write-apply step produced by the serial validation gate
/// ([`TxnCtx::validate_commit`]). Every ordering-dependent decision —
/// SSI outcome, ww-loser dooming, old-version deletion, row-id
/// assignment — has already been made, so executing the remaining steps
/// is commutative across the transactions of one block: each step only
/// touches its own version's state, and no step targets a version
/// another transaction of the same block defers (a pending version is
/// never visible at a sibling's snapshot). That commutativity is what
/// lets the node apply a block's write sets on a worker pool and still
/// produce byte-identical state.
#[derive(Debug)]
pub enum ApplyStep {
    /// Publish a new version (`commit_create`) and build its summary row.
    Create {
        /// Target table name (for the summary and partitioning).
        table: String,
        /// The version to publish.
        version: Arc<Version>,
        /// Summary kind: 0 = insert, 1 = update.
        kind: u8,
        /// Row id fixed by the gate.
        row_id: RowId,
    },
    /// Summary fully determined in the gate (deletes: their version-state
    /// transition feeds later transactions' conflict checks and therefore
    /// already happened serially).
    Ready(WriteRecord),
}

impl ApplyStep {
    /// Table the step writes to.
    pub fn table(&self) -> &str {
        match self {
            ApplyStep::Create { table, .. } => table,
            ApplyStep::Ready(rec) => &rec.table,
        }
    }

    /// Row id the step publishes.
    pub fn row_id(&self) -> RowId {
        match self {
            ApplyStep::Create { row_id, .. } => *row_id,
            ApplyStep::Ready(rec) => rec.row_id,
        }
    }

    /// Execute the step, returning its write-set summary row. Safe on any
    /// thread once the gate has returned the plan.
    pub fn execute(&self, block: BlockHeight) -> WriteRecord {
        match self {
            ApplyStep::Create {
                table,
                version,
                kind,
                row_id,
            } => {
                version.commit_create(block, *row_id);
                WriteRecord {
                    table: table.clone(),
                    kind: *kind,
                    row_id: *row_id,
                    data: version.data.clone(),
                }
            }
            ApplyStep::Ready(rec) => rec.clone(),
        }
    }
}

/// The deferred half of one transaction's commit: the block it commits
/// in plus its apply steps in execution (op) order.
#[derive(Debug)]
pub struct ApplyPlan {
    /// Block the transaction commits in.
    pub block: BlockHeight,
    /// Steps in canonical op order.
    pub steps: Vec<ApplyStep>,
    /// Planner-statistics deltas (one per table touched, in first-touch
    /// order), computed by the gate from the write set's old/new row
    /// images — the only place both images coexist. The commit thread
    /// folds these in block order after the apply barrier.
    pub stats: Vec<StatsDelta>,
}

impl ApplyPlan {
    /// Execute every step inline, in op order — the `apply_workers = 1`
    /// path and the serial-execution baseline.
    pub fn execute_all(&self) -> Vec<WriteRecord> {
        self.steps.iter().map(|s| s.execute(self.block)).collect()
    }
}

/// Per-block primary-key overlay for deferred write application: the keys
/// of versions committed earlier in the same block whose `commit_create`
/// has not executed yet. They are not live in storage, so
/// `Table::committed_pk_conflicts` cannot see them — the gate checks this
/// overlay alongside storage so a later transaction of the block aborts
/// exactly where the fully serial path would. Keys of key-preserving
/// updates are included: their old version is already deleted in the
/// gate, so only the overlay still claims the key.
#[derive(Default)]
pub struct BlockPkOverlay {
    /// `(table, pk value)` pairs; `Value` is not hashable (floats), and
    /// blocks are small, so a vector scan mirrors the per-transaction
    /// `own_keys` check.
    keys: Vec<(String, Value)>,
}

impl BlockPkOverlay {
    /// Fresh overlay for one block.
    pub fn new() -> BlockPkOverlay {
        BlockPkOverlay::default()
    }

    fn contains(&self, table: &str, value: &Value) -> bool {
        self.keys.iter().any(|(t, v)| t == table && v == value)
    }

    fn insert(&mut self, table: String, value: Value) {
        self.keys.push((table, value));
    }
}

/// Per-transaction context handed to the SQL executor.
pub struct TxnCtx {
    /// Local transaction id.
    pub id: TxId,
    /// Block-height snapshot this transaction reads at.
    pub snapshot: Snapshot,
    /// Strict (EO) or relaxed (OE / read-only) scan behaviour.
    pub mode: ScanMode,
    mgr: Arc<SsiManager>,
    ops: Mutex<Vec<WriteOp>>,
    /// Read-only contexts skip all conflict registration.
    tracking: bool,
}

impl TxnCtx {
    /// Begin a tracked transaction at `height`.
    pub fn begin(mgr: &Arc<SsiManager>, height: BlockHeight, mode: ScanMode) -> TxnCtx {
        let id = mgr.begin();
        TxnCtx {
            id,
            snapshot: Snapshot::new(id, height),
            mode,
            mgr: Arc::clone(mgr),
            ops: Mutex::new(Vec::new()),
            tracking: true,
        }
    }

    /// A read-only context at `height`: sees the committed snapshot, never
    /// registers conflicts, cannot write. Used for client queries and
    /// provenance reads (which execute on one node only, §4.3).
    pub fn read_only(mgr: &Arc<SsiManager>, height: BlockHeight) -> TxnCtx {
        TxnCtx {
            id: TxId::INVALID,
            snapshot: Snapshot::new(TxId::INVALID, height),
            mode: ScanMode::Relaxed,
            mgr: Arc::clone(mgr),
            ops: Mutex::new(Vec::new()),
            tracking: false,
        }
    }

    /// The SSI manager this context registers with.
    pub fn manager(&self) -> &Arc<SsiManager> {
        &self.mgr
    }

    /// Mark this transaction as doomed (used by the executor when a
    /// contract raises an error mid-flight).
    pub fn doom(&self, reason: AbortReason) {
        if self.tracking {
            self.mgr.doom(self.id, reason);
        }
    }

    /// Number of write operations buffered so far.
    pub fn write_count(&self) -> usize {
        self.ops.lock().len()
    }

    // ------------------------------------------------------------- scans

    /// Scan `table`, optionally through the index on `column` restricted to
    /// `range`. Returns visible rows ordered by row id (deterministic
    /// across nodes). In [`ScanMode::Strict`] the scan aborts on
    /// phantom/stale candidates per §3.4.1.
    pub fn scan(
        &self,
        table: &Arc<Table>,
        index: Option<(usize, &KeyRange)>,
    ) -> Result<Vec<VisibleRow>> {
        let candidates = match index {
            Some((column, range)) => {
                if self.tracking {
                    // Predicate lock FIRST (see module docs on ordering).
                    self.mgr
                        .register_predicate_read(self.id, &table.name(), column, range.clone());
                }
                table.index_scan(column, range).ok_or_else(|| {
                    Error::Determinism(format!(
                        "no index on column {column} of table {}; predicate reads must \
                         use an index (§4.3)",
                        table.name()
                    ))
                })?
            }
            None => {
                if self.mode == ScanMode::Strict {
                    return Err(Error::Determinism(format!(
                        "whole-table scan on {} is not allowed in the \
                         execute-order-in-parallel flow (§4.3)",
                        table.name()
                    )));
                }
                if self.tracking {
                    self.mgr.register_table_read(self.id, &table.name());
                }
                table.all_versions()
            }
        };

        Ok(self
            .visible_candidates(&table.name(), candidates)?
            .into_iter()
            .map(|(row_id, version)| VisibleRow {
                row_id,
                data: version.data.clone(),
                version,
            })
            .collect())
    }

    /// Covering-index scan: like [`TxnCtx::scan`] through the index on
    /// `column`, but returns only `(row id, key value)` pairs — the
    /// executor uses this when the whole statement is satisfied by the
    /// indexed column, skipping the full row-image clone per visible
    /// row. Conflict registration (predicate lock, SIREAD, rw edges) is
    /// identical to a plain indexed scan.
    pub fn scan_covering(
        &self,
        table: &Arc<Table>,
        column: usize,
        range: &KeyRange,
    ) -> Result<Vec<(RowId, Value)>> {
        if self.tracking {
            // Predicate lock FIRST (see module docs on ordering).
            self.mgr
                .register_predicate_read(self.id, &table.name(), column, range.clone());
        }
        let candidates = table.index_scan(column, range).ok_or_else(|| {
            Error::Determinism(format!(
                "no index on column {column} of table {}; predicate reads must \
                 use an index (§4.3)",
                table.name()
            ))
        })?;
        Ok(self
            .visible_candidates(&table.name(), candidates)?
            .into_iter()
            .map(|(row_id, version)| (row_id, version.data[column].clone()))
            .collect())
    }

    /// Multi-index scan: position-level intersection (`union = false`)
    /// or union (`union = true`) of several single-column index ranges,
    /// resolved to versions with one batched heap access and classified
    /// exactly like [`TxnCtx::scan`]. One SSI predicate lock is
    /// registered per part — for an intersection that is a conservative
    /// superset of the matched rows (safe: extra locks can only cause
    /// extra aborts, identically on every node); for a union the parts
    /// cover every matched row by construction.
    pub fn scan_multi(
        &self,
        table: &Arc<Table>,
        parts: &[(usize, KeyRange)],
        union: bool,
    ) -> Result<Vec<VisibleRow>> {
        let mut sets: Vec<Vec<usize>> = Vec::with_capacity(parts.len());
        for (column, range) in parts {
            if self.tracking {
                // Predicate lock FIRST, per part (see module docs).
                self.mgr
                    .register_predicate_read(self.id, &table.name(), *column, range.clone());
            }
            let idx = table.index_for(*column).ok_or_else(|| {
                Error::Determinism(format!(
                    "no index on column {column} of table {}; predicate reads must \
                     use an index (§4.3)",
                    table.name()
                ))
            })?;
            let mut positions = idx.positions_in_range(range);
            positions.sort_unstable();
            sets.push(positions);
        }
        let positions = if union {
            let mut all: Vec<usize> = sets.into_iter().flatten().collect();
            all.sort_unstable();
            all.dedup();
            all
        } else {
            let mut iter = sets.into_iter();
            let mut acc = iter.next().unwrap_or_default();
            for set in iter {
                let mut i = 0;
                acc.retain(|p| {
                    while i < set.len() && set[i] < *p {
                        i += 1;
                    }
                    i < set.len() && set[i] == *p
                });
            }
            acc
        };
        let candidates = table.versions_at(&positions);
        Ok(self
            .visible_candidates(&table.name(), candidates)?
            .into_iter()
            .map(|(row_id, version)| VisibleRow {
                row_id,
                data: version.data.clone(),
                version,
            })
            .collect())
    }

    /// Shared visibility tail of every scan flavour: register SIREAD
    /// locks, classify each candidate against the snapshot, record rw
    /// antidependencies, and return the visible versions sorted by row
    /// id (committed rows first; own pending rows — UNASSIGNED =
    /// u64::MAX — last, in execution order via the stable sort).
    fn visible_candidates(
        &self,
        table_name: &str,
        candidates: Vec<Arc<Version>>,
    ) -> Result<Vec<(RowId, Arc<Version>)>> {
        let mut rows = Vec::new();
        for version in candidates {
            // SIREAD registration precedes classification (race-freedom).
            let row_id = version.row_id();
            if self.tracking && row_id != UNASSIGNED_ROW_ID {
                self.mgr.register_row_read(self.id, table_name, row_id);
            }
            match classify(version.xmin, &version.state(), &self.snapshot) {
                Classification::Visible { pending_writers } => {
                    if self.tracking {
                        for w in pending_writers {
                            self.mgr.register_rw_edge(self.id, w);
                        }
                    }
                    rows.push((row_id, version));
                }
                Classification::PendingWrite { writer } => {
                    // An uncommitted insert matching our predicate: the
                    // classic predicate rw-antidependency.
                    if self.tracking {
                        self.mgr.register_rw_edge(self.id, writer);
                    }
                }
                Classification::Phantom => {
                    if self.mode == ScanMode::Strict {
                        self.doom(AbortReason::PhantomRead);
                        return Err(Error::Abort(AbortReason::PhantomRead));
                    }
                }
                Classification::Stale => {
                    if self.mode == ScanMode::Strict {
                        self.doom(AbortReason::StaleRead);
                        return Err(Error::Abort(AbortReason::StaleRead));
                    }
                    // Relaxed time-travel semantics: the row existed at the
                    // snapshot height, so it is visible.
                    rows.push((row_id, version));
                }
                Classification::Invisible => {}
            }
        }
        rows.sort_by_key(|r| r.0);
        Ok(rows)
    }

    // ------------------------------------------------------------ writes

    fn ensure_writable(&self) -> Result<()> {
        if !self.tracking {
            return Err(Error::Analysis(
                "read-only context cannot execute writes".into(),
            ));
        }
        Ok(())
    }

    /// Values of indexed columns for conflict probing.
    fn indexed_values(table: &Table, row: &[Value]) -> Vec<(usize, Value)> {
        let schema = table.schema();
        let mut out = Vec::new();
        if schema.primary_key.len() == 1 {
            let c = schema.primary_key[0];
            out.push((c, row[c].clone()));
        }
        for idx in &schema.indexes {
            if !out.iter().any(|(c, _)| *c == idx.column) {
                out.push((idx.column, row[idx.column].clone()));
            }
        }
        out
    }

    /// INSERT a row (already schema-checked by the executor).
    pub fn insert(&self, table: &Arc<Table>, row: Row) -> Result<()> {
        self.ensure_writable()?;
        // Append (making the pending version discoverable) BEFORE probing
        // reader locks — see module docs.
        let (_, version) = table.append_version(self.id, row, UNASSIGNED_ROW_ID);
        let probes = Self::indexed_values(table, &version.data);
        self.mgr
            .on_write(self.id, &table.name(), UNASSIGNED_ROW_ID, &probes);
        self.ops.lock().push(WriteOp::Insert {
            table: Arc::clone(table),
            version,
        });
        Ok(())
    }

    /// UPDATE `target` to `new_row`.
    pub fn update(&self, table: &Arc<Table>, target: &VisibleRow, new_row: Row) -> Result<()> {
        self.ensure_writable()?;
        // Flag the old version first (xmax array, no lock wait — §4.3),
        // then probe reader locks.
        target.version.add_pending_writer(self.id);
        let (_, new_version) = table.append_version(self.id, new_row, target.version.row_id());
        let mut probes = Self::indexed_values(table, &target.data);
        for (c, v) in Self::indexed_values(table, &new_version.data) {
            if !probes.contains(&(c, v.clone())) {
                probes.push((c, v));
            }
        }
        self.mgr
            .on_write(self.id, &table.name(), target.row_id, &probes);
        self.ops.lock().push(WriteOp::Update {
            table: Arc::clone(table),
            old: Arc::clone(&target.version),
            new: new_version,
        });
        Ok(())
    }

    /// DELETE `target`.
    pub fn delete(&self, table: &Arc<Table>, target: &VisibleRow) -> Result<()> {
        self.ensure_writable()?;
        target.version.add_pending_writer(self.id);
        let probes = Self::indexed_values(table, &target.data);
        self.mgr
            .on_write(self.id, &table.name(), target.row_id, &probes);
        self.ops.lock().push(WriteOp::Delete {
            table: Arc::clone(table),
            old: Arc::clone(&target.version),
        });
        Ok(())
    }

    // ------------------------------------------------------ commit/abort

    /// Run the full commit protocol at (block, pos) under `flow`:
    /// SSI decision → primary-key enforcement → write-set application with
    /// deterministic row-id assignment and ww-loser dooming. Must be called
    /// from the serial commit phase. Equivalent to [`TxnCtx::validate_commit`]
    /// followed immediately by executing the returned plan inline.
    pub fn apply_commit(&self, block: BlockHeight, pos: u32, flow: Flow) -> CommitOutcome {
        let mut overlay = BlockPkOverlay::new();
        match self.validate_commit(block, pos, flow, &mut overlay) {
            Ok(plan) => CommitOutcome::Committed(plan.execute_all()),
            Err(reason) => CommitOutcome::Aborted(reason),
        }
    }

    /// The serial half of the commit protocol: every order-dependent step.
    /// SSI decision, primary-key enforcement (against storage plus the
    /// caller's per-block overlay of not-yet-applied keys), old-version
    /// deletion with ww-loser dooming (these state transitions feed later
    /// transactions' `commit_check` and PK probes, so they cannot be
    /// deferred), batched row-id assignment, and the SSI commit itself.
    ///
    /// On success the remaining work — publishing the new versions and
    /// building the write-set summary — comes back as an [`ApplyPlan`]
    /// whose steps commute across the block's transactions: the node may
    /// execute them on any thread, in any interleaving, before the block's
    /// committed height advances, and the resulting state and summaries
    /// are identical to inline execution.
    ///
    /// Row-id determinism: insert ids are reserved per `(transaction,
    /// table)` with one allocator bump each, in op order — exactly the ids
    /// per-op allocation hands out, fixed before any worker runs.
    pub fn validate_commit(
        &self,
        block: BlockHeight,
        pos: u32,
        flow: Flow,
        overlay: &mut BlockPkOverlay,
    ) -> std::result::Result<ApplyPlan, AbortReason> {
        debug_assert!(self.tracking, "read-only context cannot commit");
        if let Err(reason) = self.mgr.commit_check(self.id, block, pos, flow) {
            self.rollback();
            return Err(reason);
        }
        if let Err(reason) = self.check_pk_uniqueness(overlay) {
            self.rollback();
            return Err(reason);
        }

        let ops = self.ops.lock();
        // One row-id range per table touched by an insert, reserved in
        // first-use order; counters of distinct tables are independent, so
        // the ids match per-op allocation.
        let mut cursors: Vec<(Arc<Table>, u64)> = Vec::new();
        for op in ops.iter() {
            if let WriteOp::Insert { table, .. } = op {
                match cursors.iter_mut().find(|(t, _)| Arc::ptr_eq(t, table)) {
                    Some((_, n)) => *n += 1,
                    None => cursors.push((Arc::clone(table), 1)),
                }
            }
        }
        for (table, n) in cursors.iter_mut() {
            *n = table.reserve_row_ids(*n).0;
        }

        // Update chains within this transaction target versions whose row
        // id is assigned by an earlier step of this same plan; resolve
        // them from the steps built so far.
        let mut assigned: Vec<(Arc<Version>, RowId)> = Vec::new();
        let resolve = |old: &Arc<Version>, assigned: &[(Arc<Version>, RowId)]| {
            let rid = old.row_id();
            if rid != UNASSIGNED_ROW_ID {
                return rid;
            }
            assigned
                .iter()
                .find(|(v, _)| Arc::ptr_eq(v, old))
                .map(|(_, r)| *r)
                .expect("own-row write targets a version created earlier in this transaction")
        };

        let mut steps = Vec::with_capacity(ops.len());
        for op in ops.iter() {
            match op {
                WriteOp::Insert { table, version } => {
                    let cursor = cursors
                        .iter_mut()
                        .find(|(t, _)| Arc::ptr_eq(t, table))
                        .expect("every inserted-into table was counted");
                    let row_id = RowId(cursor.1);
                    cursor.1 += 1;
                    assigned.push((Arc::clone(version), row_id));
                    steps.push(ApplyStep::Create {
                        table: table.name(),
                        version: Arc::clone(version),
                        kind: 0,
                        row_id,
                    });
                }
                WriteOp::Update { table, old, new } => {
                    let losers = old.commit_delete(self.id, block);
                    for l in losers {
                        self.mgr.doom(l, AbortReason::WwConflict);
                    }
                    let row_id = resolve(old, &assigned);
                    assigned.push((Arc::clone(new), row_id));
                    steps.push(ApplyStep::Create {
                        table: table.name(),
                        version: Arc::clone(new),
                        kind: 1,
                        row_id,
                    });
                }
                WriteOp::Delete { table, old } => {
                    let losers = old.commit_delete(self.id, block);
                    for l in losers {
                        self.mgr.doom(l, AbortReason::WwConflict);
                    }
                    steps.push(ApplyStep::Ready(WriteRecord {
                        table: table.name(),
                        kind: 2,
                        row_id: resolve(old, &assigned),
                        data: Vec::new(),
                    }));
                }
            }
        }
        // Statistics deltas from the write set's old/new images, per
        // table in first-touch order. Computed here — inside the gate —
        // so the fold stream is identical on every node regardless of
        // apply parallelism.
        let mut stats: Vec<StatsDelta> = Vec::new();
        {
            let entry = |stats: &mut Vec<StatsDelta>, table: &Arc<Table>| -> usize {
                let name = table.name();
                match stats.iter().position(|d| d.table == name) {
                    Some(i) => i,
                    None => {
                        stats.push(StatsDelta {
                            table: name,
                            ..StatsDelta::default()
                        });
                        stats.len() - 1
                    }
                }
            };
            for op in ops.iter() {
                match op {
                    WriteOp::Insert { table, version } => {
                        let i = entry(&mut stats, table);
                        stats[i]
                            .added
                            .extend(Self::indexed_values(table, &version.data));
                        stats[i].live_delta += 1;
                    }
                    WriteOp::Update { table, old, new } => {
                        let i = entry(&mut stats, table);
                        stats[i]
                            .removed
                            .extend(Self::indexed_values(table, &old.data));
                        stats[i]
                            .added
                            .extend(Self::indexed_values(table, &new.data));
                    }
                    WriteOp::Delete { table, old } => {
                        let i = entry(&mut stats, table);
                        stats[i]
                            .removed
                            .extend(Self::indexed_values(table, &old.data));
                        stats[i].live_delta -= 1;
                    }
                }
            }
        }
        drop(ops);
        self.mgr.commit(self.id);
        Ok(ApplyPlan {
            block,
            steps,
            stats,
        })
    }

    /// Primary-key uniqueness at commit time: inserts (and updates that
    /// change the key) must not collide with live committed rows — checked
    /// against storage *and* against `overlay`, which carries the keys of
    /// same-block predecessors whose creates are still deferred — nor with
    /// other rows written by this same transaction. On success the keys
    /// this transaction's deferred creates will claim are added to the
    /// overlay, so later transactions of the block see them exactly as the
    /// fully serial path would (as live committed rows).
    fn check_pk_uniqueness(
        &self,
        overlay: &mut BlockPkOverlay,
    ) -> std::result::Result<(), AbortReason> {
        let ops = self.ops.lock();
        let mut own_keys: Vec<(String, Value)> = Vec::new();
        // Keys claimed by key-preserving updates: exempt from the conflict
        // checks below (they replace their own row), but once this
        // transaction commits, their deferred create owns the key for the
        // rest of the block.
        let mut preserved_keys: Vec<(String, Value)> = Vec::new();
        for op in ops.iter() {
            let (table, new_version) = match op {
                WriteOp::Insert { table, version } => (table, version),
                WriteOp::Update { table, old, new } => {
                    // Key-preserving updates (including update chains on
                    // the same logical row) cannot introduce a duplicate.
                    let schema = table.schema();
                    if schema.primary_key.len() == 1 {
                        let pk_col = schema.primary_key[0];
                        if old.data[pk_col] == new.data[pk_col] {
                            preserved_keys.push((table.name(), new.data[pk_col].clone()));
                            continue;
                        }
                    }
                    (table, new)
                }
                WriteOp::Delete { .. } => continue,
            };
            let schema = table.schema();
            if schema.primary_key.len() != 1 {
                continue;
            }
            let pk_col = schema.primary_key[0];
            let pk_value = new_version.data[pk_col].clone();
            let conflicts = table.committed_pk_conflicts(&pk_value, self.id);
            // A live committed row with the same key conflicts unless this
            // transaction itself is replacing it (old version pending-
            // deleted by us). Same wording for the overlay hit: serially
            // the predecessor's row would already be live in storage.
            let real_conflict = conflicts
                .iter()
                .any(|v| !v.state().xmax_pending.contains(&self.id))
                || overlay.contains(&table.name(), &pk_value);
            if real_conflict {
                return Err(AbortReason::ContractError(format!(
                    "duplicate key value {pk_value} violates primary key of table {}",
                    table.name()
                )));
            }
            let key = (table.name(), pk_value);
            // Within-transaction duplicates: an UPDATE writing the same key
            // as a previous op is fine only if it superseded that op's row;
            // conservatively reject exact duplicates among inserts/updates.
            if own_keys.contains(&key) {
                return Err(AbortReason::ContractError(format!(
                    "duplicate key value {} written twice by one transaction in table {}",
                    key.1, key.0
                )));
            }
            own_keys.push(key);
        }
        drop(ops);
        for (t, v) in own_keys {
            overlay.insert(t, v);
        }
        for (t, v) in preserved_keys {
            overlay.insert(t, v);
        }
        Ok(())
    }

    /// Undo all buffered writes and mark the transaction aborted.
    pub fn rollback(&self) {
        let ops = self.ops.lock();
        for op in ops.iter() {
            match op {
                WriteOp::Insert { version, .. } => version.abort_create(),
                WriteOp::Update { old, new, .. } => {
                    new.abort_create();
                    old.remove_pending_writer(self.id);
                }
                WriteOp::Delete { old, .. } => old.remove_pending_writer(self.id),
            }
        }
        drop(ops);
        self.mgr.abort(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::schema::{Column, DataType, TableSchema};

    fn setup() -> (Arc<SsiManager>, Arc<Table>) {
        let mgr = Arc::new(SsiManager::new());
        let schema = TableSchema::new(
            "accounts",
            vec![
                Column::new("id", DataType::Int),
                Column::new("balance", DataType::Int),
            ],
            vec![0],
        )
        .unwrap();
        (mgr, Arc::new(Table::new(schema)))
    }

    fn commit(ctx: &TxnCtx, block: BlockHeight, pos: u32) -> CommitOutcome {
        ctx.apply_commit(block, pos, Flow::OrderThenExecute)
    }

    #[test]
    fn insert_commit_read_roundtrip() {
        let (mgr, table) = setup();
        let t1 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t1.insert(&table, vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        // Own write visible before commit.
        let rows = t1.scan(&table, None).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].row_id, UNASSIGNED_ROW_ID);
        let outcome = commit(&t1, 1, 0);
        assert!(outcome.is_committed());

        // Visible to a later reader at height 1, not at height 0.
        let r = TxnCtx::read_only(&mgr, 1);
        assert_eq!(r.scan(&table, None).unwrap().len(), 1);
        let r0 = TxnCtx::read_only(&mgr, 0);
        assert_eq!(r0.scan(&table, None).unwrap().len(), 0);
    }

    #[test]
    fn update_creates_new_version_same_row_id() {
        let (mgr, table) = setup();
        let t1 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t1.insert(&table, vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        assert!(commit(&t1, 1, 0).is_committed());

        let t2 = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        let target = &t2.scan(&table, None).unwrap()[0];
        let rid = target.row_id;
        t2.update(&table, target, vec![Value::Int(1), Value::Int(150)])
            .unwrap();
        assert!(commit(&t2, 2, 0).is_committed());

        let r = TxnCtx::read_only(&mgr, 2);
        let rows = r.scan(&table, None).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].row_id, rid);
        assert_eq!(rows[0].data[1], Value::Int(150));
        // Time travel to height 1 sees the old balance.
        let r1 = TxnCtx::read_only(&mgr, 1);
        assert_eq!(r1.scan(&table, None).unwrap()[0].data[1], Value::Int(100));
    }

    #[test]
    fn delete_hides_row() {
        let (mgr, table) = setup();
        let t1 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t1.insert(&table, vec![Value::Int(1), Value::Int(5)])
            .unwrap();
        assert!(commit(&t1, 1, 0).is_committed());
        let t2 = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        let target = t2.scan(&table, None).unwrap()[0].clone();
        t2.delete(&table, &target).unwrap();
        // Own delete: the row is gone for t2 already.
        assert_eq!(t2.scan(&table, None).unwrap().len(), 0);
        assert!(commit(&t2, 2, 0).is_committed());
        assert_eq!(
            TxnCtx::read_only(&mgr, 2).scan(&table, None).unwrap().len(),
            0
        );
        assert_eq!(
            TxnCtx::read_only(&mgr, 1).scan(&table, None).unwrap().len(),
            1
        );
    }

    #[test]
    fn ww_conflict_first_committer_wins() {
        let (mgr, table) = setup();
        let t0 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t0.insert(&table, vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        assert!(commit(&t0, 1, 0).is_committed());

        // Two concurrent updaters of the same row — no lock wait (xmax
        // array), loser doomed at winner's commit (§3.3.3).
        let ta = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        let tb = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        let target_a = ta.scan(&table, None).unwrap()[0].clone();
        let target_b = tb.scan(&table, None).unwrap()[0].clone();
        ta.update(&table, &target_a, vec![Value::Int(1), Value::Int(110)])
            .unwrap();
        tb.update(&table, &target_b, vec![Value::Int(1), Value::Int(120)])
            .unwrap();

        assert!(ta.apply_commit(2, 0, Flow::OrderThenExecute).is_committed());
        // The loser aborts: either flagged as the ww loser at the winner's
        // commit, or doomed earlier by the rw 2-cycle both updates create
        // (each read the row the other overwrote).
        match tb.apply_commit(2, 1, Flow::OrderThenExecute) {
            CommitOutcome::Aborted(
                AbortReason::WwConflict
                | AbortReason::SsiDoomedByPeer
                | AbortReason::SsiDangerousStructure,
            ) => {}
            other => panic!("expected ww/ssi abort, got {other:?}"),
        }
        // Winner's value persisted.
        let rows = TxnCtx::read_only(&mgr, 2).scan(&table, None).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].data[1], Value::Int(110));
    }

    #[test]
    fn pk_uniqueness_at_commit() {
        let (mgr, table) = setup();
        let t0 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t0.insert(&table, vec![Value::Int(1), Value::Int(1)])
            .unwrap();
        assert!(commit(&t0, 1, 0).is_committed());

        // Committed duplicate.
        let t1 = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        t1.insert(&table, vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        match commit(&t1, 2, 0) {
            CommitOutcome::Aborted(AbortReason::ContractError(msg)) => {
                assert!(msg.contains("duplicate key"), "{msg}");
            }
            other => panic!("expected pk abort, got {other:?}"),
        }

        // Two concurrent inserts of the same key: first commits, second
        // aborts deterministically.
        let ta = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        let tb = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        ta.insert(&table, vec![Value::Int(7), Value::Int(0)])
            .unwrap();
        tb.insert(&table, vec![Value::Int(7), Value::Int(0)])
            .unwrap();
        assert!(ta.apply_commit(2, 1, Flow::OrderThenExecute).is_committed());
        assert!(!tb.apply_commit(2, 2, Flow::OrderThenExecute).is_committed());

        // Same-transaction duplicate.
        let tc = TxnCtx::begin(&mgr, 2, ScanMode::Relaxed);
        tc.insert(&table, vec![Value::Int(9), Value::Int(0)])
            .unwrap();
        tc.insert(&table, vec![Value::Int(9), Value::Int(1)])
            .unwrap();
        assert!(!commit(&tc, 3, 0).is_committed());

        // Update replacing a row with the same key is fine.
        let td = TxnCtx::begin(&mgr, 2, ScanMode::Relaxed);
        let target = td
            .scan(&table, Some((0, &KeyRange::eq(Value::Int(1)))))
            .unwrap()[0]
            .clone();
        td.update(&table, &target, vec![Value::Int(1), Value::Int(42)])
            .unwrap();
        assert!(commit(&td, 3, 1).is_committed());
    }

    #[test]
    fn strict_mode_detects_phantom_and_stale_reads() {
        let (mgr, table) = setup();
        // Height 1: row 1 exists. Height 2: row 2 inserted, row 1 updated.
        let t0 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t0.insert(&table, vec![Value::Int(1), Value::Int(10)])
            .unwrap();
        assert!(commit(&t0, 1, 0).is_committed());
        let t1 = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        t1.insert(&table, vec![Value::Int(2), Value::Int(20)])
            .unwrap();
        let target = t1
            .scan(&table, Some((0, &KeyRange::eq(Value::Int(1)))))
            .unwrap()[0]
            .clone();
        t1.update(&table, &target, vec![Value::Int(1), Value::Int(11)])
            .unwrap();
        assert!(commit(&t1, 2, 0).is_committed());

        // A strict transaction at snapshot height 1 scanning a range that
        // covers the block-2 insert → phantom read abort (§3.4.1 rule 1).
        let tp = TxnCtx::begin(&mgr, 1, ScanMode::Strict);
        let err = tp
            .scan(
                &table,
                Some((0, &KeyRange::between(Value::Int(0), Value::Int(100)))),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Abort(AbortReason::PhantomRead | AbortReason::StaleRead)
        ));
        tp.rollback();

        // A strict transaction at height 1 reading exactly row 1 (updated
        // by block 2) → stale read abort (§3.4.1 rule 2).
        let ts = TxnCtx::begin(&mgr, 1, ScanMode::Strict);
        let err = ts
            .scan(&table, Some((0, &KeyRange::eq(Value::Int(1)))))
            .unwrap_err();
        assert!(matches!(err, Error::Abort(AbortReason::StaleRead)));
        ts.rollback();

        // Relaxed read-only time travel at height 1 still works.
        let r = TxnCtx::read_only(&mgr, 1);
        let rows = r
            .scan(&table, Some((0, &KeyRange::eq(Value::Int(1)))))
            .unwrap();
        assert_eq!(rows[0].data[1], Value::Int(10));

        // A strict transaction at the current height is unaffected.
        let tok = TxnCtx::begin(&mgr, 2, ScanMode::Strict);
        let rows = tok
            .scan(
                &table,
                Some((0, &KeyRange::between(Value::Int(0), Value::Int(100)))),
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        tok.rollback();
    }

    #[test]
    fn strict_mode_rejects_full_scans() {
        let (mgr, table) = setup();
        let t = TxnCtx::begin(&mgr, 0, ScanMode::Strict);
        assert!(matches!(t.scan(&table, None), Err(Error::Determinism(_))));
        // And rejects scans on unindexed columns.
        assert!(matches!(
            t.scan(&table, Some((1, &KeyRange::eq(Value::Int(5))))),
            Err(Error::Determinism(_))
        ));
        t.rollback();
    }

    #[test]
    fn rollback_undoes_everything() {
        let (mgr, table) = setup();
        let t0 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t0.insert(&table, vec![Value::Int(1), Value::Int(10)])
            .unwrap();
        assert!(commit(&t0, 1, 0).is_committed());

        let t1 = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        t1.insert(&table, vec![Value::Int(2), Value::Int(20)])
            .unwrap();
        let target = t1
            .scan(&table, Some((0, &KeyRange::eq(Value::Int(1)))))
            .unwrap()[0]
            .clone();
        t1.update(&table, &target, vec![Value::Int(1), Value::Int(99)])
            .unwrap();
        t1.rollback();

        let rows = TxnCtx::read_only(&mgr, 1).scan(&table, None).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].data[1], Value::Int(10));
        // The old version's xmax was cleared: a new update succeeds.
        let t2 = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        let target = t2.scan(&table, None).unwrap()[0].clone();
        t2.update(&table, &target, vec![Value::Int(1), Value::Int(11)])
            .unwrap();
        assert!(commit(&t2, 2, 0).is_committed());
    }

    #[test]
    fn write_set_summary_is_deterministic() {
        let (mgr, table) = setup();
        let t = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t.insert(&table, vec![Value::Int(1), Value::Int(10)])
            .unwrap();
        t.insert(&table, vec![Value::Int(2), Value::Int(20)])
            .unwrap();
        match commit(&t, 1, 0) {
            CommitOutcome::Committed(summary) => {
                assert_eq!(summary.len(), 2);
                assert_eq!(summary[0].row_id, RowId(1));
                assert_eq!(summary[1].row_id, RowId(2));
                assert_eq!(summary[0].kind, 0);
            }
            other => panic!("expected commit, got {other:?}"),
        }
    }

    #[test]
    fn read_only_context_cannot_write() {
        let (mgr, table) = setup();
        let r = TxnCtx::read_only(&mgr, 0);
        assert!(r
            .insert(&table, vec![Value::Int(1), Value::Int(1)])
            .is_err());
    }

    #[test]
    fn deferred_plan_matches_inline_apply() {
        let (mgr, table) = setup();
        let t = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t.insert(&table, vec![Value::Int(1), Value::Int(10)])
            .unwrap();
        t.insert(&table, vec![Value::Int(2), Value::Int(20)])
            .unwrap();
        let mut overlay = BlockPkOverlay::new();
        let plan = t
            .validate_commit(1, 0, Flow::OrderThenExecute, &mut overlay)
            .unwrap();
        // Ids are fixed by the gate, before any step executes; the rows
        // are not yet visible (creates deferred).
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(plan.steps[0].row_id(), RowId(1));
        assert_eq!(plan.steps[1].row_id(), RowId(2));
        assert_eq!(
            TxnCtx::read_only(&mgr, 1).scan(&table, None).unwrap().len(),
            0
        );
        // Executing out of order still yields the gate's ids and the same
        // summary the serial path builds.
        let rec1 = plan.steps[1].execute(plan.block);
        let rec0 = plan.steps[0].execute(plan.block);
        assert_eq!((rec0.row_id, rec0.kind), (RowId(1), 0));
        assert_eq!((rec1.row_id, rec1.kind), (RowId(2), 0));
        let rows = TxnCtx::read_only(&mgr, 1).scan(&table, None).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn overlay_catches_same_block_duplicate_insert() {
        let (mgr, table) = setup();
        let mut overlay = BlockPkOverlay::new();
        // Two transactions of one block insert the same key; the first
        // commits with its create deferred, so only the overlay can stop
        // the second.
        let ta = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        ta.insert(&table, vec![Value::Int(7), Value::Int(1)])
            .unwrap();
        let plan = ta
            .validate_commit(1, 0, Flow::OrderThenExecute, &mut overlay)
            .unwrap();
        let tb = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        tb.insert(&table, vec![Value::Int(7), Value::Int(2)])
            .unwrap();
        match tb.validate_commit(1, 1, Flow::OrderThenExecute, &mut overlay) {
            Err(AbortReason::ContractError(msg)) => {
                assert!(msg.contains("duplicate key"), "{msg}");
            }
            other => panic!("expected pk abort, got {other:?}"),
        }
        // Applying afterwards leaves exactly the winner's row.
        plan.execute_all();
        let rows = TxnCtx::read_only(&mgr, 1).scan(&table, None).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].data[1], Value::Int(1));
    }

    #[test]
    fn overlay_covers_key_preserving_updates() {
        let (mgr, table) = setup();
        let t0 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t0.insert(&table, vec![Value::Int(3), Value::Int(1)])
            .unwrap();
        assert!(commit(&t0, 1, 0).is_committed());

        let mut overlay = BlockPkOverlay::new();
        // A key-preserving update deletes its old version in the gate and
        // defers the new one — the overlay must still own key 3 so a
        // same-block insert of it aborts like it would serially.
        let tu = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        let target = tu.scan(&table, None).unwrap()[0].clone();
        tu.update(&table, &target, vec![Value::Int(3), Value::Int(2)])
            .unwrap();
        let plan = tu
            .validate_commit(2, 0, Flow::OrderThenExecute, &mut overlay)
            .unwrap();
        let ti = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        ti.insert(&table, vec![Value::Int(3), Value::Int(9)])
            .unwrap();
        match ti.validate_commit(2, 1, Flow::OrderThenExecute, &mut overlay) {
            Err(AbortReason::ContractError(msg)) => {
                assert!(msg.contains("duplicate key"), "{msg}");
            }
            other => panic!("expected pk abort, got {other:?}"),
        }
        plan.execute_all();
        let rows = TxnCtx::read_only(&mgr, 2).scan(&table, None).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].data[1], Value::Int(2));
    }

    #[test]
    fn update_chain_row_ids_resolve_within_a_plan() {
        let (mgr, table) = setup();
        // Insert then update the same row inside one transaction: the
        // update's create must inherit the insert's gate-assigned id even
        // though the insert hasn't executed when the gate runs.
        let t = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t.insert(&table, vec![Value::Int(5), Value::Int(1)])
            .unwrap();
        let own = t.scan(&table, None).unwrap()[0].clone();
        t.update(&table, &own, vec![Value::Int(5), Value::Int(2)])
            .unwrap();
        let mut overlay = BlockPkOverlay::new();
        let plan = t
            .validate_commit(1, 0, Flow::OrderThenExecute, &mut overlay)
            .unwrap();
        let summary = plan.execute_all();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].row_id, summary[1].row_id);
        let rows = TxnCtx::read_only(&mgr, 1).scan(&table, None).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].data[1], Value::Int(2));
        assert_eq!(rows[0].row_id, summary[0].row_id);
    }
}
