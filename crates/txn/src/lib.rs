#![warn(missing_docs)]
//! # bcrdb-txn
//!
//! Concurrency control for the blockchain relational database: the
//! transaction lifecycle, serializable snapshot isolation (SSI) with the
//! *abort during commit* heuristic of Ports & Grittner (used by the
//! order-then-execute flow, §3.3), and the paper's novel **block-aware
//! abort during commit** variant (Table 2, §3.4.3) for the
//! execute-order-in-parallel flow.
//!
//! Layering:
//!
//! * [`ssi::SsiManager`] tracks rw-antidependencies (SIREAD row locks and
//!   index predicate locks), in/out conflict lists per transaction, and
//!   makes the commit/abort decision when the block processor serially
//!   signals each transaction;
//! * [`context::TxnCtx`] is the per-transaction data access layer the SQL
//!   executor uses: block-height-snapshot scans with phantom/stale-read
//!   detection (§3.4.1), writes via the xmax-array (no ww lock waits,
//!   §3.3.3/§4.3), and the commit-time application of the write set
//!   (creator/deleter block stamping, deterministic row-id assignment,
//!   primary-key enforcement, ww-loser dooming).
//!
//! The determinism argument that makes untrusted replicas agree is spread
//! across this crate: conflict edges derive only from read/write sets (not
//! thread timing), commit order is block order, and every abort decision is
//! a pure function of (conflict graph, block positions, commit states).

pub mod context;
pub mod ssi;

pub use context::{CommitOutcome, TxnCtx, WriteOp};
pub use ssi::{Flow, SsiManager, TxnState};
