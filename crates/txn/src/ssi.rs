//! Serializable snapshot isolation: conflict tracking and the two
//! commit-time abort rules.
//!
//! ## Conflict tracking
//!
//! An rw-antidependency `R -rw-> W` ("R read a version that W replaced")
//! is recorded from both directions so that the edge set depends only on
//! the read/write sets, never on thread timing:
//!
//! * **reader side** — a scan that encounters a version pending by another
//!   transaction records the edge immediately;
//! * **writer side** — a write probes the SIREAD row locks and index
//!   predicate locks left by earlier readers.
//!
//! `R` ends up in `W.in_conflicts` and `W` in `R.out_conflicts`, matching
//! the paper's `inConflictList`/`outConflictList` terminology (§3.2).
//!
//! ## Abort rules
//!
//! At commit time (serial, in block order) the manager applies either
//!
//! * [`Flow::OrderThenExecute`] — classic *abort during commit*: doom the
//!   pivot nearConflict of a dangerous structure; abort the committing
//!   transaction itself if it is a pivot whose outConflict already
//!   committed (§3.2); or
//! * [`Flow::ExecuteOrderParallel`] — the **block-aware** variant of
//!   Table 2, which additionally aborts any transaction whose outConflict
//!   committed in an *earlier block* (the cross-node consistency argument
//!   of §3.4.3: on a slower node that same read would have been a
//!   phantom/stale read at execution time, so every node must converge on
//!   abort).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bcrdb_common::error::AbortReason;
use bcrdb_common::ids::{BlockHeight, RowId, TxId};
use bcrdb_common::value::Value;
use bcrdb_storage::index::KeyRange;
use parking_lot::{Mutex, RwLock};

/// Which transaction flow's abort rules to apply (§3.3 vs §3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Order-then-execute: plain abort-during-commit.
    OrderThenExecute,
    /// Execute-order-in-parallel: block-aware abort-during-commit (Table 2).
    ExecuteOrderParallel,
}

/// Lifecycle state of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnState {
    /// Executing or waiting for its commit signal.
    Active,
    /// Committed.
    Committed,
    /// Aborted.
    Aborted,
}

/// Per-transaction bookkeeping.
struct Record {
    state: TxnState,
    /// Reason this transaction must abort at its commit point, if any.
    doomed: Option<AbortReason>,
    /// Transactions with an rw-edge *into* this one (they read what we
    /// wrote) — the paper's `inConflictList`. Ordered: the commit check
    /// iterates these sets, and its abort decisions must be identical on
    /// every node.
    in_conflicts: BTreeSet<TxId>,
    /// Transactions we have an rw-edge *to* (we read what they wrote) —
    /// the paper's `outConflictList`. Ordered for the same reason.
    out_conflicts: BTreeSet<TxId>,
    /// Logical begin time (for overlap checks during GC).
    begin_seq: u64,
    /// Logical commit/abort time.
    end_seq: Option<u64>,
    /// Position in the chain: (block height, index within block), assigned
    /// when the block processor starts committing the enclosing block.
    block_pos: Option<(BlockHeight, u32)>,
}

impl Record {
    fn new(begin_seq: u64) -> Record {
        Record {
            state: TxnState::Active,
            doomed: None,
            in_conflicts: BTreeSet::new(),
            out_conflicts: BTreeSet::new(),
            begin_seq,
            end_seq: None,
            block_pos: None,
        }
    }
}

/// Number of shards for the SIREAD row-lock table.
const SIREAD_SHARDS: usize = 16;

/// One shard of the SIREAD lock table: (table, row) → reader transactions.
type SireadShard = Mutex<HashMap<(String, RowId), Vec<TxId>>>;
/// Predicate-lock table: (table, column) → list of (range, reader).
type PredicateLocks = Mutex<HashMap<(String, usize), Vec<(KeyRange, TxId)>>>;

/// The SSI manager: one per database node.
pub struct SsiManager {
    records: RwLock<HashMap<TxId, Arc<Mutex<Record>>>>,
    /// SIREAD row locks: (table, row) → reader transactions. Sharded by
    /// row id to reduce contention among executor threads.
    siread: Vec<SireadShard>,
    /// Predicate locks: (table, column) → list of (range, reader).
    predicates: PredicateLocks,
    /// Whole-table read locks (full scans in the OE flow).
    table_readers: Mutex<HashMap<String, Vec<TxId>>>,
    next_tx: AtomicU64,
    clock: AtomicU64,
}

impl Default for SsiManager {
    fn default() -> Self {
        Self::new()
    }
}

impl SsiManager {
    /// Fresh manager.
    pub fn new() -> SsiManager {
        SsiManager {
            records: RwLock::new(HashMap::new()),
            siread: (0..SIREAD_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            predicates: Mutex::new(HashMap::new()),
            table_readers: Mutex::new(HashMap::new()),
            next_tx: AtomicU64::new(1),
            clock: AtomicU64::new(1),
        }
    }

    fn shard(&self, row: RowId) -> &Mutex<HashMap<(String, RowId), Vec<TxId>>> {
        &self.siread[(row.0 as usize) % SIREAD_SHARDS]
    }

    fn record(&self, tx: TxId) -> Option<Arc<Mutex<Record>>> {
        self.records.read().get(&tx).cloned()
    }

    /// Begin a transaction: allocate a local id and register its record.
    pub fn begin(&self) -> TxId {
        let tx = TxId(self.next_tx.fetch_add(1, Ordering::Relaxed));
        let seq = self.clock.fetch_add(1, Ordering::Relaxed);
        self.records
            .write()
            .insert(tx, Arc::new(Mutex::new(Record::new(seq))));
        tx
    }

    /// Current state of a transaction (None if unknown/GC'd).
    pub fn state_of(&self, tx: TxId) -> Option<TxnState> {
        self.record(tx).map(|r| r.lock().state)
    }

    /// Assign the block position of a transaction (called by the block
    /// processor when the enclosing block starts committing).
    pub fn assign_block(&self, tx: TxId, block: BlockHeight, pos: u32) {
        if let Some(r) = self.record(tx) {
            r.lock().block_pos = Some((block, pos));
        }
    }

    /// Mark a transaction to abort at its commit point. The first reason
    /// sticks (deterministic: dooming only happens from the serial commit
    /// phase or from the transaction's own executor thread).
    pub fn doom(&self, tx: TxId, reason: AbortReason) {
        if let Some(r) = self.record(tx) {
            let mut rec = r.lock();
            if rec.state == TxnState::Active && rec.doomed.is_none() {
                rec.doomed = Some(reason);
            }
        }
    }

    /// The doom reason, if set.
    pub fn doomed_reason(&self, tx: TxId) -> Option<AbortReason> {
        self.record(tx).and_then(|r| r.lock().doomed.clone())
    }

    // ------------------------------------------------------------- reads

    /// Record that `tx` read logical row (table, row). Committed rows only
    /// (pending rows are tracked through rw edges directly).
    pub fn register_row_read(&self, tx: TxId, table: &str, row: RowId) {
        let mut shard = self.shard(row).lock();
        let readers = shard.entry((table.to_string(), row)).or_default();
        if !readers.contains(&tx) {
            readers.push(tx);
        }
    }

    /// Record that `tx` performed an index range read on (table, column).
    pub fn register_predicate_read(&self, tx: TxId, table: &str, column: usize, range: KeyRange) {
        let mut preds = self.predicates.lock();
        preds
            .entry((table.to_string(), column))
            .or_default()
            .push((range, tx));
    }

    /// Record that `tx` read the whole table (full scan, OE flow only).
    pub fn register_table_read(&self, tx: TxId, table: &str) {
        let mut readers = self.table_readers.lock();
        let list = readers.entry(table.to_string()).or_default();
        if !list.contains(&tx) {
            list.push(tx);
        }
    }

    // ------------------------------------------------------------ writes

    /// Writer-side conflict probe: `writer` modified logical row
    /// (table,row); the new/old images carry `indexed_values` on the given
    /// columns. Registers `reader -rw-> writer` edges for every reader that
    /// saw the old state.
    pub fn on_write(
        &self,
        writer: TxId,
        table: &str,
        row: RowId,
        indexed_values: &[(usize, Value)],
    ) {
        // Row-level readers.
        let row_readers: Vec<TxId> = {
            let shard = self.shard(row).lock();
            shard
                .get(&(table.to_string(), row))
                .map(|v| v.iter().copied().filter(|t| *t != writer).collect())
                .unwrap_or_default()
        };
        for r in row_readers {
            self.register_rw_edge(r, writer);
        }
        // Predicate readers whose range covers any indexed value of the
        // old or new image.
        if !indexed_values.is_empty() {
            let preds = self.predicates.lock();
            for (col, value) in indexed_values {
                if let Some(locks) = preds.get(&(table.to_string(), *col)) {
                    let hits: Vec<TxId> = locks
                        .iter()
                        .filter(|(range, t)| *t != writer && range.contains(value))
                        .map(|(_, t)| *t)
                        .collect();
                    drop_hits(self, hits, writer);
                }
            }
        }
        // Whole-table readers.
        let table_hits: Vec<TxId> = {
            let readers = self.table_readers.lock();
            readers
                .get(table)
                .map(|v| v.iter().copied().filter(|t| *t != writer).collect())
                .unwrap_or_default()
        };
        for r in table_hits {
            self.register_rw_edge(r, writer);
        }
    }

    /// Register `reader -rw-> writer` (reader read the version writer
    /// replaced). No-op when either side is unknown, identical, or the
    /// reader committed before the writer began (not concurrent).
    pub fn register_rw_edge(&self, reader: TxId, writer: TxId) {
        if reader == writer {
            return;
        }
        let (Some(r_rec), Some(w_rec)) = (self.record(reader), self.record(writer)) else {
            return;
        };
        // Concurrency check: the edge only matters if the two overlapped.
        {
            let r = r_rec.lock();
            let w = w_rec.lock();
            if r.state == TxnState::Aborted || w.state == TxnState::Aborted {
                return;
            }
            if let Some(r_end) = r.end_seq {
                if r.state == TxnState::Committed && r_end < w.begin_seq {
                    return; // reader finished before writer began
                }
            }
            if let Some(w_end) = w.end_seq {
                if w.state == TxnState::Committed && w_end < r.begin_seq {
                    // Writer committed before reader began: the reader sees
                    // the new version via its snapshot (or aborts as a
                    // stale read in the EO flow); not an antidependency.
                    return;
                }
            }
        }
        r_rec.lock().out_conflicts.insert(writer);
        w_rec.lock().in_conflicts.insert(reader);
    }

    /// In-conflicts (nearConflicts) of `tx` — test/diagnostic accessor.
    pub fn in_conflicts(&self, tx: TxId) -> Vec<TxId> {
        self.record(tx).map_or_else(Vec::new, |r| {
            r.lock().in_conflicts.iter().copied().collect()
        })
    }

    /// Out-conflicts of `tx` — test/diagnostic accessor.
    pub fn out_conflicts(&self, tx: TxId) -> Vec<TxId> {
        self.record(tx).map_or_else(Vec::new, |r| {
            r.lock().out_conflicts.iter().copied().collect()
        })
    }

    // ------------------------------------------------------ commit/abort

    /// Serial commit-time decision for `tx` at (block, pos). Returns
    /// `Ok(())` if the transaction may commit, or the abort reason.
    ///
    /// Must be called from the single-threaded commit phase, in block
    /// order; this is what makes the decision identical on every node.
    pub fn commit_check(
        &self,
        tx: TxId,
        block: BlockHeight,
        pos: u32,
        flow: Flow,
    ) -> Result<(), AbortReason> {
        self.assign_block(tx, block, pos);
        let rec = match self.record(tx) {
            Some(r) => r,
            None => return Err(AbortReason::SsiDoomedByPeer),
        };
        // 1. Doomed by a peer's commit, a phantom/stale read, or a ww loss.
        if let Some(reason) = rec.lock().doomed.clone() {
            return Err(reason);
        }

        let (in_set, out_set): (Vec<TxId>, Vec<TxId>) = {
            let r = rec.lock();
            (
                r.in_conflicts.iter().copied().collect(),
                r.out_conflicts.iter().copied().collect(),
            )
        };

        // 2. EO only: abort if any outConflict committed in an earlier
        //    block — the read would have been stale/phantom on a node that
        //    executed later, so all nodes must abort (§3.4.3 scenarios 2–3).
        if flow == Flow::ExecuteOrderParallel {
            for w in &out_set {
                if let Some(w_rec) = self.record(*w) {
                    let wr = w_rec.lock();
                    if wr.state == TxnState::Committed {
                        match wr.block_pos {
                            Some((wb, _)) if wb < block => {
                                return Err(AbortReason::SsiDangerousStructure);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }

        // 3. Pivot rule (both flows): tx has an inConflict and an
        //    outConflict that already committed → tx is the pivot of a
        //    dangerous structure whose head committed first; abort tx
        //    (§3.2 "aborts a transaction whose outConflict has committed").
        if !in_set.is_empty() {
            for w in &out_set {
                if let Some(w_rec) = self.record(*w) {
                    if w_rec.lock().state == TxnState::Committed {
                        return Err(AbortReason::SsiDangerousStructure);
                    }
                }
            }
        }

        // 4. Victim selection for dangerous structures headed by tx:
        //    F -rw-> N -rw-> tx.
        for n in &in_set {
            let Some(n_rec) = self.record(*n) else {
                continue;
            };
            let (n_state, n_block, n_far): (TxnState, Option<(BlockHeight, u32)>, Vec<TxId>) = {
                let nr = n_rec.lock();
                (
                    nr.state,
                    nr.block_pos,
                    nr.in_conflicts.iter().copied().collect(),
                )
            };
            if n_state != TxnState::Active {
                continue; // committed in-edges are harmless; aborted gone
            }
            let n_same_block = n_block.map(|(b, _)| b) == Some(block);
            match flow {
                Flow::OrderThenExecute => {
                    // Plain heuristic: doom the pivot N when a farConflict
                    // exists and both are uncommitted (§3.2). F == tx covers
                    // the two-transaction cycle of Figure 2(a).
                    let has_uncommitted_far = n_far.iter().any(|f| {
                        *f == tx
                            || self
                                .record(*f)
                                .is_some_and(|fr| fr.lock().state == TxnState::Active)
                    });
                    if has_uncommitted_far {
                        self.doom(*n, AbortReason::SsiDoomedByPeer);
                    }
                }
                Flow::ExecuteOrderParallel => {
                    self.block_aware_victims(tx, *n, n_same_block, n_block, &n_far, block);
                }
            }
        }
        Ok(())
    }

    /// Table 2 of the paper: decide the victim among nearConflict `n` and
    /// its farConflicts, given block membership relative to the committing
    /// transaction's `block`.
    fn block_aware_victims(
        &self,
        tx: TxId,
        n: TxId,
        n_same_block: bool,
        n_block: Option<(BlockHeight, u32)>,
        n_far: &[TxId],
        block: BlockHeight,
    ) {
        if n_far.is_empty() || (n_far.len() == 1 && n_far[0] == tx) {
            // No farConflict: abort N only when it is not in the same
            // block (Table 2 last rows; §3.4.3 "Even if there is no
            // farConflict, the nearConflict would get aborted (if it not
            // in same block as T)").
            if !n_same_block {
                self.doom(n, AbortReason::SsiDoomedByPeer);
            }
            return;
        }
        for f in n_far {
            if *f == n {
                continue;
            }
            // A farConflict equal to tx is the 2-cycle: tx -rw-> N -rw-> tx.
            // tx commits now, so N (the other side) must abort.
            if *f == tx {
                self.doom(n, AbortReason::SsiDoomedByPeer);
                continue;
            }
            let (f_state, f_block) = match self.record(*f) {
                Some(fr) => {
                    let fr = fr.lock();
                    (fr.state, fr.block_pos)
                }
                None => continue,
            };
            if f_state == TxnState::Aborted {
                continue;
            }
            let f_same_block = f_block.map(|(b, _)| b) == Some(block);
            if f_state == TxnState::Committed {
                // farConflict committed first → abort nearConflict.
                self.doom(n, AbortReason::SsiDoomedByPeer);
                continue;
            }
            match (n_same_block, f_same_block) {
                (true, true) => {
                    // Both pending in this block: abort whichever commits
                    // later in the block order.
                    let n_pos = n_block.map(|(_, p)| p).unwrap_or(u32::MAX);
                    let f_pos = f_block.map(|(_, p)| p).unwrap_or(u32::MAX);
                    if n_pos < f_pos {
                        self.doom(*f, AbortReason::SsiDoomedByPeer);
                    } else {
                        self.doom(n, AbortReason::SsiDoomedByPeer);
                    }
                }
                // N commits with this block, F later → abort F.
                (true, false) => self.doom(*f, AbortReason::SsiDoomedByPeer),
                // F commits with this block, N later → abort N.
                (false, true) => self.doom(n, AbortReason::SsiDoomedByPeer),
                // Neither ordered with this block → abort N.
                (false, false) => self.doom(n, AbortReason::SsiDoomedByPeer),
            }
        }
    }

    /// Finalize a commit.
    pub fn commit(&self, tx: TxId) {
        if let Some(r) = self.record(tx) {
            let mut rec = r.lock();
            rec.state = TxnState::Committed;
            rec.end_seq = Some(self.clock.fetch_add(1, Ordering::Relaxed));
        }
    }

    /// Finalize an abort.
    pub fn abort(&self, tx: TxId) {
        if let Some(r) = self.record(tx) {
            let mut rec = r.lock();
            rec.state = TxnState::Aborted;
            rec.end_seq = Some(self.clock.fetch_add(1, Ordering::Relaxed));
        }
    }

    /// Drop bookkeeping for finished transactions that no active
    /// transaction overlaps. Returns the number of records reclaimed.
    pub fn gc(&self) -> usize {
        let records = self.records.read();
        let min_active_begin = records
            // bcrdb-lint: allow(hash-iter, reason = "min over all records; order-insensitive")
            .values()
            .filter_map(|r| {
                let rec = r.lock();
                if rec.state == TxnState::Active {
                    Some(rec.begin_seq)
                } else {
                    None
                }
            })
            .min()
            .unwrap_or(u64::MAX);
        let dead: HashSet<TxId> = records
            // bcrdb-lint: allow(hash-iter, reason = "builds an unordered dead set; order-insensitive")
            .iter()
            .filter(|(_, r)| {
                let rec = r.lock();
                rec.state != TxnState::Active && rec.end_seq.is_some_and(|e| e < min_active_begin)
            })
            .map(|(t, _)| *t)
            .collect();
        drop(records);
        if dead.is_empty() {
            return 0;
        }
        {
            let mut records = self.records.write();
            // bcrdb-lint: allow(hash-iter, reason = "removal only; order-insensitive")
            for t in &dead {
                records.remove(t);
            }
        }
        for shard in &self.siread {
            let mut shard = shard.lock();
            shard.retain(|_, readers| {
                readers.retain(|t| !dead.contains(t));
                !readers.is_empty()
            });
        }
        {
            let mut preds = self.predicates.lock();
            preds.retain(|_, locks| {
                locks.retain(|(_, t)| !dead.contains(t));
                !locks.is_empty()
            });
        }
        {
            let mut tables = self.table_readers.lock();
            tables.retain(|_, readers| {
                readers.retain(|t| !dead.contains(t));
                !readers.is_empty()
            });
        }
        dead.len()
    }

    /// Number of tracked transaction records (diagnostic).
    pub fn record_count(&self) -> usize {
        self.records.read().len()
    }
}

fn drop_hits(mgr: &SsiManager, hits: Vec<TxId>, writer: TxId) {
    for r in hits {
        mgr.register_rw_edge(r, writer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> SsiManager {
        SsiManager::new()
    }

    #[test]
    fn begin_assigns_unique_ids() {
        let m = mgr();
        let a = m.begin();
        let b = m.begin();
        assert_ne!(a, b);
        assert_eq!(m.state_of(a), Some(TxnState::Active));
    }

    #[test]
    fn row_read_then_write_registers_edge() {
        let m = mgr();
        let reader = m.begin();
        let writer = m.begin();
        m.register_row_read(reader, "t", RowId(1));
        m.on_write(writer, "t", RowId(1), &[]);
        assert_eq!(m.out_conflicts(reader), vec![writer]);
        assert_eq!(m.in_conflicts(writer), vec![reader]);
    }

    #[test]
    fn predicate_read_then_matching_insert_registers_edge() {
        let m = mgr();
        let reader = m.begin();
        let writer = m.begin();
        m.register_predicate_read(
            reader,
            "t",
            0,
            KeyRange::between(Value::Int(1), Value::Int(10)),
        );
        // Insert with key 5 matches; key 50 does not.
        m.on_write(writer, "t", RowId(99), &[(0, Value::Int(5))]);
        assert_eq!(m.in_conflicts(writer), vec![reader]);
        let writer2 = m.begin();
        m.on_write(writer2, "t", RowId(100), &[(0, Value::Int(50))]);
        assert!(m.in_conflicts(writer2).is_empty());
    }

    #[test]
    fn table_read_conflicts_with_any_write() {
        let m = mgr();
        let reader = m.begin();
        let writer = m.begin();
        m.register_table_read(reader, "t");
        m.on_write(writer, "t", RowId(7), &[(0, Value::Int(1))]);
        assert_eq!(m.in_conflicts(writer), vec![reader]);
        // Other tables don't conflict.
        let writer2 = m.begin();
        m.on_write(writer2, "u", RowId(7), &[]);
        assert!(m.in_conflicts(writer2).is_empty());
    }

    #[test]
    fn edges_not_registered_across_nonoverlapping_txns() {
        let m = mgr();
        let reader = m.begin();
        m.register_row_read(reader, "t", RowId(1));
        m.commit(reader);
        // A writer that begins after the reader committed: no edge.
        let writer = m.begin();
        m.on_write(writer, "t", RowId(1), &[]);
        assert!(m.in_conflicts(writer).is_empty());
    }

    #[test]
    fn committed_overlapping_reader_still_conflicts() {
        let m = mgr();
        let reader = m.begin();
        let writer = m.begin(); // overlaps with reader
        m.register_row_read(reader, "t", RowId(1));
        m.commit(reader);
        m.on_write(writer, "t", RowId(1), &[]);
        assert_eq!(m.in_conflicts(writer), vec![reader]);
    }

    #[test]
    fn doomed_txn_aborts_at_commit() {
        let m = mgr();
        let t = m.begin();
        m.doom(t, AbortReason::WwConflict);
        let err = m.commit_check(t, 1, 0, Flow::OrderThenExecute).unwrap_err();
        assert_eq!(err, AbortReason::WwConflict);
        // First doom reason sticks.
        m.doom(t, AbortReason::PhantomRead);
        assert_eq!(m.doomed_reason(t), Some(AbortReason::WwConflict));
    }

    /// Figure 2(a): the two-transaction cycle T1 ⇄ T2 (each reads what the
    /// other writes). The first to commit survives; the other is doomed.
    #[test]
    fn fig2a_write_skew_aborts_one() {
        for flow in [Flow::OrderThenExecute, Flow::ExecuteOrderParallel] {
            let m = mgr();
            let t1 = m.begin();
            let t2 = m.begin();
            m.assign_block(t1, 1, 0);
            m.assign_block(t2, 1, 1);
            // t1 reads row A, t2 writes row A; t2 reads row B, t1 writes B.
            m.register_row_read(t1, "t", RowId(1));
            m.register_row_read(t2, "t", RowId(2));
            m.on_write(t2, "t", RowId(1), &[]);
            m.on_write(t1, "t", RowId(2), &[]);
            assert!(m.commit_check(t1, 1, 0, flow).is_ok(), "{flow:?}");
            m.commit(t1);
            let err = m.commit_check(t2, 1, 1, flow).unwrap_err();
            assert!(
                matches!(
                    err,
                    AbortReason::SsiDoomedByPeer | AbortReason::SsiDangerousStructure
                ),
                "{flow:?}: {err:?}"
            );
            m.abort(t2);
        }
    }

    /// Figure 2(b): three-transaction cycle with two adjacent rw edges —
    /// T3 -rw-> T2 -rw-> T1. When T1 commits first, the pivot T2 is doomed.
    #[test]
    fn fig2b_pivot_doomed() {
        let m = mgr();
        let t1 = m.begin();
        let t2 = m.begin();
        let t3 = m.begin();
        for (i, t) in [t1, t2, t3].iter().enumerate() {
            m.assign_block(*t, 1, i as u32);
        }
        // t2 reads X, t1 writes X (t2 -rw-> t1).
        m.register_row_read(t2, "t", RowId(1));
        m.on_write(t1, "t", RowId(1), &[]);
        // t3 reads Y, t2 writes Y (t3 -rw-> t2).
        m.register_row_read(t3, "t", RowId(2));
        m.on_write(t2, "t", RowId(2), &[]);

        assert!(m.commit_check(t1, 1, 0, Flow::OrderThenExecute).is_ok());
        m.commit(t1);
        // t2 is the pivot: either doomed at t1's commit (abort-during-
        // commit heuristic) or caught by the committed-outConflict rule.
        let err = m
            .commit_check(t2, 1, 1, Flow::OrderThenExecute)
            .unwrap_err();
        assert!(matches!(
            err,
            AbortReason::SsiDangerousStructure | AbortReason::SsiDoomedByPeer
        ));
        m.abort(t2);
        // t3's out-conflict (t2) aborted → t3 commits.
        assert!(m.commit_check(t3, 1, 2, Flow::OrderThenExecute).is_ok());
    }

    /// EO cross-block rule: an outConflict committed in an earlier block
    /// aborts the reader even with no farConflict (§3.4.3 scenario 3).
    #[test]
    fn eo_cross_block_committed_out_conflict_aborts() {
        let m = mgr();
        let writer = m.begin();
        let reader = m.begin();
        m.register_row_read(reader, "t", RowId(1));
        m.on_write(writer, "t", RowId(1), &[]);
        assert!(m
            .commit_check(writer, 1, 0, Flow::ExecuteOrderParallel)
            .is_ok());
        m.commit(writer);
        // Reader commits in a later block: must abort (either via the
        // no-farConflict dooming at the writer's commit or the cross-block
        // committed-outConflict rule at its own commit).
        let err = m
            .commit_check(reader, 2, 0, Flow::ExecuteOrderParallel)
            .unwrap_err();
        assert!(matches!(
            err,
            AbortReason::SsiDangerousStructure | AbortReason::SsiDoomedByPeer
        ));

        // In contrast, under OE the same shape (no in-conflict on reader)
        // commits fine — OE transactions in different blocks are never
        // concurrent in practice, and plain SSI allows a bare rw edge.
        let m = mgr();
        let writer = m.begin();
        let reader = m.begin();
        m.register_row_read(reader, "t", RowId(1));
        m.on_write(writer, "t", RowId(1), &[]);
        assert!(m.commit_check(writer, 1, 0, Flow::OrderThenExecute).is_ok());
        m.commit(writer);
        assert!(m.commit_check(reader, 1, 1, Flow::OrderThenExecute).is_ok());
    }

    /// Table 2 row 1/2: near and far both in the same block → the one
    /// later in block order is doomed.
    #[test]
    fn table2_same_block_victim_by_position() {
        // Structure: F -rw-> N -rw-> T, all in block 1.
        // Positions: T=0, N=1, F=2  → N earlier than F → F doomed.
        let m = mgr();
        let t = m.begin();
        let n = m.begin();
        let f = m.begin();
        m.assign_block(t, 1, 0);
        m.assign_block(n, 1, 1);
        m.assign_block(f, 1, 2);
        m.register_row_read(n, "t", RowId(1));
        m.on_write(t, "t", RowId(1), &[]); // n -rw-> t
        m.register_row_read(f, "t", RowId(2));
        m.on_write(n, "t", RowId(2), &[]); // f -rw-> n
        assert!(m.commit_check(t, 1, 0, Flow::ExecuteOrderParallel).is_ok());
        m.commit(t);
        assert!(m.doomed_reason(f).is_some(), "far (later) should be doomed");
        assert!(m.doomed_reason(n).is_none(), "near (earlier) survives");

        // Swap positions: N=2, F=1 → N doomed.
        let m = mgr();
        let t = m.begin();
        let n = m.begin();
        let f = m.begin();
        m.assign_block(t, 1, 0);
        m.assign_block(n, 1, 2);
        m.assign_block(f, 1, 1);
        m.register_row_read(n, "t", RowId(1));
        m.on_write(t, "t", RowId(1), &[]);
        m.register_row_read(f, "t", RowId(2));
        m.on_write(n, "t", RowId(2), &[]);
        assert!(m.commit_check(t, 1, 0, Flow::ExecuteOrderParallel).is_ok());
        assert!(m.doomed_reason(n).is_some());
        assert!(m.doomed_reason(f).is_none());
    }

    /// Table 2 rows 3–6: block membership of near/far decides the victim.
    #[test]
    fn table2_cross_block_rows() {
        // Row 3: N in same block, F not ordered yet → F doomed.
        let m = mgr();
        let t = m.begin();
        let n = m.begin();
        let f = m.begin();
        m.assign_block(t, 1, 0);
        m.assign_block(n, 1, 1); // same block as t
                                 // f has no block assignment (still ordering)
        m.register_row_read(n, "t", RowId(1));
        m.on_write(t, "t", RowId(1), &[]);
        m.register_row_read(f, "t", RowId(2));
        m.on_write(n, "t", RowId(2), &[]);
        assert!(m.commit_check(t, 1, 0, Flow::ExecuteOrderParallel).is_ok());
        assert!(m.doomed_reason(f).is_some());
        assert!(m.doomed_reason(n).is_none());

        // Row 4: F in same block, N not → N doomed.
        let m = mgr();
        let t = m.begin();
        let n = m.begin();
        let f = m.begin();
        m.assign_block(t, 1, 0);
        m.assign_block(f, 1, 1);
        m.register_row_read(n, "t", RowId(1));
        m.on_write(t, "t", RowId(1), &[]);
        m.register_row_read(f, "t", RowId(2));
        m.on_write(n, "t", RowId(2), &[]);
        assert!(m.commit_check(t, 1, 0, Flow::ExecuteOrderParallel).is_ok());
        assert!(m.doomed_reason(n).is_some());
        assert!(m.doomed_reason(f).is_none());

        // Rows 5–6: neither in same block (and the no-far case) → N doomed.
        let m = mgr();
        let t = m.begin();
        let n = m.begin();
        m.assign_block(t, 1, 0);
        m.register_row_read(n, "t", RowId(1));
        m.on_write(t, "t", RowId(1), &[]);
        assert!(m.commit_check(t, 1, 0, Flow::ExecuteOrderParallel).is_ok());
        assert!(
            m.doomed_reason(n).is_some(),
            "near not in same block, no far → doomed"
        );
    }

    /// Table 2 row 7: nearConflict in the same block with no farConflict →
    /// no abort (the block order resolves the dependency deterministically).
    #[test]
    fn table2_same_block_no_far_no_abort() {
        let m = mgr();
        let t = m.begin();
        let n = m.begin();
        m.assign_block(t, 1, 0);
        m.assign_block(n, 1, 1);
        m.register_row_read(n, "t", RowId(1));
        m.on_write(t, "t", RowId(1), &[]);
        assert!(m.commit_check(t, 1, 0, Flow::ExecuteOrderParallel).is_ok());
        m.commit(t);
        assert!(m.doomed_reason(n).is_none());
        // And n itself commits: its committed out-conflict t is in the SAME
        // block, which is exempt from the cross-block rule, and n has no
        // in-conflict for the pivot rule.
        assert!(m.commit_check(n, 1, 1, Flow::ExecuteOrderParallel).is_ok());
    }

    #[test]
    fn gc_reclaims_finished_records() {
        let m = mgr();
        let a = m.begin();
        m.register_row_read(a, "t", RowId(1));
        m.register_predicate_read(a, "t", 0, KeyRange::all());
        m.register_table_read(a, "t");
        m.commit(a);
        // An active transaction that began after a finished keeps nothing
        // alive.
        let _b = m.begin();
        let reclaimed = m.gc();
        assert_eq!(reclaimed, 1);
        assert_eq!(m.record_count(), 1);
        assert!(m.state_of(a).is_none());

        // With an overlapping active transaction, records are retained.
        let m = mgr();
        let _active = m.begin();
        let c = m.begin();
        m.commit(c);
        assert_eq!(m.gc(), 0, "c overlaps the active transaction");
    }
}
