//! Abstract syntax tree for the SQL subset.

use bcrdb_common::schema::DataType;
use bcrdb_common::value::Value;

/// A parsed SQL statement.
///
/// Variant sizes differ widely (CreateFunction carries a whole body);
/// statements are built once per parse and never stored in bulk, so
/// boxing the large variants would cost more in ergonomics than the
/// few words of stack it saves.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Statement {
    /// `CREATE TABLE name (col type [NOT NULL], ..., PRIMARY KEY (cols))`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions in order.
        columns: Vec<ColumnDef>,
        /// Primary key column names (may also come from inline `PRIMARY KEY`).
        primary_key: Vec<String>,
    },
    /// `CREATE INDEX name ON table (column)`
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
        /// Indexed column name.
        column: String,
    },
    /// `DROP TABLE [IF EXISTS] name`
    DropTable {
        /// Table name.
        name: String,
        /// Do not error if missing.
        if_exists: bool,
    },
    /// `INSERT INTO table [(cols)] VALUES (...), ... | SELECT ...`
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// Row source.
        source: InsertSource,
    },
    /// `UPDATE table SET col = expr, ... [WHERE pred]`
    Update {
        /// Target table.
        table: String,
        /// Assignments (column name, value expression).
        assignments: Vec<(String, Expr)>,
        /// Optional predicate; `None` is a *blind update* (§3.4.3 forbids
        /// these in the EO flow).
        predicate: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE pred]`
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        predicate: Option<Expr>,
    },
    /// `SELECT ...`
    Select(SelectStmt),
    /// `CREATE [OR REPLACE] FUNCTION name(p type, ...) AS $$ body $$`
    CreateFunction(FunctionDef),
    /// `DROP FUNCTION name`
    DropFunction {
        /// Function (smart contract) name.
        name: String,
    },
    /// `EXPLAIN <statement>` — execute the inner statement and return
    /// its plan tree (with estimated vs. actual row counts) instead of
    /// its rows. The parser restricts the inner statement to `SELECT`.
    Explain(Box<Statement>),
}

/// A smart-contract definition: named, typed parameters and a body of
/// statements referencing them as `$1..$n`.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionDef {
    /// Contract name.
    pub name: String,
    /// Parameter (name, type) pairs; `$i` refers to the i-th parameter.
    pub params: Vec<(String, DataType)>,
    /// Statement sequence executed atomically inside the transaction.
    pub body: Vec<Statement>,
    /// Whether `OR REPLACE` was specified.
    pub or_replace: bool,
}

/// Column definition inside `CREATE TABLE`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// NULL permitted?
    pub nullable: bool,
    /// Inline `PRIMARY KEY` marker.
    pub inline_pk: bool,
}

/// Source of rows for `INSERT`.
#[derive(Clone, Debug, PartialEq)]
pub enum InsertSource {
    /// Literal rows of expressions.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO ... SELECT`.
    Select(Box<SelectStmt>),
}

/// A `SELECT` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub projections: Vec<SelectItem>,
    /// FROM clause; `None` allows `SELECT 1 + 1`.
    pub from: Option<FromClause>,
    /// WHERE predicate.
    pub predicate: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count (a literal integer expression).
    pub limit: Option<Expr>,
}

/// One projection item.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// Projected expression.
        expr: Expr,
        /// Output column alias.
        alias: Option<String>,
    },
}

/// FROM clause: a base table plus zero or more inner joins.
#[derive(Clone, Debug, PartialEq)]
pub struct FromClause {
    /// First table.
    pub base: TableRef,
    /// Chained `JOIN ... ON ...` clauses.
    pub joins: Vec<Join>,
}

/// A table reference, optionally aliased; `history` marks the provenance
/// table function `HISTORY(t)` which scans *all* row versions (§4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Alias (`FROM t AS a` or `FROM t a`).
    pub alias: Option<String>,
    /// True for `HISTORY(t)` provenance scans.
    pub history: bool,
}

impl TableRef {
    /// The name this table is referred to by in expressions.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An inner join.
#[derive(Clone, Debug, PartialEq)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// `ON` condition.
    pub on: Expr,
}

/// ORDER BY item.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: Expr,
    /// Descending if true.
    pub desc: bool,
}

/// Binary operators, in increasing precedence groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// Equality.
    Eq,
    /// Inequality (`<>` or `!=`).
    NotEq,
    /// Less than.
    Lt,
    /// Less than or equal.
    LtEq,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    GtEq,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// String concatenation `||`.
    Concat,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Modulo.
    Mod,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified: `t.col` or `col`.
    Column {
        /// Table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Positional parameter `$1`, `$2`, ... (1-based in SQL, stored 0-based).
    Param(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// `NOT IN` form.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN` form.
        negated: bool,
    },
    /// Function call: scalar builtins or aggregates.
    Function {
        /// Lower-cased function name.
        name: String,
        /// Arguments; empty plus `star=true` for `COUNT(*)`.
        args: Vec<Expr>,
        /// `COUNT(*)` marker.
        star: bool,
    },
}

impl Expr {
    /// Convenience: build `left op right`.
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience: unqualified column reference.
    pub fn column(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Convenience: qualified column reference.
    pub fn qualified(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    /// True if this expression contains an aggregate function call at any
    /// depth (used by the planner to route through the aggregation
    /// operator).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args, .. } => {
                is_aggregate_name(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { operand, .. } => operand.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => false,
        }
    }

    /// Visit every sub-expression (pre-order).
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { operand, .. } => operand.walk(f),
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => {}
        }
    }
}

/// Aggregate function names recognized by the engine.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max")
}

impl Statement {
    /// Visit every expression in the statement (for validation).
    pub fn walk_exprs(&self, f: &mut dyn FnMut(&Expr)) {
        match self {
            Statement::Insert { source, .. } => match source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            e.walk(f);
                        }
                    }
                }
                InsertSource::Select(sel) => walk_select(sel, f),
            },
            Statement::Update {
                assignments,
                predicate,
                ..
            } => {
                for (_, e) in assignments {
                    e.walk(f);
                }
                if let Some(p) = predicate {
                    p.walk(f);
                }
            }
            Statement::Delete { predicate, .. } => {
                if let Some(p) = predicate {
                    p.walk(f);
                }
            }
            Statement::Select(sel) => walk_select(sel, f),
            Statement::Explain(inner) => inner.walk_exprs(f),
            Statement::CreateFunction(def) => {
                for s in &def.body {
                    s.walk_exprs(f);
                }
            }
            Statement::CreateTable { .. }
            | Statement::CreateIndex { .. }
            | Statement::DropTable { .. }
            | Statement::DropFunction { .. } => {}
        }
    }
}

fn walk_select(sel: &SelectStmt, f: &mut dyn FnMut(&Expr)) {
    for item in &sel.projections {
        if let SelectItem::Expr { expr, .. } = item {
            expr.walk(f);
        }
    }
    if let Some(from) = &sel.from {
        for j in &from.joins {
            j.on.walk(f);
        }
    }
    if let Some(p) = &sel.predicate {
        p.walk(f);
    }
    for e in &sel.group_by {
        e.walk(f);
    }
    if let Some(h) = &sel.having {
        h.walk(f);
    }
    for o in &sel.order_by {
        o.expr.walk(f);
    }
    if let Some(l) = &sel.limit {
        l.walk(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "sum".into(),
            args: vec![Expr::column("x")],
            star: false,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::binary(BinaryOp::Add, Expr::Literal(Value::Int(1)), agg);
        assert!(nested.contains_aggregate());
        let plain = Expr::binary(BinaryOp::Add, Expr::column("a"), Expr::column("b"));
        assert!(!plain.contains_aggregate());
        assert!(is_aggregate_name("count"));
        assert!(!is_aggregate_name("abs"));
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::Between {
            expr: Box::new(Expr::column("a")),
            low: Box::new(Expr::Literal(Value::Int(1))),
            high: Box::new(Expr::Param(0)),
            negated: false,
        };
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn effective_name_prefers_alias() {
        let t = TableRef {
            name: "invoices".into(),
            alias: Some("i".into()),
            history: false,
        };
        assert_eq!(t.effective_name(), "i");
        let t2 = TableRef {
            name: "invoices".into(),
            alias: None,
            history: false,
        };
        assert_eq!(t2.effective_name(), "invoices");
    }
}
