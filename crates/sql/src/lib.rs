#![warn(missing_docs)]
//! # bcrdb-sql
//!
//! SQL front-end for the blockchain relational database: a hand-written
//! lexer and recursive-descent parser for the deterministic SQL subset the
//! paper's smart contracts need, plus the static *determinism validator*
//! that enforces the rules of §2(1) and §4.3 of the paper:
//!
//! * no non-deterministic built-ins (`random`, `now`, sequence functions,
//!   system-information functions);
//! * `LIMIT`/`FETCH` requires `ORDER BY`;
//! * row headers (`xmin`, `xmax`, `_creator_block`, ...) may not appear in
//!   contract predicates (they are reserved for provenance queries);
//! * blind updates (`UPDATE`/`DELETE` without `WHERE`) can be rejected for
//!   the execute-order-in-parallel flow.
//!
//! The grammar covers: `CREATE TABLE`, `CREATE INDEX`, `DROP TABLE`,
//! `INSERT ... VALUES | SELECT`, `UPDATE`, `DELETE`,
//! `SELECT` with inner `JOIN`s, `WHERE`, `GROUP BY`, `HAVING`, `ORDER BY`,
//! `LIMIT`, aggregates, and `CREATE FUNCTION` smart-contract definitions.
//! Provenance queries use the `HISTORY(table)` table function (the paper's
//! "special type of read only query", §4.2).

pub mod ast;
pub mod display;
pub mod lexer;
pub mod parser;
pub mod validate;

pub use ast::{
    BinaryOp, ColumnDef, Expr, FromClause, FunctionDef, InsertSource, Join, OrderItem, SelectItem,
    SelectStmt, Statement, TableRef, UnaryOp,
};
pub use parser::{parse_expression, parse_statement, parse_statements};
pub use validate::{validate_contract_body, validate_statement, DeterminismRules};
