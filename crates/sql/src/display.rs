//! Rendering ASTs back to SQL text.
//!
//! Used to persist deployed contracts in node state snapshots (recovery
//! re-parses the rendered source) and for diagnostics. The output is
//! canonical: parsing the rendered text yields an AST equal to the
//! original (round-trip property, tested below and in the property suite).

use std::fmt::Write;

use bcrdb_common::value::Value;

use crate::ast::*;

/// Render a statement as SQL text.
pub fn statement_to_sql(stmt: &Statement) -> String {
    let mut s = String::new();
    write_statement(&mut s, stmt);
    s
}

/// Render a full contract definition (`CREATE [OR REPLACE] FUNCTION ...`).
pub fn function_to_sql(def: &FunctionDef) -> String {
    let mut s = String::new();
    s.push_str("CREATE ");
    if def.or_replace {
        s.push_str("OR REPLACE ");
    }
    let _ = write!(s, "FUNCTION {}(", def.name);
    for (i, (name, ty)) in def.params.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{name} {ty}");
    }
    s.push_str(") AS $$ ");
    for (i, stmt) in def.body.iter().enumerate() {
        if i > 0 {
            s.push_str("; ");
        }
        write_statement(&mut s, stmt);
    }
    s.push_str(" $$");
    s
}

fn write_statement(s: &mut String, stmt: &Statement) {
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            primary_key,
        } => {
            let _ = write!(s, "CREATE TABLE {name} (");
            for (i, c) in columns.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{} {}", c.name, c.dtype);
                if c.inline_pk {
                    s.push_str(" PRIMARY KEY");
                } else if !c.nullable {
                    s.push_str(" NOT NULL");
                }
            }
            if !primary_key.is_empty() {
                let _ = write!(s, ", PRIMARY KEY ({})", primary_key.join(", "));
            }
            s.push(')');
        }
        Statement::CreateIndex {
            name,
            table,
            column,
        } => {
            let _ = write!(s, "CREATE INDEX {name} ON {table} ({column})");
        }
        Statement::DropTable { name, if_exists } => {
            let _ = write!(
                s,
                "DROP TABLE {}{name}",
                if *if_exists { "IF EXISTS " } else { "" }
            );
        }
        Statement::Insert {
            table,
            columns,
            source,
        } => {
            let _ = write!(s, "INSERT INTO {table}");
            if let Some(cols) = columns {
                let _ = write!(s, " ({})", cols.join(", "));
            }
            match source {
                InsertSource::Values(rows) => {
                    s.push_str(" VALUES ");
                    for (i, row) in rows.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        s.push('(');
                        for (j, e) in row.iter().enumerate() {
                            if j > 0 {
                                s.push_str(", ");
                            }
                            write_expr(s, e);
                        }
                        s.push(')');
                    }
                }
                InsertSource::Select(sel) => {
                    s.push(' ');
                    write_select(s, sel);
                }
            }
        }
        Statement::Update {
            table,
            assignments,
            predicate,
        } => {
            let _ = write!(s, "UPDATE {table} SET ");
            for (i, (col, e)) in assignments.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{col} = ");
                write_expr(s, e);
            }
            if let Some(p) = predicate {
                s.push_str(" WHERE ");
                write_expr(s, p);
            }
        }
        Statement::Delete { table, predicate } => {
            let _ = write!(s, "DELETE FROM {table}");
            if let Some(p) = predicate {
                s.push_str(" WHERE ");
                write_expr(s, p);
            }
        }
        Statement::Select(sel) => write_select(s, sel),
        Statement::Explain(inner) => {
            s.push_str("EXPLAIN ");
            write_statement(s, inner);
        }
        Statement::CreateFunction(def) => s.push_str(&function_to_sql(def)),
        Statement::DropFunction { name } => {
            let _ = write!(s, "DROP FUNCTION {name}");
        }
    }
}

fn write_select(s: &mut String, sel: &SelectStmt) {
    s.push_str("SELECT ");
    for (i, item) in sel.projections.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => s.push('*'),
            SelectItem::QualifiedWildcard(q) => {
                let _ = write!(s, "{q}.*");
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(s, expr);
                if let Some(a) = alias {
                    let _ = write!(s, " AS {a}");
                }
            }
        }
    }
    if let Some(from) = &sel.from {
        s.push_str(" FROM ");
        write_table_ref(s, &from.base);
        for j in &from.joins {
            s.push_str(" JOIN ");
            write_table_ref(s, &j.table);
            s.push_str(" ON ");
            write_expr(s, &j.on);
        }
    }
    if let Some(p) = &sel.predicate {
        s.push_str(" WHERE ");
        write_expr(s, p);
    }
    if !sel.group_by.is_empty() {
        s.push_str(" GROUP BY ");
        for (i, e) in sel.group_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write_expr(s, e);
        }
    }
    if let Some(h) = &sel.having {
        s.push_str(" HAVING ");
        write_expr(s, h);
    }
    if !sel.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        for (i, o) in sel.order_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write_expr(s, &o.expr);
            if o.desc {
                s.push_str(" DESC");
            }
        }
    }
    if let Some(l) = &sel.limit {
        s.push_str(" LIMIT ");
        write_expr(s, l);
    }
}

fn write_table_ref(s: &mut String, t: &TableRef) {
    if t.history {
        let _ = write!(s, "HISTORY({})", t.name);
    } else {
        s.push_str(&t.name);
    }
    if let Some(a) = &t.alias {
        let _ = write!(s, " {a}");
    }
}

fn op_str(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Or => "OR",
        BinaryOp::And => "AND",
        BinaryOp::Eq => "=",
        BinaryOp::NotEq => "<>",
        BinaryOp::Lt => "<",
        BinaryOp::LtEq => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::GtEq => ">=",
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Concat => "||",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Mod => "%",
    }
}

fn write_expr(s: &mut String, e: &Expr) {
    match e {
        Expr::Literal(v) => write_value(s, v),
        Expr::Column { table, name } => match table {
            Some(t) => {
                let _ = write!(s, "{t}.{name}");
            }
            None => s.push_str(name),
        },
        Expr::Param(i) => {
            let _ = write!(s, "${}", i + 1);
        }
        Expr::Binary { op, left, right } => {
            // Fully parenthesized: precedence-safe round trips.
            s.push('(');
            write_expr(s, left);
            let _ = write!(s, " {} ", op_str(*op));
            write_expr(s, right);
            s.push(')');
        }
        Expr::Unary { op, operand } => {
            s.push('(');
            match op {
                UnaryOp::Not => s.push_str("NOT "),
                UnaryOp::Neg => s.push('-'),
            }
            write_expr(s, operand);
            s.push(')');
        }
        Expr::IsNull { expr, negated } => {
            s.push('(');
            write_expr(s, expr);
            s.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
            s.push(')');
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            s.push('(');
            write_expr(s, expr);
            s.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(s, item);
            }
            s.push_str("))");
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            s.push('(');
            write_expr(s, expr);
            s.push_str(if *negated {
                " NOT BETWEEN "
            } else {
                " BETWEEN "
            });
            write_expr(s, low);
            s.push_str(" AND ");
            write_expr(s, high);
            s.push(')');
        }
        Expr::Function { name, args, star } => {
            let _ = write!(s, "{name}(");
            if *star {
                s.push('*');
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(s, a);
            }
            s.push(')');
        }
    }
}

fn write_value(s: &mut String, v: &Value) {
    match v {
        Value::Null => s.push_str("NULL"),
        Value::Bool(b) => s.push_str(if *b { "TRUE" } else { "FALSE" }),
        Value::Int(i) => {
            let _ = write!(s, "{i}");
        }
        Value::Float(f) => {
            // Ensure a float literal parses back as Float, not Int.
            if f.fract() == 0.0 && f.is_finite() {
                let _ = write!(s, "{f:.1}");
            } else {
                let _ = write!(s, "{f}");
            }
        }
        Value::Text(t) => {
            s.push('\'');
            s.push_str(&t.replace('\'', "''"));
            s.push('\'');
        }
        // Bytes/timestamps have no literal syntax in the subset; they are
        // only produced by the engine, never parsed. Render as text.
        Value::Bytes(b) => {
            let _ = write!(s, "'\\x{}'", hex(b));
        }
        Value::Timestamp(t) => {
            let _ = write!(s, "{t}");
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_statement, parse_statements};

    fn roundtrip(sql: &str) {
        let stmt = parse_statement(sql).unwrap();
        let rendered = statement_to_sql(&stmt);
        let reparsed = parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("rendered SQL failed to parse: {rendered}\n{e}"));
        assert_eq!(stmt, reparsed, "round trip changed the AST:\n{rendered}");
    }

    #[test]
    fn statements_round_trip() {
        for sql in [
            "CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL, amt FLOAT)",
            "CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a, b))",
            "CREATE INDEX idx ON t (name)",
            "DROP TABLE IF EXISTS t",
            "DROP FUNCTION foo",
            "INSERT INTO t (a, b) VALUES (1, 'x''y'), ($1, NULL)",
            "INSERT INTO t SELECT a, SUM(b) FROM u WHERE a > 0 GROUP BY a",
            "UPDATE t SET a = a + 1, b = 'z' WHERE id BETWEEN 1 AND 5",
            "DELETE FROM t WHERE x IS NOT NULL",
            "SELECT * FROM t",
            "SELECT t.*, u.name AS n FROM t JOIN u ON t.id = u.tid WHERE NOT t.done",
            "SELECT a, COUNT(*) FROM t WHERE b IN (1, 2, 3) GROUP BY a \
             HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 10",
            "SELECT h.amt FROM HISTORY(inv) h WHERE h.id = 5",
            "SELECT -x + 2 * (y - 1) FROM t WHERE a = TRUE OR b = FALSE",
            "SELECT 1.5, 2.0, 'text'",
            "EXPLAIN SELECT * FROM t WHERE id = 1 OR id = 2",
            "EXPLAIN SELECT a, COUNT(*) FROM t JOIN u ON t.id = u.tid GROUP BY a",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn explain_restricted_to_select() {
        assert!(parse_statement("EXPLAIN DELETE FROM t WHERE id = 1").is_err());
        assert!(parse_statement("EXPLAIN EXPLAIN SELECT 1").is_err());
    }

    #[test]
    fn functions_round_trip() {
        let sql = "CREATE OR REPLACE FUNCTION pay(src INT, dst INT, amt FLOAT) AS $$ \
                   UPDATE accounts SET balance = balance - $3 WHERE id = $1; \
                   UPDATE accounts SET balance = balance + $3 WHERE id = $2 $$";
        let stmt = parse_statement(sql).unwrap();
        let rendered = statement_to_sql(&stmt);
        let reparsed = parse_statement(&rendered).unwrap();
        assert_eq!(stmt, reparsed);
        // function_to_sql agrees with statement rendering.
        if let Statement::CreateFunction(def) = &stmt {
            assert_eq!(function_to_sql(def), rendered);
        } else {
            panic!("expected function");
        }
    }

    #[test]
    fn multi_statement_bodies_round_trip() {
        let stmts = parse_statements(
            "INSERT INTO t VALUES (1); SELECT a FROM t WHERE a > $1 ORDER BY a LIMIT 1",
        )
        .unwrap();
        for stmt in stmts {
            let rendered = statement_to_sql(&stmt);
            assert_eq!(stmt, parse_statement(&rendered).unwrap());
        }
    }
}
