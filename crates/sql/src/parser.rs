//! Recursive-descent SQL parser.
//!
//! Operator precedence (low → high): `OR` < `AND` < `NOT` < comparisons /
//! `IS [NOT] NULL` / `[NOT] IN` / `[NOT] BETWEEN` < `+ - ||` < `* / %` <
//! unary `-` < primary.

use bcrdb_common::error::{Error, Result};
use bcrdb_common::schema::DataType;
use bcrdb_common::value::Value;

use crate::ast::*;
use crate::lexer::{err_at, tokenize, Keyword as Kw, SpannedToken, Symbol as Sym, Token};

/// Parse a single statement (a trailing semicolon is allowed).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut stmts = parse_statements(input)?;
    match stmts.len() {
        1 => Ok(stmts.pop().expect("len checked")),
        0 => Err(Error::Parse("empty statement".into())),
        n => Err(Error::Parse(format!("expected one statement, found {n}"))),
    }
}

/// Parse a semicolon-separated sequence of statements.
pub fn parse_statements(input: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        input,
        tokens: &tokens,
        pos: 0,
    };
    let mut stmts = Vec::new();
    loop {
        while p.eat_symbol(Sym::Semicolon) {}
        if p.at_end() {
            break;
        }
        stmts.push(p.parse_statement()?);
        if !p.at_end() && !p.peek_symbol(Sym::Semicolon) {
            return Err(p.err_here("expected ';' between statements"));
        }
    }
    Ok(stmts)
}

/// Parse a standalone scalar expression (used by tests and the REPL-style
/// client helpers).
pub fn parse_expression(input: &str) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        input,
        tokens: &tokens,
        pos: 0,
    };
    let e = p.parse_expr()?;
    if !p.at_end() {
        return Err(p.err_here("unexpected trailing tokens after expression"));
    }
    Ok(e)
}

struct Parser<'a> {
    input: &'a str,
    tokens: &'a [SpannedToken],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_ahead(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n).map(|t| &t.token)
    }

    fn advance(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos).map(|t| &t.token);
        self.pos += 1;
        t
    }

    fn err_here(&self, msg: &str) -> Error {
        let offset = self
            .tokens
            .get(self.pos)
            .map_or(self.input.len(), |t| t.offset);
        err_at(self.input, offset, msg)
    }

    fn peek_keyword(&self, kw: Kw) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if *k == kw)
    }

    fn eat_keyword(&mut self, kw: Kw) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Kw) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected {kw:?}")))
        }
    }

    fn peek_symbol(&self, s: Sym) -> bool {
        matches!(self.peek(), Some(Token::Symbol(sym)) if *sym == s)
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if self.peek_symbol(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected {s:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            // Allow non-reserved keywords as identifiers where unambiguous
            // (e.g. a column named "key" or "history").
            Some(Token::Keyword(Kw::Key)) => Ok("key".into()),
            Some(Token::Keyword(Kw::History)) => Ok("history".into()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("expected identifier"))
            }
        }
    }

    // ---------------------------------------------------------------- DDL

    fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(Token::Keyword(Kw::Create)) => self.parse_create(),
            Some(Token::Keyword(Kw::Drop)) => self.parse_drop(),
            Some(Token::Keyword(Kw::Insert)) => self.parse_insert(),
            Some(Token::Keyword(Kw::Update)) => self.parse_update(),
            Some(Token::Keyword(Kw::Delete)) => self.parse_delete(),
            Some(Token::Keyword(Kw::Select)) => Ok(Statement::Select(self.parse_select()?)),
            Some(Token::Keyword(Kw::Explain)) => self.parse_explain(),
            _ => Err(self.err_here("expected a statement")),
        }
    }

    fn parse_explain(&mut self) -> Result<Statement> {
        self.expect_keyword(Kw::Explain)?;
        if !matches!(self.peek(), Some(Token::Keyword(Kw::Select))) {
            return Err(self.err_here("EXPLAIN supports SELECT statements only"));
        }
        Ok(Statement::Explain(Box::new(Statement::Select(
            self.parse_select()?,
        ))))
    }

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_keyword(Kw::Create)?;
        let or_replace = if self.eat_keyword(Kw::Or) {
            self.expect_keyword(Kw::Replace)?;
            true
        } else {
            false
        };
        if self.eat_keyword(Kw::Table) {
            if or_replace {
                return Err(self.err_here("OR REPLACE is only valid for functions"));
            }
            return self.parse_create_table();
        }
        if self.eat_keyword(Kw::Index)
            || (self.eat_keyword(Kw::Unique) && self.eat_keyword(Kw::Index))
        {
            if or_replace {
                return Err(self.err_here("OR REPLACE is only valid for functions"));
            }
            return self.parse_create_index();
        }
        if self.eat_keyword(Kw::Function) {
            return self.parse_create_function(or_replace);
        }
        Err(self.err_here("expected TABLE, INDEX or FUNCTION after CREATE"))
    }

    fn parse_create_table(&mut self) -> Result<Statement> {
        let name = self.expect_ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key: Vec<String> = Vec::new();
        loop {
            if self.eat_keyword(Kw::Primary) {
                self.expect_keyword(Kw::Key)?;
                self.expect_symbol(Sym::LParen)?;
                loop {
                    primary_key.push(self.expect_ident()?);
                    if !self.eat_symbol(Sym::Comma) {
                        break;
                    }
                }
                self.expect_symbol(Sym::RParen)?;
            } else {
                let col_name = self.expect_ident()?;
                let type_name = self.expect_ident()?;
                let dtype = DataType::from_sql_name(&type_name)?;
                let mut nullable = true;
                let mut inline_pk = false;
                loop {
                    if self.eat_keyword(Kw::Not) {
                        self.expect_keyword(Kw::Null)?;
                        nullable = false;
                    } else if self.eat_keyword(Kw::Null) {
                        nullable = true;
                    } else if self.eat_keyword(Kw::Primary) {
                        self.expect_keyword(Kw::Key)?;
                        inline_pk = true;
                        nullable = false;
                    } else if self.eat_keyword(Kw::Unique) {
                        // Accepted and treated as an index hint; uniqueness
                        // beyond the PK is not enforced (documented subset).
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef {
                    name: col_name,
                    dtype,
                    nullable,
                    inline_pk,
                });
            }
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            primary_key,
        })
    }

    fn parse_create_index(&mut self) -> Result<Statement> {
        let name = self.expect_ident()?;
        self.expect_keyword(Kw::On)?;
        let table = self.expect_ident()?;
        self.expect_symbol(Sym::LParen)?;
        let column = self.expect_ident()?;
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    fn parse_create_function(&mut self, or_replace: bool) -> Result<Statement> {
        let name = self.expect_ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut params = Vec::new();
        if !self.peek_symbol(Sym::RParen) {
            loop {
                let pname = self.expect_ident()?;
                let tname = self.expect_ident()?;
                params.push((pname, DataType::from_sql_name(&tname)?));
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        self.expect_symbol(Sym::RParen)?;
        self.expect_keyword(Kw::As)?;
        let body_src = match self.advance() {
            Some(Token::DollarBody(b)) => b.clone(),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err_here("expected $$ ... $$ function body"));
            }
        };
        let body = parse_statements(&body_src)?;
        if body.is_empty() {
            return Err(Error::Parse(format!("function {name} has an empty body")));
        }
        Ok(Statement::CreateFunction(FunctionDef {
            name,
            params,
            body,
            or_replace,
        }))
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        self.expect_keyword(Kw::Drop)?;
        if self.eat_keyword(Kw::Table) {
            let if_exists = if self.eat_keyword(Kw::If) {
                self.expect_keyword(Kw::Exists)?;
                true
            } else {
                false
            };
            let name = self.expect_ident()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_keyword(Kw::Function) {
            let name = self.expect_ident()?;
            return Ok(Statement::DropFunction { name });
        }
        Err(self.err_here("expected TABLE or FUNCTION after DROP"))
    }

    // ---------------------------------------------------------------- DML

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_keyword(Kw::Insert)?;
        self.expect_keyword(Kw::Into)?;
        let table = self.expect_ident()?;
        let columns = if self.peek_symbol(Sym::LParen) && !self.peek_values_ahead() {
            self.expect_symbol(Sym::LParen)?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        let source = if self.eat_keyword(Kw::Values) {
            let mut rows = Vec::new();
            loop {
                self.expect_symbol(Sym::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_symbol(Sym::Comma) {
                        break;
                    }
                }
                self.expect_symbol(Sym::RParen)?;
                rows.push(row);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek_keyword(Kw::Select) {
            InsertSource::Select(Box::new(self.parse_select()?))
        } else {
            return Err(self.err_here("expected VALUES or SELECT in INSERT"));
        };
        Ok(Statement::Insert {
            table,
            columns,
            source,
        })
    }

    /// Disambiguate `INSERT INTO t (a, b) VALUES ...` from a hypothetical
    /// parenthesized select — we only need to check the token after the
    /// closing paren is VALUES/SELECT, but a simple heuristic suffices: a
    /// column list is always followed by VALUES or SELECT.
    fn peek_values_ahead(&self) -> bool {
        false
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_keyword(Kw::Update)?;
        let table = self.expect_ident()?;
        self.expect_keyword(Kw::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_symbol(Sym::Eq)?;
            let expr = self.parse_expr()?;
            assignments.push((col, expr));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let predicate = if self.eat_keyword(Kw::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_keyword(Kw::Delete)?;
        self.expect_keyword(Kw::From)?;
        let table = self.expect_ident()?;
        let predicate = if self.eat_keyword(Kw::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    // ------------------------------------------------------------- SELECT

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword(Kw::Select)?;
        // DISTINCT is accepted but not implemented; reject explicitly so the
        // failure mode is a clear parse error, not silent wrong answers.
        if self.eat_keyword(Kw::Distinct) {
            return Err(self.err_here("DISTINCT is not supported"));
        }
        let mut projections = Vec::new();
        loop {
            projections.push(self.parse_select_item()?);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let from = if self.eat_keyword(Kw::From) {
            let base = self.parse_table_ref()?;
            let mut joins = Vec::new();
            loop {
                let saw_inner = self.eat_keyword(Kw::Inner);
                if self.eat_keyword(Kw::Join) {
                    let table = self.parse_table_ref()?;
                    self.expect_keyword(Kw::On)?;
                    let on = self.parse_expr()?;
                    joins.push(Join { table, on });
                } else if saw_inner {
                    return Err(self.err_here("expected JOIN after INNER"));
                } else if self.eat_symbol(Sym::Comma) {
                    // Comma join: `FROM a, b WHERE ...` — treated as a cross
                    // join whose condition lives in WHERE (used by the
                    // paper's provenance examples, Table 3).
                    let table = self.parse_table_ref()?;
                    joins.push(Join {
                        table,
                        on: Expr::Literal(Value::Bool(true)),
                    });
                } else {
                    break;
                }
            }
            Some(FromClause { base, joins })
        } else {
            None
        };
        let predicate = if self.eat_keyword(Kw::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword(Kw::Group) {
            self.expect_keyword(Kw::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword(Kw::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword(Kw::Order) {
            self.expect_keyword(Kw::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_keyword(Kw::Desc) {
                    true
                } else {
                    self.eat_keyword(Kw::Asc);
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword(Kw::Limit) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(SelectStmt {
            projections,
            from,
            predicate,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (
            Some(Token::Ident(name)),
            Some(Token::Symbol(Sym::Dot)),
            Some(Token::Symbol(Sym::Star)),
        ) = (self.peek(), self.peek_ahead(1), self.peek_ahead(2))
        {
            let name = name.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(name));
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword(Kw::As) {
            Some(self.expect_ident()?)
        } else if let Some(Token::Ident(id)) = self.peek() {
            let id = id.clone();
            self.pos += 1;
            Some(id)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        // HISTORY(t) provenance scan.
        if self.peek_keyword(Kw::History)
            && matches!(self.peek_ahead(1), Some(Token::Symbol(Sym::LParen)))
        {
            self.pos += 2;
            let name = self.expect_ident()?;
            self.expect_symbol(Sym::RParen)?;
            let alias = self.parse_opt_alias()?;
            return Ok(TableRef {
                name,
                alias,
                history: true,
            });
        }
        let name = self.expect_ident()?;
        let alias = self.parse_opt_alias()?;
        Ok(TableRef {
            name,
            alias,
            history: false,
        })
    }

    fn parse_opt_alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword(Kw::As) {
            return Ok(Some(self.expect_ident()?));
        }
        if let Some(Token::Ident(id)) = self.peek() {
            let id = id.clone();
            self.pos += 1;
            return Ok(Some(id));
        }
        Ok(None)
    }

    // -------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword(Kw::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword(Kw::And) {
            let right = self.parse_not()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword(Kw::Not) {
            let operand = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_keyword(Kw::Is) {
            let negated = self.eat_keyword(Kw::Not);
            self.expect_keyword(Kw::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / [NOT] BETWEEN
        let negated = self.eat_keyword(Kw::Not);
        if self.eat_keyword(Kw::In) {
            self.expect_symbol(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword(Kw::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Kw::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.err_here("expected IN or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinaryOp::Eq),
            Some(Token::Symbol(Sym::NotEq)) => Some(BinaryOp::NotEq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinaryOp::Lt),
            Some(Token::Symbol(Sym::LtEq)) => Some(BinaryOp::LtEq),
            Some(Token::Symbol(Sym::Gt)) => Some(BinaryOp::Gt),
            Some(Token::Symbol(Sym::GtEq)) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinaryOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinaryOp::Sub,
                Some(Token::Symbol(Sym::Concat)) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinaryOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinaryOp::Div,
                Some(Token::Symbol(Sym::Percent)) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Sym::Minus) {
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        if self.eat_symbol(Sym::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Param(n)) => {
                self.pos += 1;
                Ok(Expr::Param(n - 1))
            }
            Some(Token::Keyword(Kw::Null)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Keyword(Kw::True)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Some(Token::Keyword(Kw::False)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                // Function call?
                if matches!(self.peek_ahead(1), Some(Token::Symbol(Sym::LParen))) {
                    self.pos += 2;
                    return self.parse_function_tail(name);
                }
                self.pos += 1;
                // Qualified column `t.col`?
                if self.eat_symbol(Sym::Dot) {
                    let col = self.expect_ident()?;
                    return Ok(Expr::qualified(name, col));
                }
                Ok(Expr::column(name))
            }
            // Non-reserved keywords usable as bare column names.
            Some(Token::Keyword(Kw::Key)) => {
                self.pos += 1;
                Ok(Expr::column("key"))
            }
            _ => Err(self.err_here("expected expression")),
        }
    }

    fn parse_function_tail(&mut self, name: String) -> Result<Expr> {
        // COUNT(*) special case.
        if self.eat_symbol(Sym::Star) {
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::Function {
                name,
                args: Vec::new(),
                star: true,
            });
        }
        let mut args = Vec::new();
        if !self.peek_symbol(Sym::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        self.expect_symbol(Sym::RParen)?;
        Ok(Expr::Function {
            name,
            args,
            star: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_pk_variants() {
        let s = parse_statement(
            "CREATE TABLE invoices (id INT PRIMARY KEY, supplier TEXT NOT NULL, amount FLOAT)",
        )
        .unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                assert_eq!(name, "invoices");
                assert_eq!(columns.len(), 3);
                assert!(columns[0].inline_pk);
                assert!(!columns[0].nullable);
                assert!(!columns[1].nullable);
                assert!(columns[2].nullable);
                assert!(primary_key.is_empty());
            }
            other => panic!("wrong statement: {other:?}"),
        }

        let s = parse_statement("CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a, b))").unwrap();
        match s {
            Statement::CreateTable { primary_key, .. } => {
                assert_eq!(primary_key, vec!["a".to_string(), "b".to_string()]);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn insert_values_multi_row() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), ($1, $2)").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                match source {
                    InsertSource::Values(rows) => {
                        assert_eq!(rows.len(), 2);
                        assert_eq!(rows[1][0], Expr::Param(0));
                        assert_eq!(rows[1][1], Expr::Param(1));
                    }
                    other => panic!("wrong source: {other:?}"),
                }
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn insert_from_select() {
        let s = parse_statement("INSERT INTO t SELECT a, SUM(b) FROM u GROUP BY a").unwrap();
        match s {
            Statement::Insert {
                source: InsertSource::Select(sel),
                ..
            } => {
                assert_eq!(sel.group_by.len(), 1);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        let s = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = $1").unwrap();
        match s {
            Statement::Update {
                assignments,
                predicate,
                ..
            } => {
                assert_eq!(assignments.len(), 2);
                assert!(predicate.is_some());
            }
            other => panic!("wrong statement: {other:?}"),
        }
        let s = parse_statement("DELETE FROM t WHERE id BETWEEN 1 AND 10").unwrap();
        match s {
            Statement::Delete {
                predicate: Some(Expr::Between { .. }),
                ..
            } => {}
            other => panic!("wrong statement: {other:?}"),
        }
        // Blind update parses (the validator rejects it for EO).
        assert!(parse_statement("UPDATE t SET a = 1").is_ok());
    }

    #[test]
    fn select_full_clause_chain() {
        let s = parse_statement(
            "SELECT i.supplier, SUM(i.amount) AS total \
             FROM invoices i JOIN parts p ON i.part_id = p.id \
             WHERE p.kind = 'widget' AND i.amount > 10 \
             GROUP BY i.supplier HAVING SUM(i.amount) > 100 \
             ORDER BY total DESC, i.supplier LIMIT 5",
        )
        .unwrap();
        let sel = match s {
            Statement::Select(sel) => sel,
            other => panic!("wrong statement: {other:?}"),
        };
        assert_eq!(sel.projections.len(), 2);
        let from = sel.from.unwrap();
        assert_eq!(from.base.effective_name(), "i");
        assert_eq!(from.joins.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].desc);
        assert!(!sel.order_by[1].desc);
        assert_eq!(sel.limit, Some(Expr::Literal(Value::Int(5))));
    }

    #[test]
    fn comma_join_for_provenance_style_queries() {
        let s = parse_statement(
            "SELECT invoices.* FROM invoices, ledger WHERE invoices.xmax = ledger.txid",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                let from = sel.from.unwrap();
                assert_eq!(from.joins.len(), 1);
                assert_eq!(from.joins[0].table.name, "ledger");
                assert_eq!(from.joins[0].on, Expr::Literal(Value::Bool(true)));
                assert_eq!(
                    sel.projections[0],
                    SelectItem::QualifiedWildcard("invoices".into())
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn history_table_function() {
        let s = parse_statement("SELECT * FROM HISTORY(invoices) h WHERE h.id = 5").unwrap();
        match s {
            Statement::Select(sel) => {
                let base = sel.from.unwrap().base;
                assert!(base.history);
                assert_eq!(base.name, "invoices");
                assert_eq!(base.alias.as_deref(), Some("h"));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn create_function_with_body() {
        let s = parse_statement(
            "CREATE OR REPLACE FUNCTION add_invoice(inv_id INT, amount FLOAT) AS $$ \
               INSERT INTO invoices VALUES ($1, $2); \
               UPDATE totals SET amount = amount + $2 WHERE id = 1 \
             $$",
        )
        .unwrap();
        match s {
            Statement::CreateFunction(def) => {
                assert_eq!(def.name, "add_invoice");
                assert!(def.or_replace);
                assert_eq!(def.params.len(), 2);
                assert_eq!(def.body.len(), 2);
            }
            other => panic!("wrong statement: {other:?}"),
        }
        assert!(parse_statement("CREATE FUNCTION f() AS $$ $$").is_err());
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::binary(
                BinaryOp::Add,
                Expr::Literal(Value::Int(1)),
                Expr::binary(
                    BinaryOp::Mul,
                    Expr::Literal(Value::Int(2)),
                    Expr::Literal(Value::Int(3))
                )
            )
        );
        let e = parse_expression("a = 1 OR b = 2 AND c = 3").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => match *right {
                Expr::Binary {
                    op: BinaryOp::And, ..
                } => {}
                other => panic!("AND should bind tighter: {other:?}"),
            },
            other => panic!("wrong tree: {other:?}"),
        }
        let e = parse_expression("NOT a = 1").unwrap();
        match e {
            Expr::Unary {
                op: UnaryOp::Not,
                operand,
            } => match *operand {
                Expr::Binary {
                    op: BinaryOp::Eq, ..
                } => {}
                other => panic!("NOT should apply to the comparison: {other:?}"),
            },
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn is_null_in_between_not_variants() {
        assert!(matches!(
            parse_expression("a IS NULL").unwrap(),
            Expr::IsNull { negated: false, .. }
        ));
        assert!(matches!(
            parse_expression("a IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("a NOT IN (1, 2)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("a NOT BETWEEN 1 AND 2").unwrap(),
            Expr::Between { negated: true, .. }
        ));
    }

    #[test]
    fn count_star_and_functions() {
        assert_eq!(
            parse_expression("COUNT(*)").unwrap(),
            Expr::Function {
                name: "count".into(),
                args: vec![],
                star: true
            }
        );
        assert_eq!(
            parse_expression("coalesce(a, 0)").unwrap(),
            Expr::Function {
                name: "coalesce".into(),
                args: vec![Expr::column("a"), Expr::Literal(Value::Int(0))],
                star: false
            }
        );
    }

    #[test]
    fn multi_statement_scripts() {
        let stmts = parse_statements(
            "INSERT INTO t VALUES (1); INSERT INTO t VALUES (2);; SELECT * FROM t",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn error_cases() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT * FROM").is_err());
        assert!(parse_statement("INSERT INTO t").is_err());
        assert!(parse_statement("UPDATE t WHERE a = 1").is_err());
        assert!(parse_statement("CREATE TABLE t ()").is_err());
        assert!(parse_statement("SELECT DISTINCT a FROM t").is_err());
        assert!(parse_statement("").is_err());
        assert!(parse_statement("SELECT 1; SELECT 2").is_err()); // one expected
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("(1").is_err());
    }

    #[test]
    fn negative_numbers_and_unary() {
        assert_eq!(
            parse_expression("-5").unwrap(),
            Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(Expr::Literal(Value::Int(5)))
            }
        );
        assert!(parse_expression("+7").unwrap() == Expr::Literal(Value::Int(7)));
    }
}
