//! SQL lexer: hand-written, position-tracking tokenizer.
//!
//! Identifiers and keywords are case-insensitive (lowercased); string
//! literals use single quotes with `''` escaping; `$n` produces parameter
//! tokens; `$$ ... $$` produces a dollar-quoted body token used by
//! `CREATE FUNCTION`.

use bcrdb_common::error::{Error, Result};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword (uppercased canonical form).
    Keyword(Keyword),
    /// Identifier (lowercased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped contents).
    Str(String),
    /// Positional parameter, 1-based as written (`$3` → `Param(3)`).
    Param(usize),
    /// Dollar-quoted body: everything between `$$` pairs, verbatim.
    DollarBody(String),
    /// Punctuation / operators.
    Symbol(Symbol),
}

/// SQL keywords the parser understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Asc,
    Desc,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Create,
    Drop,
    Table,
    Index,
    On,
    Join,
    Inner,
    As,
    And,
    Or,
    Not,
    Null,
    Is,
    In,
    Between,
    True,
    False,
    Primary,
    Key,
    Unique,
    If,
    Exists,
    Function,
    Replace,
    History,
    Distinct,
    Explain,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "select" => Select,
            "from" => From,
            "where" => Where,
            "group" => Group,
            "by" => By,
            "having" => Having,
            "order" => Order,
            "limit" => Limit,
            "asc" => Asc,
            "desc" => Desc,
            "insert" => Insert,
            "into" => Into,
            "values" => Values,
            "update" => Update,
            "set" => Set,
            "delete" => Delete,
            "create" => Create,
            "drop" => Drop,
            "table" => Table,
            "index" => Index,
            "on" => On,
            "join" => Join,
            "inner" => Inner,
            "as" => As,
            "and" => And,
            "or" => Or,
            "not" => Not,
            "null" => Null,
            "is" => Is,
            "in" => In,
            "between" => Between,
            "true" => True,
            "false" => False,
            "primary" => Primary,
            "key" => Key,
            "unique" => Unique,
            "if" => If,
            "exists" => Exists,
            "function" => Function,
            "replace" => Replace,
            "history" => History,
            "distinct" => Distinct,
            "explain" => Explain,
            _ => return None,
        })
    }
}

/// Punctuation and operator symbols.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Dot,
    Star,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Slash,
    Percent,
    Concat,
}

/// A token with its byte offset in the input (for error messages).
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of the token start.
    pub offset: usize,
}

/// Tokenize `input` into a vector of spanned tokens.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push_sym(&mut tokens, Symbol::LParen, start, &mut i),
            ')' => push_sym(&mut tokens, Symbol::RParen, start, &mut i),
            ',' => push_sym(&mut tokens, Symbol::Comma, start, &mut i),
            ';' => push_sym(&mut tokens, Symbol::Semicolon, start, &mut i),
            '.' => push_sym(&mut tokens, Symbol::Dot, start, &mut i),
            '*' => push_sym(&mut tokens, Symbol::Star, start, &mut i),
            '+' => push_sym(&mut tokens, Symbol::Plus, start, &mut i),
            '-' => push_sym(&mut tokens, Symbol::Minus, start, &mut i),
            '/' => push_sym(&mut tokens, Symbol::Slash, start, &mut i),
            '%' => push_sym(&mut tokens, Symbol::Percent, start, &mut i),
            '=' => push_sym(&mut tokens, Symbol::Eq, start, &mut i),
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(SpannedToken {
                        token: Token::Symbol(Symbol::Concat),
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(err_at(input, start, "single '|' is not an operator"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(SpannedToken {
                        token: Token::Symbol(Symbol::LtEq),
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(SpannedToken {
                        token: Token::Symbol(Symbol::NotEq),
                        offset: start,
                    });
                    i += 2;
                } else {
                    push_sym(&mut tokens, Symbol::Lt, start, &mut i);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(SpannedToken {
                        token: Token::Symbol(Symbol::GtEq),
                        offset: start,
                    });
                    i += 2;
                } else {
                    push_sym(&mut tokens, Symbol::Gt, start, &mut i);
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(SpannedToken {
                        token: Token::Symbol(Symbol::NotEq),
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(err_at(input, start, "unexpected '!'"));
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(SpannedToken {
                    token: Token::Str(s),
                    offset: start,
                });
                i = next;
            }
            '$' => {
                if bytes.get(i + 1) == Some(&b'$') {
                    // Dollar-quoted body: scan to the next `$$`.
                    let body_start = i + 2;
                    let rest = &input[body_start..];
                    match rest.find("$$") {
                        Some(end) => {
                            tokens.push(SpannedToken {
                                token: Token::DollarBody(rest[..end].to_string()),
                                offset: start,
                            });
                            i = body_start + end + 2;
                        }
                        None => return Err(err_at(input, start, "unterminated $$ body")),
                    }
                } else {
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                    if j == i + 1 {
                        return Err(err_at(input, start, "expected parameter number after '$'"));
                    }
                    let n: usize = input[i + 1..j]
                        .parse()
                        .map_err(|_| err_at(input, start, "parameter number too large"))?;
                    if n == 0 {
                        return Err(err_at(input, start, "parameters are 1-based ($1, $2, ...)"));
                    }
                    tokens.push(SpannedToken {
                        token: Token::Param(n),
                        offset: start,
                    });
                    i = j;
                }
            }
            '0'..='9' => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(SpannedToken {
                    token: tok,
                    offset: start,
                });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = input[i..j].to_ascii_lowercase();
                let token = match Keyword::from_str(&word) {
                    Some(kw) => Token::Keyword(kw),
                    None => Token::Ident(word),
                };
                tokens.push(SpannedToken {
                    token,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(err_at(
                    input,
                    start,
                    &format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    Ok(tokens)
}

fn push_sym(tokens: &mut Vec<SpannedToken>, s: Symbol, start: usize, i: &mut usize) {
    tokens.push(SpannedToken {
        token: Token::Symbol(s),
        offset: start,
    });
    *i += 1;
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Copy the full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(err_at(input, start, "unterminated string literal"))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    let token = if is_float {
        Token::Float(
            text.parse()
                .map_err(|_| err_at(input, start, "invalid float literal"))?,
        )
    } else {
        Token::Int(
            text.parse()
                .map_err(|_| err_at(input, start, "integer literal out of range"))?,
        )
    };
    Ok((token, i))
}

/// Build a parse error with line/column context.
pub fn err_at(input: &str, offset: usize, msg: &str) -> Error {
    let upto = &input[..offset.min(input.len())];
    let line = upto.matches('\n').count() + 1;
    let col = offset - upto.rfind('\n').map_or(0, |p| p + 1) + 1;
    Error::Parse(format!("{msg} at line {line}, column {col}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("SELECT select SeLeCt"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::Select)
            ]
        );
    }

    #[test]
    fn identifiers_lowercased() {
        assert_eq!(
            toks("Invoices MyCol"),
            vec![
                Token::Ident("invoices".into()),
                Token::Ident("mycol".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.25 1e3 2.5e-1"),
            vec![
                Token::Int(42),
                Token::Float(3.25),
                Token::Float(1000.0),
                Token::Float(0.25),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
        assert_eq!(toks("'héllo'"), vec![Token::Str("héllo".into())]);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn params_and_dollar_body() {
        assert_eq!(toks("$1 $23"), vec![Token::Param(1), Token::Param(23)]);
        assert_eq!(
            toks("$$ INSERT INTO t VALUES ($1) $$"),
            vec![Token::DollarBody(" INSERT INTO t VALUES ($1) ".into())]
        );
        assert!(tokenize("$0").is_err());
        assert!(tokenize("$").is_err());
        assert!(tokenize("$$ unterminated").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= <> != < <= > >= || + - * / %"),
            vec![
                Token::Symbol(Symbol::Eq),
                Token::Symbol(Symbol::NotEq),
                Token::Symbol(Symbol::NotEq),
                Token::Symbol(Symbol::Lt),
                Token::Symbol(Symbol::LtEq),
                Token::Symbol(Symbol::Gt),
                Token::Symbol(Symbol::GtEq),
                Token::Symbol(Symbol::Concat),
                Token::Symbol(Symbol::Plus),
                Token::Symbol(Symbol::Minus),
                Token::Symbol(Symbol::Star),
                Token::Symbol(Symbol::Slash),
                Token::Symbol(Symbol::Percent),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("select -- a comment\n 1"),
            vec![Token::Keyword(Keyword::Select), Token::Int(1)]
        );
    }

    #[test]
    fn error_positions() {
        let err = tokenize("select\n  @").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("column 3"), "{msg}");
    }
}
