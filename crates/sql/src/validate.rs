//! Static determinism validation for smart-contract bodies.
//!
//! The paper requires contracts to be deterministic when re-executed
//! independently on every node (§2 enhancement 1). PostgreSQL's PL/pgSQL is
//! not deterministic by default, so the authors *restrict* it (§4.3); we
//! enforce the same restrictions statically at `CREATE FUNCTION` time and
//! again at invocation:
//!
//! 1. no date/time, random, sequence or system-information functions;
//! 2. `SELECT ... LIMIT` requires `ORDER BY` (the paper requires ordering by
//!    the primary key; we require an explicit ORDER BY, which the engine
//!    evaluates deterministically);
//! 3. row-header columns (`xmin`, `xmax`, `_creator_block`,
//!    `_deleter_block`, `_row_id`) may not be referenced by contracts —
//!    they are reserved for provenance queries;
//! 4. optionally (EO flow): no blind `UPDATE`/`DELETE` without `WHERE`
//!    (§3.4.3) and no `SELECT *` whole-table scans inside contracts (§4.3).

use bcrdb_common::error::{Error, Result};

use crate::ast::{Expr, InsertSource, SelectStmt, Statement};

/// Functions whose results depend on wall-clock time, randomness or node-
/// local state. Mirrors the restricted list of §4.3.
const NON_DETERMINISTIC_FUNCTIONS: &[&str] = &[
    // date/time
    "now",
    "current_timestamp",
    "current_date",
    "current_time",
    "timeofday",
    "clock_timestamp",
    "statement_timestamp",
    "transaction_timestamp",
    "age",
    "localtime",
    // randomness
    "random",
    "setseed",
    "gen_random_uuid",
    "uuid_generate_v4",
    // sequences
    "nextval",
    "currval",
    "setval",
    "lastval",
    // system information
    "version",
    "current_user",
    "session_user",
    "current_database",
    "pg_backend_pid",
    "inet_client_addr",
    "txid_current",
    "pg_sleep",
];

/// Row-header / system columns reserved for provenance queries (§4.2);
/// forbidden inside contracts (§4.3: "cannot use row headers such as xmin,
/// xmax in WHERE clause").
pub const SYSTEM_COLUMNS: &[&str] = &[
    "xmin",
    "xmax",
    "_creator_block",
    "_deleter_block",
    "_row_id",
    "_committed",
];

/// Which rule set to apply. The EO flow adds restrictions beyond those
/// required by OE (blind updates would acquire ww locks on only a subset of
/// nodes, §3.4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeterminismRules {
    /// Reject `UPDATE`/`DELETE` without a `WHERE` clause.
    pub forbid_blind_writes: bool,
    /// Reject `SELECT *`-style whole-table reads inside contracts
    /// (the paper routes all predicate reads through indexes in EO).
    pub forbid_unfiltered_select: bool,
}

impl DeterminismRules {
    /// Rules for the order-then-execute flow.
    pub fn order_then_execute() -> DeterminismRules {
        DeterminismRules {
            forbid_blind_writes: false,
            forbid_unfiltered_select: false,
        }
    }

    /// Rules for the execute-order-in-parallel flow.
    pub fn execute_order_parallel() -> DeterminismRules {
        DeterminismRules {
            forbid_blind_writes: true,
            forbid_unfiltered_select: true,
        }
    }
}

/// Validate one statement against the determinism rules.
pub fn validate_statement(stmt: &Statement, rules: &DeterminismRules) -> Result<()> {
    // Rule 1 and 3: walk all expressions once.
    let mut violation: Option<Error> = None;
    stmt.walk_exprs(&mut |e| {
        if violation.is_some() {
            return;
        }
        match e {
            Expr::Function { name, .. } if NON_DETERMINISTIC_FUNCTIONS.contains(&name.as_str()) => {
                violation = Some(Error::Determinism(format!(
                    "function {name}() is non-deterministic and forbidden in contracts"
                )));
            }
            Expr::Column { name, .. } if SYSTEM_COLUMNS.contains(&name.as_str()) => {
                violation = Some(Error::Determinism(format!(
                    "system column {name} may only be used in provenance queries"
                )));
            }
            _ => {}
        }
    });
    if let Some(err) = violation {
        return Err(err);
    }

    match stmt {
        Statement::Select(sel) => validate_select(sel, rules)?,
        Statement::Explain(inner) => validate_statement(inner, rules)?,
        Statement::Insert {
            source: InsertSource::Select(sel),
            ..
        } => {
            validate_select(sel, rules)?;
        }
        Statement::Update { predicate, .. } if rules.forbid_blind_writes && predicate.is_none() => {
            return Err(Error::Determinism(
                "blind UPDATE without WHERE is not supported in the \
                     execute-order-in-parallel flow (§3.4.3)"
                    .into(),
            ));
        }
        Statement::Delete { predicate, .. } if rules.forbid_blind_writes && predicate.is_none() => {
            return Err(Error::Determinism(
                "blind DELETE without WHERE is not supported in the \
                     execute-order-in-parallel flow (§3.4.3)"
                    .into(),
            ));
        }
        Statement::CreateFunction(def) => {
            for s in &def.body {
                validate_statement(s, rules)?;
            }
        }
        _ => {}
    }
    Ok(())
}

fn validate_select(sel: &SelectStmt, rules: &DeterminismRules) -> Result<()> {
    // Rule 2: LIMIT requires ORDER BY.
    if sel.limit.is_some() && sel.order_by.is_empty() {
        return Err(Error::Determinism(
            "SELECT with LIMIT must specify ORDER BY (§4.3)".into(),
        ));
    }
    // HISTORY() scans are provenance-only, never inside contracts.
    if let Some(from) = &sel.from {
        if from.base.history || from.joins.iter().any(|j| j.table.history) {
            return Err(Error::Determinism(
                "HISTORY() provenance scans are not allowed inside contracts".into(),
            ));
        }
        if rules.forbid_unfiltered_select
            && sel.predicate.is_none()
            && from.joins.is_empty()
            && sel.group_by.is_empty()
        {
            return Err(Error::Determinism(
                "unfiltered whole-table SELECT inside a contract is not allowed \
                 in the execute-order-in-parallel flow (§4.3)"
                    .into(),
            ));
        }
    }
    Ok(())
}

/// Validate a whole contract body (used at `CREATE FUNCTION` deploy time).
pub fn validate_contract_body(body: &[Statement], rules: &DeterminismRules) -> Result<()> {
    for stmt in body {
        // Contracts may not contain nested contract definitions.
        if matches!(
            stmt,
            Statement::CreateFunction(_) | Statement::DropFunction { .. }
        ) {
            return Err(Error::Determinism(
                "contracts may not define or drop other contracts".into(),
            ));
        }
        validate_statement(stmt, rules)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_statement, parse_statements};

    fn oe() -> DeterminismRules {
        DeterminismRules::order_then_execute()
    }

    fn eo() -> DeterminismRules {
        DeterminismRules::execute_order_parallel()
    }

    #[test]
    fn rejects_nondeterministic_functions() {
        for sql in [
            "SELECT now()",
            "INSERT INTO t VALUES (random())",
            "UPDATE t SET a = nextval('s') WHERE id = 1",
            "SELECT * FROM t WHERE ts > current_timestamp()",
        ] {
            let stmt = parse_statement(sql).unwrap();
            let err = validate_statement(&stmt, &oe()).unwrap_err();
            assert!(matches!(err, Error::Determinism(_)), "{sql}");
        }
    }

    #[test]
    fn rejects_system_columns_in_contracts() {
        let stmt = parse_statement("SELECT * FROM t WHERE xmax = 5").unwrap();
        assert!(validate_statement(&stmt, &oe()).is_err());
        let stmt = parse_statement("SELECT _creator_block FROM t WHERE id = 1").unwrap();
        assert!(validate_statement(&stmt, &oe()).is_err());
    }

    #[test]
    fn limit_requires_order_by() {
        let bad = parse_statement("SELECT a FROM t WHERE a > 0 LIMIT 5").unwrap();
        assert!(validate_statement(&bad, &oe()).is_err());
        let good = parse_statement("SELECT a FROM t WHERE a > 0 ORDER BY a LIMIT 5").unwrap();
        assert!(validate_statement(&good, &oe()).is_ok());
    }

    #[test]
    fn blind_writes_flow_dependent() {
        let upd = parse_statement("UPDATE t SET a = 1").unwrap();
        assert!(validate_statement(&upd, &oe()).is_ok());
        assert!(validate_statement(&upd, &eo()).is_err());
        let del = parse_statement("DELETE FROM t").unwrap();
        assert!(validate_statement(&del, &oe()).is_ok());
        assert!(validate_statement(&del, &eo()).is_err());
    }

    #[test]
    fn unfiltered_select_flow_dependent() {
        let sel = parse_statement("SELECT * FROM t").unwrap();
        assert!(validate_statement(&sel, &oe()).is_ok());
        assert!(validate_statement(&sel, &eo()).is_err());
        // Aggregations over the whole table are allowed (they are
        // deterministic regardless of scan order).
        let agg = parse_statement("SELECT count(*) FROM t GROUP BY a").unwrap();
        assert!(validate_statement(&agg, &eo()).is_ok());
    }

    #[test]
    fn history_scans_forbidden_in_contracts() {
        let sel = parse_statement("SELECT * FROM HISTORY(t) WHERE id = 1").unwrap();
        assert!(validate_statement(&sel, &oe()).is_err());
        assert!(validate_statement(&sel, &eo()).is_err());
    }

    #[test]
    fn contract_body_validation() {
        let body = parse_statements("INSERT INTO t VALUES ($1); UPDATE t SET a = $2 WHERE id = $1")
            .unwrap();
        assert!(validate_contract_body(&body, &eo()).is_ok());

        let nested = parse_statements("DROP FUNCTION foo").unwrap();
        assert!(validate_contract_body(&nested, &oe()).is_err());

        let nondet = parse_statements("INSERT INTO t VALUES (now())").unwrap();
        assert!(validate_contract_body(&nondet, &oe()).is_err());
    }

    #[test]
    fn deep_nesting_is_checked() {
        // Non-determinism hidden inside an expression tree.
        let stmt = parse_statement("SELECT a FROM t WHERE a > 1 + abs(random())").unwrap();
        assert!(validate_statement(&stmt, &oe()).is_err());
        // ... and inside INSERT..SELECT.
        let stmt = parse_statement("INSERT INTO t SELECT random() FROM u WHERE u.a = 1").unwrap();
        assert!(validate_statement(&stmt, &oe()).is_err());
    }
}
