//! End-to-end tests of the SQL executor against the MVCC storage engine,
//! including the three query shapes of the paper's evaluation contracts
//! (simple insert, complex join+aggregate, group-by/order-by/limit).

use std::sync::Arc;

use bcrdb_common::error::Error;
use bcrdb_common::value::Value;
use bcrdb_engine::exec::{apply_catalog_op, Executor, StatementEffect};
use bcrdb_engine::procedures::ContractRegistry;
use bcrdb_engine::result::QueryResult;
use bcrdb_sql::parse_statement;
use bcrdb_storage::catalog::Catalog;
use bcrdb_storage::snapshot::ScanMode;
use bcrdb_txn::context::TxnCtx;
use bcrdb_txn::ssi::{Flow, SsiManager};

struct Db {
    mgr: Arc<SsiManager>,
    catalog: Catalog,
    contracts: ContractRegistry,
    certs: Arc<bcrdb_crypto::identity::CertificateRegistry>,
    height: u64,
    commit_pos: u32,
}

impl Db {
    fn new() -> Db {
        Db {
            mgr: Arc::new(SsiManager::new()),
            catalog: Catalog::new(),
            contracts: ContractRegistry::new(),
            certs: bcrdb_crypto::identity::CertificateRegistry::new(),
            height: 0,
            commit_pos: 0,
        }
    }

    /// Run statements in one transaction and commit it as its own block.
    fn run(&mut self, sql: &str) -> Vec<StatementEffect> {
        self.run_with(sql, &[])
    }

    fn run_with(&mut self, sql: &str, params: &[Value]) -> Vec<StatementEffect> {
        self.try_run(sql, params).expect("statement should succeed")
    }

    fn try_run(&mut self, sql: &str, params: &[Value]) -> Result<Vec<StatementEffect>, Error> {
        let ctx = TxnCtx::begin(&self.mgr, self.height, ScanMode::Relaxed);
        let stmts = bcrdb_sql::parse_statements(sql)?;
        let exec = Executor::new(&self.catalog, &ctx, params);
        let mut effects = Vec::new();
        for s in &stmts {
            match exec.execute(s) {
                Ok(e) => effects.push(e),
                Err(e) => {
                    ctx.rollback();
                    return Err(e);
                }
            }
        }
        let block = self.height + 1;
        let outcome = ctx.apply_commit(block, self.commit_pos, Flow::OrderThenExecute);
        self.commit_pos += 1;
        if !outcome.is_committed() {
            panic!("commit unexpectedly failed: {outcome:?}");
        }
        self.height = block;
        // Apply deferred DDL at the commit point, like the block processor.
        for e in &effects {
            if let StatementEffect::Catalog(op) = e {
                apply_catalog_op(&self.catalog, &self.contracts, &self.certs, op).unwrap();
            }
        }
        Ok(effects)
    }

    /// Read-only query at the current height.
    fn query(&self, sql: &str) -> QueryResult {
        self.query_with(sql, &[])
    }

    fn query_with(&self, sql: &str, params: &[Value]) -> QueryResult {
        let ctx = TxnCtx::read_only(&self.mgr, self.height);
        let stmt = parse_statement(sql).unwrap();
        let exec = Executor::new(&self.catalog, &ctx, params);
        match exec.execute(&stmt).unwrap() {
            StatementEffect::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }
}

fn ints(r: &QueryResult) -> Vec<Vec<i64>> {
    r.rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Int(i) => *i,
                    Value::Float(f) => *f as i64,
                    other => panic!("not numeric: {other:?}"),
                })
                .collect()
        })
        .collect()
}

fn seed_invoices(db: &mut Db) {
    db.run("CREATE TABLE suppliers (id INT PRIMARY KEY, name TEXT NOT NULL, region TEXT NOT NULL)");
    db.run(
        "CREATE TABLE invoices (id INT PRIMARY KEY, supplier_id INT NOT NULL, amount FLOAT NOT NULL)",
    );
    db.run("CREATE INDEX idx_inv_supplier ON invoices (supplier_id)");
    db.run(
        "INSERT INTO suppliers VALUES (1, 'acme', 'emea'), (2, 'globex', 'apac'), (3, 'initech', 'emea')",
    );
    db.run(
        "INSERT INTO invoices VALUES \
           (10, 1, 100.0), (11, 1, 50.0), (12, 2, 75.0), (13, 2, 25.0), (14, 3, 200.0)",
    );
}

#[test]
fn create_insert_select_roundtrip() {
    let mut db = Db::new();
    db.run("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)");
    db.run("INSERT INTO t VALUES (2, 'b'), (1, 'a')");
    let r = db.query("SELECT id, name FROM t");
    // No ORDER BY: deterministic row-id order (insertion order here).
    assert_eq!(r.columns, vec!["id", "name"]);
    assert_eq!(r.rows.len(), 2);
    let r = db.query("SELECT id FROM t ORDER BY id");
    assert_eq!(ints(&r), vec![vec![1], vec![2]]);
}

#[test]
fn insert_with_column_list_fills_nulls() {
    let mut db = Db::new();
    db.run("CREATE TABLE t (id INT PRIMARY KEY, a TEXT, b INT)");
    db.run("INSERT INTO t (id, b) VALUES (1, 42)");
    let r = db.query("SELECT a, b FROM t WHERE id = 1");
    assert_eq!(r.rows[0][0], Value::Null);
    assert_eq!(r.rows[0][1], Value::Int(42));
    // Arity mismatch is an error.
    assert!(db.try_run("INSERT INTO t (id, b) VALUES (2)", &[]).is_err());
    // NOT NULL violation is an error.
    db.run("CREATE TABLE u (id INT PRIMARY KEY, req TEXT NOT NULL)");
    assert!(db.try_run("INSERT INTO u (id) VALUES (1)", &[]).is_err());
}

#[test]
fn where_filtering_and_index_paths() {
    let mut db = Db::new();
    seed_invoices(&mut db);
    // Point lookup on the PK index.
    let r = db.query("SELECT amount FROM invoices WHERE id = 12");
    assert_eq!(r.rows, vec![vec![Value::Float(75.0)]]);
    // Range on PK.
    let r = db.query("SELECT id FROM invoices WHERE id BETWEEN 11 AND 13 ORDER BY id");
    assert_eq!(ints(&r), vec![vec![11], vec![12], vec![13]]);
    // Secondary index equality.
    let r = db.query("SELECT id FROM invoices WHERE supplier_id = 2 ORDER BY id");
    assert_eq!(ints(&r), vec![vec![12], vec![13]]);
    // Residual predicate on top of the index.
    let r = db.query("SELECT id FROM invoices WHERE supplier_id = 1 AND amount > 60 ORDER BY id");
    assert_eq!(ints(&r), vec![vec![10]]);
    // Unindexed predicate → full scan still correct (relaxed mode).
    let r = db.query("SELECT id FROM invoices WHERE amount < 60 ORDER BY id");
    assert_eq!(ints(&r), vec![vec![11], vec![13]]);
}

#[test]
fn parameters_flow_through() {
    let mut db = Db::new();
    seed_invoices(&mut db);
    let r = db.query_with(
        "SELECT id FROM invoices WHERE supplier_id = $1 AND amount >= $2 ORDER BY id",
        &[Value::Int(1), Value::Float(60.0)],
    );
    assert_eq!(ints(&r), vec![vec![10]]);
}

#[test]
fn join_inner_and_comma_styles() {
    let mut db = Db::new();
    seed_invoices(&mut db);
    let r = db.query(
        "SELECT s.name, i.amount FROM invoices i JOIN suppliers s ON i.supplier_id = s.id \
         WHERE s.region = 'emea' ORDER BY i.amount DESC",
    );
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0][0], Value::Text("initech".into()));
    assert_eq!(r.rows[0][1], Value::Float(200.0));

    // Comma join with the condition in WHERE (Table 3 style).
    let r2 = db.query(
        "SELECT s.name, i.amount FROM invoices i, suppliers s \
         WHERE i.supplier_id = s.id AND s.region = 'emea' ORDER BY i.amount DESC",
    );
    assert_eq!(r.rows, r2.rows);
}

#[test]
fn complex_join_aggregate_into_third_table() {
    // The shape of the paper's complex-join contract: aggregate a join and
    // write the result to another table.
    let mut db = Db::new();
    seed_invoices(&mut db);
    db.run("CREATE TABLE region_totals (region TEXT PRIMARY KEY, total FLOAT)");
    db.run(
        "INSERT INTO region_totals \
         SELECT s.region, SUM(i.amount) FROM invoices i JOIN suppliers s \
         ON i.supplier_id = s.id GROUP BY s.region",
    );
    let r = db.query("SELECT region, total FROM region_totals ORDER BY region");
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::Text("apac".into()));
    assert_eq!(r.rows[0][1], Value::Float(100.0));
    assert_eq!(r.rows[1][0], Value::Text("emea".into()));
    assert_eq!(r.rows[1][1], Value::Float(350.0));
}

#[test]
fn group_by_having_order_limit() {
    // The shape of the complex-group contract: aggregates over subgroups,
    // ORDER BY + LIMIT picking the max.
    let mut db = Db::new();
    seed_invoices(&mut db);
    let r = db.query(
        "SELECT supplier_id, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean, \
                MIN(amount) AS lo, MAX(amount) AS hi \
         FROM invoices GROUP BY supplier_id \
         HAVING COUNT(*) > 1 ORDER BY total DESC LIMIT 1",
    );
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(1));
    assert_eq!(r.rows[0][1], Value::Int(2));
    assert_eq!(r.rows[0][2], Value::Float(150.0));
    assert_eq!(r.rows[0][3], Value::Float(75.0));
    assert_eq!(r.rows[0][4], Value::Float(50.0));
    assert_eq!(r.rows[0][5], Value::Float(100.0));
}

#[test]
fn aggregates_over_empty_and_whole_table() {
    let mut db = Db::new();
    db.run("CREATE TABLE t (id INT PRIMARY KEY, x INT)");
    let r = db.query("SELECT COUNT(*), SUM(x), AVG(x), MIN(x) FROM t");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert_eq!(r.rows[0][1], Value::Null);
    assert_eq!(r.rows[0][2], Value::Null);
    assert_eq!(r.rows[0][3], Value::Null);

    db.run("INSERT INTO t VALUES (1, 5), (2, NULL), (3, 7)");
    let r = db.query("SELECT COUNT(*), COUNT(x), SUM(x) FROM t");
    assert_eq!(r.rows[0][0], Value::Int(3));
    assert_eq!(r.rows[0][1], Value::Int(2), "COUNT(expr) skips NULLs");
    assert_eq!(r.rows[0][2], Value::Int(12));
    // Arithmetic over aggregates.
    let r = db.query("SELECT SUM(x) * 2 + COUNT(*) FROM t");
    assert_eq!(r.rows[0][0], Value::Int(27));
}

#[test]
fn update_and_delete_with_predicates() {
    let mut db = Db::new();
    seed_invoices(&mut db);
    let effects = db.run("UPDATE invoices SET amount = amount + 10 WHERE supplier_id = 1");
    match &effects[0] {
        StatementEffect::Count(n) => assert_eq!(*n, 2),
        other => panic!("expected count, got {other:?}"),
    }
    let r = db.query("SELECT amount FROM invoices WHERE id = 10");
    assert_eq!(r.rows[0][0], Value::Float(110.0));

    let effects = db.run("DELETE FROM invoices WHERE amount < 40");
    match &effects[0] {
        StatementEffect::Count(n) => assert_eq!(*n, 1), // id 13 (25.0)
        other => panic!("expected count, got {other:?}"),
    }
    let r = db.query("SELECT COUNT(*) FROM invoices");
    assert_eq!(r.rows[0][0], Value::Int(4));
}

#[test]
fn select_without_from_and_scalar_math() {
    let db = Db::new();
    let r = db.query("SELECT 1 + 2 * 3 AS x, 'a' || 'b' AS s");
    assert_eq!(r.columns, vec!["x", "s"]);
    assert_eq!(r.rows, vec![vec![Value::Int(7), Value::Text("ab".into())]]);
}

#[test]
fn order_by_alias_and_multiple_keys() {
    let mut db = Db::new();
    seed_invoices(&mut db);
    let r =
        db.query("SELECT supplier_id AS sid, amount FROM invoices ORDER BY sid DESC, amount ASC");
    assert_eq!(r.rows[0][0], Value::Int(3));
    assert_eq!(r.rows[1], vec![Value::Int(2), Value::Float(25.0)]);
    assert_eq!(r.rows[2], vec![Value::Int(2), Value::Float(75.0)]);
}

#[test]
fn wildcard_projections() {
    let mut db = Db::new();
    seed_invoices(&mut db);
    let r = db.query("SELECT * FROM suppliers ORDER BY id LIMIT 1");
    assert_eq!(r.columns, vec!["id", "name", "region"]);
    let r = db.query(
        "SELECT i.*, s.name FROM invoices i JOIN suppliers s ON i.supplier_id = s.id \
         WHERE i.id = 10",
    );
    assert_eq!(r.columns, vec!["id", "supplier_id", "amount", "name"]);
    assert_eq!(r.rows[0][3], Value::Text("acme".into()));
}

#[test]
fn ddl_is_deferred_to_commit() {
    let mut db = Db::new();
    // Within run(), the CatalogOp is applied after commit, so the table
    // becomes queryable afterwards.
    let effects = db.run("CREATE TABLE t (id INT PRIMARY KEY)");
    assert!(matches!(effects[0], StatementEffect::Catalog(_)));
    assert!(db.catalog.get("t").is_ok());
    db.run("DROP TABLE t");
    assert!(db.catalog.get("t").is_err());
    // DROP of a missing table fails at apply; IF EXISTS succeeds.
    db.run("DROP TABLE IF EXISTS t");
}

#[test]
fn snapshot_reads_are_stable_under_concurrent_commits() {
    let mut db = Db::new();
    db.run("CREATE TABLE t (id INT PRIMARY KEY, x INT)");
    db.run("INSERT INTO t VALUES (1, 10)");
    let h1 = db.height;
    db.run("UPDATE t SET x = 20 WHERE id = 1");

    // A reader pinned at the old height sees the old value.
    let ctx = TxnCtx::read_only(&db.mgr, h1);
    let exec = Executor::new(&db.catalog, &ctx, &[]);
    let r = match exec
        .execute(&parse_statement("SELECT x FROM t WHERE id = 1").unwrap())
        .unwrap()
    {
        StatementEffect::Rows(r) => r,
        other => panic!("{other:?}"),
    };
    assert_eq!(r.rows[0][0], Value::Int(10));
    // Current height sees the new value.
    assert_eq!(
        db.query("SELECT x FROM t WHERE id = 1").rows[0][0],
        Value::Int(20)
    );
}

#[test]
fn error_paths_surface_cleanly() {
    let mut db = Db::new();
    db.run("CREATE TABLE t (id INT PRIMARY KEY, x INT)");
    db.run("INSERT INTO t VALUES (1, 0)");
    assert!(matches!(
        db.try_run("SELECT * FROM missing", &[]),
        Err(Error::NotFound(_))
    ));
    // Column resolution is evaluated per-row, so a populated table is
    // needed for the error to surface.
    assert!(matches!(
        db.try_run("SELECT zzz FROM t", &[]),
        Err(Error::Analysis(_))
    ));
    assert!(matches!(
        db.try_run("INSERT INTO t VALUES (9, 'not an int')", &[]),
        Err(Error::Constraint(_))
    ));
    assert!(matches!(
        db.try_run("UPDATE t SET zzz = 1 WHERE id = 1", &[]),
        Err(Error::Analysis(_))
    ));
    assert!(matches!(
        db.try_run("SELECT * FROM t GROUP BY id", &[]),
        Err(Error::Analysis(_)),
    ));
    // Division by zero inside a query is a type error.
    assert!(matches!(
        db.try_run("SELECT 1 / x FROM t WHERE id = 1", &[]),
        Err(Error::Type(_))
    ));
}

#[test]
fn history_provenance_via_executor() {
    let mut db = Db::new();
    db.run("CREATE TABLE inv (id INT PRIMARY KEY, amt INT)");
    db.run("INSERT INTO inv VALUES (1, 100)");
    db.run("UPDATE inv SET amt = 150 WHERE id = 1");
    db.run("UPDATE inv SET amt = 175 WHERE id = 1");

    // All three versions visible through HISTORY, oldest first.
    let r = db.query(
        "SELECT h.amt, h._creator_block, h._deleter_block FROM HISTORY(inv) h \
         WHERE h.id = 1 ORDER BY h._creator_block",
    );
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0][0], Value::Int(100));
    assert_eq!(r.rows[2][0], Value::Int(175));
    assert_eq!(r.rows[2][2], Value::Null, "live version has no deleter");

    // Historical filter: versions live at block 2.
    let r = db.query(
        "SELECT h.amt FROM HISTORY(inv) h WHERE h._creator_block <= 2 AND \
         (h._deleter_block IS NULL OR h._deleter_block > 2) ORDER BY h.amt",
    );
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(100));
}

#[test]
fn contract_invocation_through_registry() {
    let mut db = Db::new();
    db.run("CREATE TABLE accounts (id INT PRIMARY KEY, balance FLOAT NOT NULL)");
    db.run(
        "CREATE FUNCTION transfer(src INT, dst INT, amt FLOAT) AS $$ \
           UPDATE accounts SET balance = balance - $3 WHERE id = $1; \
           UPDATE accounts SET balance = balance + $3 WHERE id = $2 \
         $$",
    );
    db.run("INSERT INTO accounts VALUES (1, 100.0), (2, 50.0)");

    let ctx = TxnCtx::begin(&db.mgr, db.height, ScanMode::Relaxed);
    let inv = bcrdb_engine::procedures::Invocation::new(
        "transfer",
        vec![Value::Int(1), Value::Int(2), Value::Float(30.0)],
    );
    db.contracts.invoke(&db.catalog, &ctx, &inv).unwrap();
    assert!(ctx
        .apply_commit(db.height + 1, 99, Flow::OrderThenExecute)
        .is_committed());
    db.height += 1;

    let r = db.query("SELECT balance FROM accounts ORDER BY id");
    assert_eq!(r.rows[0][0], Value::Float(70.0));
    assert_eq!(r.rows[1][0], Value::Float(80.0));
}

// ------------------------------------------------------ EXPLAIN goldens
//
// Golden plan snapshots: the full EXPLAIN text for the planner's
// signature shapes, with exact statistics sealed the way the node's
// commit-thread fold would. The estimates are pure functions of the
// sealed stats, so these strings are byte-identical on every replica —
// which is the whole determinism story (the chosen ranges double as SSI
// predicate locks).

impl Db {
    /// Seal exact planner statistics for every table at the current
    /// height, standing in for the node's commit-time fold.
    fn analyze(&self) {
        for name in self.catalog.table_names() {
            if let Ok(t) = self.catalog.get(&name) {
                t.rebuild_stats(self.height);
            }
        }
    }

    /// EXPLAIN output lines for a statement.
    fn explain(&self, sql: &str) -> Vec<String> {
        let r = self.query(&format!("EXPLAIN {sql}"));
        assert_eq!(r.columns, vec!["plan".to_string()]);
        r.rows
            .iter()
            .map(|row| match &row[0] {
                Value::Text(s) => s.clone(),
                other => panic!("plan line is not text: {other:?}"),
            })
            .collect()
    }
}

/// 200 rows: `a` cycles over 20 values (10 rows each), `b` over 10
/// values (20 rows each) — big enough that index plans beat the
/// 200-row sequential scan.
fn seed_items(db: &mut Db) {
    db.run("CREATE TABLE items (id INT PRIMARY KEY, a INT NOT NULL, b INT NOT NULL)");
    db.run("CREATE INDEX idx_items_a ON items (a)");
    db.run("CREATE INDEX idx_items_b ON items (b)");
    for chunk in 0..10 {
        let rows: Vec<String> = (0..20)
            .map(|j| {
                let i = chunk * 20 + j;
                format!("({i}, {}, {})", i % 20, i / 20)
            })
            .collect();
        db.run(&format!("INSERT INTO items VALUES {}", rows.join(", ")));
    }
}

#[test]
fn explain_index_union_golden() {
    let mut db = Db::new();
    seed_items(&mut db);
    db.analyze();
    let before = db.catalog.plans_multi_index();
    // `id = 10 OR id = 150` used to full-scan; the planner now probes
    // the primary index once per disjunct and unions the row ids.
    assert_eq!(
        db.explain("SELECT id FROM items WHERE id = 10 OR id = 150"),
        vec![
            "Project (rows=2)",
            "  Filter (rows=2)",
            "    IndexUnion items [id = 10 OR id = 150] (est=2 actual=2)",
        ],
    );
    assert_eq!(db.catalog.plans_multi_index(), before + 1);
}

#[test]
fn explain_covering_aggregate_golden() {
    let mut db = Db::new();
    seed_invoices(&mut db);
    db.analyze();
    let before = db.catalog.plans_covering();
    assert_eq!(
        db.explain("SELECT COUNT(supplier_id) FROM invoices WHERE supplier_id = 1"),
        vec![
            "Aggregate (rows=1)",
            "  Filter (rows=2)",
            "    CoveringIndexScan invoices [supplier_id = 1] (est=2 actual=2)",
        ],
    );
    assert_eq!(db.catalog.plans_covering(), before + 1);
}

#[test]
fn explain_sort_merge_join_golden() {
    let mut db = Db::new();
    seed_invoices(&mut db);
    db.analyze();
    // ORDER BY on the join key credits the sort-merge plan with the
    // output sort it gets for free.
    assert_eq!(
        db.explain(
            "SELECT s.name, i.amount FROM invoices i JOIN suppliers s \
             ON i.supplier_id = s.id ORDER BY i.supplier_id",
        ),
        vec![
            "Sort (rows=5)",
            "  Project (rows=5)",
            "    SortMergeJoin s [id] (est=5 actual=5)",
            "      SeqScan i (est=5 actual=5)",
            "      SeqScan s (rows=3)",
        ],
    );
}

#[test]
fn explain_index_intersection_golden() {
    let mut db = Db::new();
    // Each conjunct alone leaves enough rows that probing both indexes
    // and intersecting row ids is cheaper than faulting the heap behind
    // either one.
    seed_items(&mut db);
    db.analyze();
    assert_eq!(
        db.explain("SELECT id FROM items WHERE a = 1 AND b = 2"),
        vec![
            "Project (rows=1)",
            "  Filter (rows=1)",
            "    IndexIntersect items [a = 1 AND b = 2] (est=1 actual=1)",
        ],
    );
}

#[test]
fn explain_estimates_track_sealed_stats_not_live_rows() {
    let mut db = Db::new();
    seed_invoices(&mut db);
    db.analyze();
    let with_stats = db.explain("SELECT amount FROM invoices WHERE supplier_id = 2");
    assert_eq!(
        with_stats,
        vec![
            "Project (rows=2)",
            "  Filter (rows=2)",
            "    IndexScan invoices [supplier_id = 2] (est=2 actual=2)",
        ],
    );
    // Without any sealed summary the planner falls back to the default
    // selectivities — still deterministic, just coarser.
    let mut fresh = Db::new();
    seed_invoices(&mut fresh);
    let no_stats = fresh.explain("SELECT amount FROM invoices WHERE supplier_id = 2");
    assert_eq!(no_stats.len(), 3);
    assert!(no_stats[2].contains("IndexScan invoices [supplier_id = 2]"));
}
