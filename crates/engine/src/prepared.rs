//! Prepared read-only statements: parse (and shape-check) once, execute
//! many times with fresh parameters.
//!
//! The paper's client interface is PostgreSQL's wire protocol, where
//! `PREPARE`/`EXECUTE` amortizes parsing and planning across invocations
//! — a real hot-path win for the repeated analytical queries of the
//! Fig. 5–7 evaluation workloads. This module is the engine half of that
//! feature: a [`PreparedQuery`] owns the parsed AST, and the node layer
//! keeps a cache keyed by SQL text so every session sharing a statement
//! shares one parse.

use std::sync::Arc;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::value::Value;
use bcrdb_sql::ast::{Expr, Statement};
use bcrdb_storage::catalog::Catalog;
use bcrdb_txn::context::TxnCtx;

use crate::exec::{Executor, StatementEffect};
use crate::result::QueryResult;

/// A parsed, validated, reusable read-only statement.
///
/// Only `SELECT` (including provenance `HISTORY()` scans) can be
/// prepared: writes must travel as signed blockchain transactions, so a
/// prepared write would subvert the ledger (§3.7).
#[derive(Debug)]
pub struct PreparedQuery {
    sql: String,
    stmt: Statement,
    param_count: usize,
}

impl PreparedQuery {
    /// Parse and shape-check `sql`. Errors on anything but a single
    /// SELECT (or EXPLAIN SELECT) statement.
    pub fn parse(sql: &str) -> Result<Arc<PreparedQuery>> {
        let stmt = bcrdb_sql::parse_statement(sql)?;
        if !matches!(stmt, Statement::Select(_) | Statement::Explain(_)) {
            return Err(Error::Analysis(
                "only SELECT statements can be prepared; writes must go through \
                 smart-contract transactions (§3.7)"
                    .into(),
            ));
        }
        let mut max_param = 0usize;
        stmt.walk_exprs(&mut |e| {
            if let Expr::Param(i) = e {
                // `$1` parses as Param(0); track the 1-based count.
                max_param = max_param.max(i + 1);
            }
        });
        Ok(Arc::new(PreparedQuery {
            sql: sql.to_string(),
            stmt,
            param_count: max_param,
        }))
    }

    /// The original SQL text (the node's statement-cache key).
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Number of `$n` parameters the statement expects.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The parsed statement.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }

    /// Execute against `catalog` through the transaction context `ctx`
    /// with fresh `params` — no re-parse, no re-validation.
    pub fn execute(
        &self,
        catalog: &Catalog,
        ctx: &TxnCtx,
        params: &[Value],
    ) -> Result<QueryResult> {
        if params.len() != self.param_count {
            // Exact match, like libpq: surplus parameters almost always
            // mean the SQL and the bind sites drifted apart.
            return Err(Error::Analysis(format!(
                "prepared statement expects {} parameters, got {}",
                self.param_count,
                params.len()
            )));
        }
        let exec = Executor::new(catalog, ctx, params);
        match exec.execute(&self.stmt)? {
            StatementEffect::Rows(r) => Ok(r),
            _ => Err(Error::internal("prepared SELECT produced a non-row effect")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_selects_prepare() {
        assert!(PreparedQuery::parse("SELECT 1").is_ok());
        assert!(PreparedQuery::parse("SELECT a FROM t WHERE b = $1").is_ok());
        assert!(PreparedQuery::parse("EXPLAIN SELECT a FROM t WHERE b = $1").is_ok());
        assert!(PreparedQuery::parse("DELETE FROM t").is_err());
        assert!(PreparedQuery::parse("CREATE TABLE t (a INT PRIMARY KEY)").is_err());
        assert!(PreparedQuery::parse("nonsense").is_err());
    }

    #[test]
    fn param_count_is_max_placeholder() {
        let q = PreparedQuery::parse("SELECT a FROM t WHERE b = $2 AND c = $1").unwrap();
        assert_eq!(q.param_count(), 2);
        let q = PreparedQuery::parse("SELECT 1").unwrap();
        assert_eq!(q.param_count(), 0);
    }

    #[test]
    fn executes_with_fresh_params() {
        use bcrdb_common::schema::{Column, DataType, TableSchema};
        use bcrdb_storage::snapshot::ScanMode;
        use bcrdb_storage::table::Table;
        use bcrdb_txn::ssi::{Flow, SsiManager};

        let catalog = Catalog::new();
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
            ],
            vec![0],
        )
        .unwrap();
        catalog.create_table(schema).unwrap();
        let table: Arc<Table> = catalog.get("t").unwrap();
        let mgr = Arc::new(SsiManager::new());
        let ctx = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        for k in 0..5i64 {
            ctx.insert(&table, vec![Value::Int(k), Value::Int(k * 10)])
                .unwrap();
        }
        assert!(ctx
            .apply_commit(1, 0, Flow::OrderThenExecute)
            .is_committed());

        let q = PreparedQuery::parse("SELECT v FROM t WHERE k = $1").unwrap();
        let reader = TxnCtx::read_only(&mgr, 1);
        for k in 0..5i64 {
            let r = q.execute(&catalog, &reader, &[Value::Int(k)]).unwrap();
            assert_eq!(r.scalar_as::<i64>().unwrap(), k * 10);
        }
        // Parameter-count mismatches are clean analysis errors, in both
        // directions (libpq-style exact matching).
        assert!(q.execute(&catalog, &reader, &[]).is_err());
        assert!(q
            .execute(&catalog, &reader, &[Value::Int(1), Value::Int(2)])
            .is_err());
    }
}
