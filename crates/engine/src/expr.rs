//! Expression evaluation.
//!
//! Expressions are evaluated against a [`RowSchema`] (the names visible at
//! that point of the query — a table scan, a join product, or a group) and
//! a current row. The set of scalar builtins is intentionally the
//! deterministic whitelist implied by §4.3 of the paper; non-deterministic
//! functions were already rejected statically by `bcrdb-sql`'s validator,
//! but evaluation re-checks so the engine is safe even for statements that
//! bypass validation (local ad-hoc reads).

use std::cmp::Ordering;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::value::Value;
use bcrdb_sql::ast::{BinaryOp, Expr, UnaryOp};

/// Column name binding for one relational context.
#[derive(Clone, Debug, Default)]
pub struct RowSchema {
    /// (qualifier, column name) per output position.
    cols: Vec<(Option<String>, String)>,
}

impl RowSchema {
    /// Build from a list of (qualifier, name) pairs.
    pub fn new(cols: Vec<(Option<String>, String)>) -> RowSchema {
        RowSchema { cols }
    }

    /// Schema of a single table scan: all columns qualified by `alias`.
    pub fn for_table(alias: &str, column_names: &[String]) -> RowSchema {
        RowSchema {
            cols: column_names
                .iter()
                .map(|c| (Some(alias.to_string()), c.clone()))
                .collect(),
        }
    }

    /// Concatenate two schemas (join product).
    pub fn join(&self, other: &RowSchema) -> RowSchema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        RowSchema { cols }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// All (qualifier, name) pairs.
    pub fn columns(&self) -> &[(Option<String>, String)] {
        &self.cols
    }

    /// Resolve a column reference to an ordinal. Unqualified names must be
    /// unambiguous across the whole context.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, (qual, col)) in self.cols.iter().enumerate() {
            let qual_matches = match (table, qual) {
                (Some(t), Some(q)) => t == q,
                (Some(_), None) => false,
                (None, _) => true,
            };
            if qual_matches && col == name {
                if found.is_some() {
                    return Err(Error::Analysis(format!(
                        "ambiguous column reference {name}"
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            let full = match table {
                Some(t) => format!("{t}.{name}"),
                None => name.to_string(),
            };
            Error::Analysis(format!("unknown column {full}"))
        })
    }

    /// Ordinals of the columns belonging to qualifier `q` (for `q.*`).
    pub fn ordinals_for_qualifier(&self, q: &str) -> Vec<usize> {
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, (qual, _))| qual.as_deref() == Some(q))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Evaluation environment: binding + current row + statement parameters.
pub struct Env<'a> {
    /// Column binding.
    pub schema: &'a RowSchema,
    /// Current row values.
    pub row: &'a [Value],
    /// `$n` parameter values.
    pub params: &'a [Value],
}

/// Evaluate `expr` in `env`. Aggregate calls are an error here — the
/// executor replaces them before scalar evaluation.
pub fn eval(expr: &Expr, env: &Env<'_>) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => {
            let i = env.schema.resolve(table.as_deref(), name)?;
            Ok(env.row[i].clone())
        }
        Expr::Param(i) => env
            .params
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::Analysis(format!("parameter ${} not supplied", i + 1))),
        Expr::Unary { op, operand } => {
            let v = eval(operand, env)?;
            match op {
                UnaryOp::Neg => v.neg(),
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(Error::Type(format!("NOT requires boolean, got {other:?}"))),
                },
            }
        }
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, env),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, env)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, env)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, env)?;
            let lo = eval(low, env)?;
            let hi = eval(high, env)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::Function { name, args, star } => {
            if *star || bcrdb_sql::ast::is_aggregate_name(name) {
                return Err(Error::internal(format!(
                    "aggregate {name} reached scalar evaluation"
                )));
            }
            eval_scalar_function(name, args, env)
        }
    }
}

fn eval_binary(op: BinaryOp, left: &Expr, right: &Expr, env: &Env<'_>) -> Result<Value> {
    // AND/OR use three-valued logic with short-circuiting.
    match op {
        BinaryOp::And => {
            let l = eval(left, env)?;
            if matches!(l, Value::Bool(false)) {
                return Ok(Value::Bool(false));
            }
            let r = eval(right, env)?;
            return Ok(match (l, r) {
                (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                (_, Value::Bool(false)) => Value::Bool(false),
                _ => Value::Null,
            });
        }
        BinaryOp::Or => {
            let l = eval(left, env)?;
            if matches!(l, Value::Bool(true)) {
                return Ok(Value::Bool(true));
            }
            let r = eval(right, env)?;
            return Ok(match (l, r) {
                (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                (_, Value::Bool(true)) => Value::Bool(true),
                _ => Value::Null,
            });
        }
        _ => {}
    }
    let l = eval(left, env)?;
    let r = eval(right, env)?;
    match op {
        BinaryOp::Add => l.add(&r),
        BinaryOp::Sub => l.sub(&r),
        BinaryOp::Mul => l.mul(&r),
        BinaryOp::Div => l.div(&r),
        BinaryOp::Mod => l.rem(&r),
        BinaryOp::Concat => l.concat(&r),
        BinaryOp::Eq => Ok(tri(l.sql_eq(&r))),
        BinaryOp::NotEq => Ok(tri(l.sql_eq(&r).map(|b| !b))),
        BinaryOp::Lt => Ok(tri(l.sql_cmp(&r).map(|o| o == Ordering::Less))),
        BinaryOp::LtEq => Ok(tri(l.sql_cmp(&r).map(|o| o != Ordering::Greater))),
        BinaryOp::Gt => Ok(tri(l.sql_cmp(&r).map(|o| o == Ordering::Greater))),
        BinaryOp::GtEq => Ok(tri(l.sql_cmp(&r).map(|o| o != Ordering::Less))),
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

fn tri(v: Option<bool>) -> Value {
    match v {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn eval_scalar_function(name: &str, args: &[Expr], env: &Env<'_>) -> Result<Value> {
    let need = |n: usize| -> Result<()> {
        if args.len() != n {
            return Err(Error::Analysis(format!("{name}() expects {n} argument(s)")));
        }
        Ok(())
    };
    match name {
        "abs" => {
            need(1)?;
            match eval(&args[0], env)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(Error::Type(format!(
                    "abs() requires a number, got {other:?}"
                ))),
            }
        }
        "length" => {
            need(1)?;
            match eval(&args[0], env)? {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::Bytes(b) => Ok(Value::Int(b.len() as i64)),
                other => Err(Error::Type(format!(
                    "length() requires text, got {other:?}"
                ))),
            }
        }
        "lower" => {
            need(1)?;
            match eval(&args[0], env)? {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(s.to_lowercase())),
                other => Err(Error::Type(format!("lower() requires text, got {other:?}"))),
            }
        }
        "upper" => {
            need(1)?;
            match eval(&args[0], env)? {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(s.to_uppercase())),
                other => Err(Error::Type(format!("upper() requires text, got {other:?}"))),
            }
        }
        "coalesce" => {
            if args.is_empty() {
                return Err(Error::Analysis(
                    "coalesce() needs at least one argument".into(),
                ));
            }
            for a in args {
                let v = eval(a, env)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "round" => {
            need(1)?;
            match eval(&args[0], env)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Float(f) => Ok(Value::Float(f.round())),
                other => Err(Error::Type(format!(
                    "round() requires a number, got {other:?}"
                ))),
            }
        }
        other => Err(Error::Analysis(format!("unknown function {other}()"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_sql::parse_expression;

    fn schema() -> RowSchema {
        RowSchema::new(vec![
            (Some("t".into()), "a".into()),
            (Some("t".into()), "b".into()),
            (Some("u".into()), "a".into()),
        ])
    }

    fn eval_str(s: &str, row: &[Value], params: &[Value]) -> Result<Value> {
        let e = parse_expression(s).unwrap();
        let schema = schema();
        let env = Env {
            schema: &schema,
            row,
            params,
        };
        eval(&e, &env)
    }

    #[test]
    fn column_resolution() {
        let row = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(eval_str("t.a", &row, &[]).unwrap(), Value::Int(1));
        assert_eq!(eval_str("b", &row, &[]).unwrap(), Value::Int(2));
        assert_eq!(eval_str("u.a", &row, &[]).unwrap(), Value::Int(3));
        // "a" is ambiguous between t.a and u.a.
        assert!(eval_str("a", &row, &[]).is_err());
        assert!(eval_str("t.zzz", &row, &[]).is_err());
    }

    #[test]
    fn arithmetic_and_comparison() {
        let row = vec![Value::Int(10), Value::Int(3), Value::Int(0)];
        assert_eq!(
            eval_str("t.a + t.b * 2", &row, &[]).unwrap(),
            Value::Int(16)
        );
        assert_eq!(eval_str("t.a > t.b", &row, &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("t.a % t.b", &row, &[]).unwrap(), Value::Int(1));
        assert_eq!(eval_str("-t.b", &row, &[]).unwrap(), Value::Int(-3));
    }

    #[test]
    fn params() {
        let row = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(
            eval_str("$1 + $2", &row, &[Value::Int(5), Value::Int(6)]).unwrap(),
            Value::Int(11)
        );
        assert!(eval_str("$3", &row, &[Value::Int(5)]).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let row = vec![Value::Null, Value::Bool(true), Value::Bool(false)];
        // NULL = NULL is unknown.
        assert_eq!(eval_str("t.a = t.a", &row, &[]).unwrap(), Value::Null);
        // FALSE AND NULL = FALSE; TRUE OR NULL = TRUE.
        assert_eq!(
            eval_str("u.a AND t.a", &row, &[]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_str("t.b OR t.a", &row, &[]).unwrap(),
            Value::Bool(true)
        );
        // TRUE AND NULL = NULL.
        assert_eq!(eval_str("t.b AND t.a", &row, &[]).unwrap(), Value::Null);
        assert_eq!(eval_str("NOT t.a", &row, &[]).unwrap(), Value::Null);
        assert_eq!(
            eval_str("t.a IS NULL", &row, &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("t.b IS NOT NULL", &row, &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn in_list_and_between() {
        let row = vec![Value::Int(5), Value::Null, Value::Int(0)];
        assert_eq!(
            eval_str("t.a IN (1, 5, 9)", &row, &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("t.a NOT IN (1, 9)", &row, &[]).unwrap(),
            Value::Bool(true)
        );
        // x IN (..., NULL) without a match is unknown.
        assert_eq!(eval_str("t.a IN (1, t.b)", &row, &[]).unwrap(), Value::Null);
        assert_eq!(
            eval_str("t.a BETWEEN 1 AND 9", &row, &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("t.a NOT BETWEEN 6 AND 9", &row, &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("t.a BETWEEN t.b AND 9", &row, &[]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn scalar_functions() {
        let row = vec![Value::Text("Héllo".into()), Value::Int(-4), Value::Null];
        assert_eq!(eval_str("length(t.a)", &row, &[]).unwrap(), Value::Int(5));
        assert_eq!(
            eval_str("upper(t.a)", &row, &[]).unwrap(),
            Value::Text("HÉLLO".into())
        );
        assert_eq!(eval_str("abs(t.b)", &row, &[]).unwrap(), Value::Int(4));
        assert_eq!(
            eval_str("coalesce(u.a, t.b, 7)", &row, &[]).unwrap(),
            Value::Int(-4)
        );
        assert_eq!(
            eval_str("round(2.7)", &row, &[]).unwrap(),
            Value::Float(3.0)
        );
        assert!(eval_str("frobnicate(1)", &row, &[]).is_err());
        assert!(eval_str("abs(1, 2)", &row, &[]).is_err());
    }

    #[test]
    fn concat_operator() {
        let row = vec![Value::Text("a".into()), Value::Int(1), Value::Null];
        assert_eq!(
            eval_str("t.a || '-' || t.b", &row, &[]).unwrap(),
            Value::Text("a-1".into())
        );
        assert_eq!(eval_str("t.a || u.a", &row, &[]).unwrap(), Value::Null);
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        let row = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert!(eval_str("sum(t.a)", &row, &[]).is_err());
        assert!(eval_str("count(*)", &row, &[]).is_err());
    }

    #[test]
    fn qualified_wildcard_ordinals() {
        let s = schema();
        assert_eq!(s.ordinals_for_qualifier("t"), vec![0, 1]);
        assert_eq!(s.ordinals_for_qualifier("u"), vec![2]);
        assert!(s.ordinals_for_qualifier("zz").is_empty());
    }
}
