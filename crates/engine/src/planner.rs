//! The cost-based plan enumerator.
//!
//! Enumerates the access paths one table scan could take — full scan,
//! single index scan (optionally covering), multi-index intersection of
//! AND-conjuncts, multi-index union of OR-disjuncts — costs each with
//! the [`crate::cost`] model over the snapshot-pinned statistics, and
//! picks the cheapest. Ties break structurally (fewest index parts,
//! then lowest column ordinal) so the choice is a pure function of the
//! catalog and the sealed statistics: every replica derives the same
//! plan, which matters because the plan's index ranges double as the
//! SSI predicate locks (§4.3).
//!
//! Join strategy (index-nested-loop vs. hash vs. sort-merge) is chosen
//! the same way, with the strict execute-order flow pinned to
//! index-nested-loop — the only strategy whose reads are all precise
//! index probes.

use std::ops::Bound;

use bcrdb_common::error::Result;
use bcrdb_common::schema::TableSchema;
use bcrdb_common::value::Value;
use bcrdb_sql::ast::{BinaryOp, Expr};
use bcrdb_storage::index::KeyRange;

use crate::cost;
use crate::plan::{conjuncts, eval_const, is_const, rank, sargable_conjunct};
use crate::stats::TableStatsView;

/// A chosen physical access path for one table scan.
#[derive(Clone, Debug, PartialEq)]
pub enum ScanPlan {
    /// Full heap scan (relaxed flows only).
    Full,
    /// Single index range scan.
    Index {
        /// Indexed column ordinal.
        column: usize,
        /// Scan range.
        range: KeyRange,
        /// The index key alone satisfies the query: skip the heap-row
        /// clone.
        covering: bool,
    },
    /// Bitmap-style AND of several index scans: intersect the row-id
    /// sets, fault only rows matching every part.
    Intersect {
        /// `(column, range)` per part, ascending by column ordinal.
        parts: Vec<(usize, KeyRange)>,
    },
    /// Union of several index scans (OR-disjuncts / IN lists): merge
    /// and deduplicate the row-id sets.
    Union {
        /// `(column, range)` per part, in disjunct order.
        parts: Vec<(usize, KeyRange)>,
    },
}

/// A costed plan choice.
#[derive(Clone, Debug)]
pub struct ScanChoice {
    /// The chosen access path.
    pub plan: ScanPlan,
    /// Estimated rows the scan operator emits (before residual filters).
    pub est_rows: f64,
    /// Estimated cost in the model's row-visit units.
    pub cost: f64,
}

impl ScanChoice {
    fn full(rows: f64) -> ScanChoice {
        ScanChoice {
            plan: ScanPlan::Full,
            est_rows: rows,
            cost: cost::full_scan_cost(rows),
        }
    }

    /// Structural tie-break key: fewest index parts, then lowest first
    /// column ordinal, then plan-kind order (index < intersect < union <
    /// full) — all catalog-derived, nothing positional.
    fn tie_key(&self) -> (usize, usize, u8) {
        match &self.plan {
            ScanPlan::Index { column, .. } => (1, *column, 0),
            ScanPlan::Intersect { parts } => (parts.len(), parts[0].0, 1),
            ScanPlan::Union { parts } => (parts.len(), parts[0].0, 2),
            ScanPlan::Full => (usize::MAX, usize::MAX, 3),
        }
    }
}

/// Plan one table scan. `covering` names the only column the query
/// consumes, when there is exactly one — a single-index plan on that
/// column can then skip heap faults. With `require_index` (the strict
/// execute-order flow) a full scan is only chosen when no index path
/// exists at all (the scan layer then rejects it, §4.3).
pub fn plan_scan(
    schema: &TableSchema,
    alias: &str,
    predicate: Option<&Expr>,
    params: &[Value],
    stats: &TableStatsView,
    covering: Option<usize>,
    require_index: bool,
) -> Result<ScanChoice> {
    let rows = cost::table_rows(stats);
    let mut candidates = vec![ScanChoice::full(rows)];

    let Some(pred) = predicate else {
        return Ok(candidates.pop().expect("full-scan candidate"));
    };

    // Sargable AND-conjuncts over indexed columns.
    let mut sargs: Vec<(usize, KeyRange, f64)> = Vec::new(); // (col, range, selectivity)
    for c in conjuncts(pred) {
        if let Some((col, range)) = sargable_conjunct(c, alias, schema, params)? {
            let sel = cost::selectivity(stats, col, &range);
            sargs.push((col, range, sel));
        }
    }

    // Single-index candidates.
    for (col, range, sel) in &sargs {
        let est = rows * sel;
        let cov = covering == Some(*col);
        candidates.push(ScanChoice {
            plan: ScanPlan::Index {
                column: *col,
                range: range.clone(),
                covering: cov,
            },
            est_rows: est,
            cost: cost::index_scan_cost(est, cov),
        });
    }

    // Intersection: the most selective sarg per column, every column.
    let mut per_col: Vec<(usize, KeyRange, f64)> = Vec::new();
    for (col, range, sel) in &sargs {
        match per_col.iter_mut().find(|(c, _, _)| c == col) {
            Some(slot) if *sel < slot.2 => {
                slot.1 = range.clone();
                slot.2 = *sel;
            }
            Some(_) => {}
            None => per_col.push((*col, range.clone(), *sel)),
        }
    }
    per_col.sort_by_key(|(c, _, _)| *c);
    if per_col.len() >= 2 {
        let part_ests: Vec<f64> = per_col.iter().map(|(_, _, s)| rows * s).collect();
        let out_est = rows * per_col.iter().map(|(_, _, s)| s).product::<f64>();
        candidates.push(ScanChoice {
            plan: ScanPlan::Intersect {
                parts: per_col.iter().map(|(c, r, _)| (*c, r.clone())).collect(),
            },
            est_rows: out_est,
            cost: cost::intersect_cost(&part_ests, out_est),
        });
    }

    // Union: any conjunct whose disjuncts (or IN list) are all sargable
    // covers a superset of the predicate's rows — the residual WHERE
    // filter re-applies the full predicate afterwards.
    for c in conjuncts(pred) {
        if let Some(parts) = union_parts(c, alias, schema, params)? {
            let ests: Vec<f64> = parts
                .iter()
                .map(|(col, r)| rows * cost::selectivity(stats, *col, r))
                .collect();
            let est = ests.iter().sum::<f64>().min(rows);
            candidates.push(ScanChoice {
                plan: ScanPlan::Union { parts },
                est_rows: est,
                cost: cost::union_cost(&ests),
            });
        }
    }

    if require_index && candidates.len() > 1 {
        candidates.retain(|c| c.plan != ScanPlan::Full);
    }

    candidates.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then_with(|| a.tie_key().cmp(&b.tie_key()))
    });
    Ok(candidates.into_iter().next().expect("nonempty candidates"))
}

/// Split an expression into its OR-disjuncts.
fn disjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(expr, &mut out);
    out
}

/// Index-union parts for one conjunct, if every one of its OR-disjuncts
/// (including IN-list members) is sargable over an indexed column.
/// Returns `None` when any disjunct would need a full scan, or when the
/// "union" would degenerate to fewer than two parts.
fn union_parts(
    conjunct: &Expr,
    alias: &str,
    schema: &TableSchema,
    params: &[Value],
) -> Result<Option<Vec<(usize, KeyRange)>>> {
    let mut parts: Vec<(usize, KeyRange)> = Vec::new();
    for d in disjuncts(conjunct) {
        if let Expr::InList {
            expr,
            list,
            negated: false,
        } = d
        {
            let Some((col, ranges)) = in_list_ranges(expr, list, alias, schema, params)? else {
                return Ok(None);
            };
            parts.extend(ranges.into_iter().map(|r| (col, r)));
            continue;
        }
        // The best-ranked sargable conjunct within the disjunct covers a
        // superset of the disjunct's rows.
        let mut best: Option<(usize, KeyRange)> = None;
        for c in conjuncts(d) {
            if let Some((col, range)) = sargable_conjunct(c, alias, schema, params)? {
                let better = match &best {
                    None => true,
                    Some((bcol, brange)) => (rank(&range), col) < (rank(brange), *bcol),
                };
                if better {
                    best = Some((col, range));
                }
            }
        }
        match best {
            Some(part) => parts.push(part),
            None => return Ok(None),
        }
    }
    Ok((parts.len() >= 2).then_some(parts))
}

/// `col IN (c1, c2, …)` over an indexed column with constant, non-NULL
/// members → one equality range per member.
fn in_list_ranges(
    expr: &Expr,
    list: &[Expr],
    alias: &str,
    schema: &TableSchema,
    params: &[Value],
) -> Result<Option<(usize, Vec<KeyRange>)>> {
    let col = match expr {
        Expr::Column { table, name } if table.as_deref().is_none_or(|t| t == alias) => {
            match schema.column_index(name) {
                Some(c) if schema.index_on(c).is_some() => c,
                _ => return Ok(None),
            }
        }
        _ => return Ok(None),
    };
    let mut ranges = Vec::with_capacity(list.len());
    for member in list {
        if !is_const(member) {
            return Ok(None);
        }
        let v = eval_const(member, params)?;
        if v.is_null() {
            continue; // `x IN (…, NULL, …)` members never match
        }
        ranges.push(KeyRange::eq(v));
    }
    Ok((!ranges.is_empty()).then_some((col, ranges)))
}

// ------------------------------------------------------------------ joins

/// Physical join strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// One index probe on the right table per left row.
    IndexNestedLoop,
    /// Materialize the right side into a hash table, probe per left row.
    Hash,
    /// Sort both sides on the join key and merge.
    SortMerge,
}

/// Choose the join strategy for an equi-join with `left_rows` already
/// materialized left rows against the right table. Returns the strategy
/// and the estimated output row count. The strict execute-order flow is
/// pinned to index-nested-loop whenever the right column is indexed —
/// the other strategies full-scan the right side, which that flow
/// forbids (§4.3).
pub fn choose_join_strategy(
    left_rows: usize,
    right_stats: &TableStatsView,
    right_col: usize,
    right_indexed: bool,
    strict: bool,
    order_matches_key: bool,
) -> (JoinStrategy, f64) {
    let n = left_rows as f64;
    let m = cost::table_rows(right_stats);
    let per_key = if right_stats.is_unique(right_col) {
        1.0
    } else if let Some(col) = right_stats.column(right_col) {
        col.count as f64 / col.distinct.max(1) as f64
    } else {
        m * cost::DEFAULT_EQ_SELECTIVITY
    };
    let est_out = n * per_key;

    if strict && right_indexed {
        return (JoinStrategy::IndexNestedLoop, est_out);
    }

    let mut best = (JoinStrategy::Hash, cost::hash_join_cost(n, m));
    if right_indexed {
        let inl = cost::inl_join_cost(n, per_key);
        if inl < best.1 {
            best = (JoinStrategy::IndexNestedLoop, inl);
        }
    }
    let credit = if order_matches_key { est_out } else { 0.0 };
    let sm = cost::sort_merge_join_cost(n, m, credit);
    if sm < best.1 {
        best = (JoinStrategy::SortMerge, sm);
    }
    (best.0, est_out)
}

// ---------------------------------------------------------------- explain

/// One node of an executed plan tree: what ran, what the planner
/// expected, what actually came out.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// Operator description.
    pub label: String,
    /// Planner's row estimate, when the cost model produced one.
    pub est: Option<u64>,
    /// Rows the operator actually emitted.
    pub actual: u64,
    /// Input operators.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Leaf node.
    pub fn leaf(label: impl Into<String>, est: Option<f64>, actual: usize) -> PlanNode {
        PlanNode {
            label: label.into(),
            est: est.map(|e| e.round().max(0.0) as u64),
            actual: actual as u64,
            children: Vec::new(),
        }
    }

    /// Wrap children under a new operator node.
    pub fn over(
        label: impl Into<String>,
        est: Option<f64>,
        actual: usize,
        children: Vec<PlanNode>,
    ) -> PlanNode {
        PlanNode {
            children,
            ..PlanNode::leaf(label, est, actual)
        }
    }

    /// Render the tree as indented lines (the EXPLAIN output rows).
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut Vec<String>) {
        let indent = "  ".repeat(depth);
        let line = match self.est {
            Some(est) => format!("{indent}{} (est={est} actual={})", self.label, self.actual),
            None => format!("{indent}{} (rows={})", self.label, self.actual),
        };
        out.push(line);
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }
}

/// Human-readable `column op value` form of one index range.
pub fn describe_range(schema: &TableSchema, column: usize, range: &KeyRange) -> String {
    let name = schema
        .columns
        .get(column)
        .map(|c| c.name.as_str())
        .unwrap_or("?");
    match (&range.low, &range.high) {
        (Bound::Included(l), Bound::Included(h)) if l == h => format!("{name} = {l}"),
        (Bound::Unbounded, Bound::Unbounded) => format!("{name}: all"),
        (low, high) => {
            let mut parts = Vec::new();
            match low {
                Bound::Included(v) => parts.push(format!("{name} >= {v}")),
                Bound::Excluded(v) => parts.push(format!("{name} > {v}")),
                Bound::Unbounded => {}
            }
            match high {
                Bound::Included(v) => parts.push(format!("{name} <= {v}")),
                Bound::Excluded(v) => parts.push(format!("{name} < {v}")),
                Bound::Unbounded => {}
            }
            parts.join(" AND ")
        }
    }
}

impl ScanPlan {
    /// Operator label for EXPLAIN output.
    pub fn label(&self, table: &str, schema: &TableSchema) -> String {
        match self {
            ScanPlan::Full => format!("SeqScan {table}"),
            ScanPlan::Index {
                column,
                range,
                covering,
            } => {
                let op = if *covering {
                    "CoveringIndexScan"
                } else {
                    "IndexScan"
                };
                format!("{op} {table} [{}]", describe_range(schema, *column, range))
            }
            ScanPlan::Intersect { parts } => {
                let desc: Vec<String> = parts
                    .iter()
                    .map(|(c, r)| describe_range(schema, *c, r))
                    .collect();
                format!("IndexIntersect {table} [{}]", desc.join(" AND "))
            }
            ScanPlan::Union { parts } => {
                let desc: Vec<String> = parts
                    .iter()
                    .map(|(c, r)| describe_range(schema, *c, r))
                    .collect();
                format!("IndexUnion {table} [{}]", desc.join(" OR "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::schema::{Column, DataType};
    use bcrdb_sql::parse_expression;
    use bcrdb_storage::stats::{ColumnSummary, TableSummary};

    /// inv(id Int pk, supplier Text indexed, amount Float unindexed).
    fn schema() -> TableSchema {
        let mut s = TableSchema::new(
            "inv",
            vec![
                Column::new("id", DataType::Int),
                Column::new("supplier", DataType::Text),
                Column::new("amount", DataType::Float),
            ],
            vec![0],
        )
        .unwrap();
        s.add_index("idx_supplier", "supplier").unwrap();
        s
    }

    fn stats(rows: u64, suppliers: u64) -> TableStatsView {
        TableStatsView::with_summary(
            &schema(),
            TableSummary {
                rows,
                columns: vec![
                    (
                        0,
                        ColumnSummary {
                            distinct: rows,
                            count: rows,
                            min: Some(Value::Int(1)),
                            max: Some(Value::Int(rows as i64)),
                        },
                    ),
                    (
                        1,
                        ColumnSummary {
                            distinct: suppliers,
                            count: rows,
                            min: Some(Value::Text("a".into())),
                            max: Some(Value::Text("z".into())),
                        },
                    ),
                ],
            },
        )
    }

    fn plan(pred: &str, stats: &TableStatsView, covering: Option<usize>) -> ScanChoice {
        let e = parse_expression(pred).unwrap();
        plan_scan(&schema(), "inv", Some(&e), &[], stats, covering, false).unwrap()
    }

    #[test]
    fn or_on_indexed_column_becomes_index_union() {
        let s = stats(10_000, 50);
        let choice = plan("id = 1 OR id = 2", &s, None);
        assert_eq!(
            choice.plan,
            ScanPlan::Union {
                parts: vec![
                    (0, KeyRange::eq(Value::Int(1))),
                    (0, KeyRange::eq(Value::Int(2))),
                ]
            }
        );
        assert!(choice.est_rows < 3.0);
    }

    #[test]
    fn in_list_becomes_index_union() {
        let s = stats(10_000, 50);
        let choice = plan("id IN (3, 5, 9)", &s, None);
        match choice.plan {
            ScanPlan::Union { parts } => assert_eq!(parts.len(), 3),
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn union_requires_every_disjunct_sargable() {
        let s = stats(10_000, 50);
        // `amount` is unindexed: the OR cannot be a union; full scan wins.
        let choice = plan("id = 1 OR amount > 5.0", &s, None);
        assert_eq!(choice.plan, ScanPlan::Full);
    }

    #[test]
    fn selective_conjuncts_intersect() {
        // Two moderately selective conjuncts (~5% each) over a big table:
        // neither alone narrows much, but their intersection (~0.25%)
        // does — walking both indexes' entries beats faulting either
        // part's heap rows.
        let s = stats(100_000, 20);
        let choice = plan("supplier = 'acme' AND id BETWEEN 10 AND 5009", &s, None);
        match &choice.plan {
            ScanPlan::Intersect { parts } => {
                assert_eq!(parts.len(), 2);
                assert_eq!(parts[0].0, 0, "parts ascend by column ordinal");
                assert_eq!(parts[1].0, 1);
            }
            other => panic!("expected intersection, got {other:?}"),
        }
    }

    #[test]
    fn weak_second_conjunct_stays_single_index() {
        // Equality on the pk selects one row; adding a second index part
        // only adds seek cost.
        let s = stats(100_000, 10);
        let choice = plan("id = 4 AND supplier = 'acme'", &s, None);
        assert_eq!(
            choice.plan,
            ScanPlan::Index {
                column: 0,
                range: KeyRange::eq(Value::Int(4)),
                covering: false,
            }
        );
    }

    #[test]
    fn covering_flag_set_only_for_the_consumed_column() {
        let s = stats(10_000, 50);
        let choice = plan("supplier = 'acme'", &s, Some(1));
        assert_eq!(
            choice.plan,
            ScanPlan::Index {
                column: 1,
                range: KeyRange::eq(Value::Text("acme".into())),
                covering: true,
            }
        );
        let choice = plan("supplier = 'acme'", &s, Some(0));
        assert!(matches!(
            choice.plan,
            ScanPlan::Index {
                covering: false,
                ..
            }
        ));
    }

    #[test]
    fn unselective_range_prefers_full_scan_with_stats() {
        // A range covering ~all of a table is cheaper as a seq scan…
        let s = stats(1000, 50);
        let choice = plan("id >= 1", &s, None);
        assert_eq!(choice.plan, ScanPlan::Full);
        // …unless the strict flow requires an index path.
        let e = parse_expression("id >= 1").unwrap();
        let strict = plan_scan(&schema(), "inv", Some(&e), &[], &s, None, true).unwrap();
        assert!(matches!(strict.plan, ScanPlan::Index { column: 0, .. }));
    }

    #[test]
    fn join_strategy_boundaries() {
        let s = stats(100, 10);
        // Strict flow + indexed right column: always index-nested-loop.
        let (j, _) = choose_join_strategy(100, &s, 0, true, true, false);
        assert_eq!(j, JoinStrategy::IndexNestedLoop);
        // Small left side probing a big indexed table: INL wins.
        let big = stats(100_000, 10);
        let (j, _) = choose_join_strategy(10, &big, 0, true, false, false);
        assert_eq!(j, JoinStrategy::IndexNestedLoop);
        // Unindexed right column, no useful order: hash join.
        let (j, _) = choose_join_strategy(100, &s, 2, false, false, false);
        assert_eq!(j, JoinStrategy::Hash);
        // Same, but the query orders by the join key: sort-merge's output
        // order pays for itself.
        let (j, _) = choose_join_strategy(100, &s, 2, false, false, true);
        assert_eq!(j, JoinStrategy::SortMerge);
    }

    #[test]
    fn render_plan_tree() {
        let tree = PlanNode::over(
            "Sort [id]",
            None,
            2,
            vec![PlanNode::leaf("IndexScan inv [id = 4]", Some(1.2), 2)],
        );
        assert_eq!(
            tree.render(),
            vec![
                "Sort [id] (rows=2)".to_string(),
                "  IndexScan inv [id = 4] (est=1 actual=2)".to_string(),
            ]
        );
    }
}
