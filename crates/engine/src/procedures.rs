//! The smart-contract engine: deterministic stored procedures.
//!
//! A contract is a `CREATE FUNCTION` definition — named, typed parameters
//! and a body of SQL statements referencing them as `$1..$n` — validated
//! against the determinism rules at deploy time (§2 enhancement 1, §4.3)
//! and executed atomically inside the invoking transaction. This is the
//! direct analogue of the paper's constrained PL/SQL procedures.

use std::collections::BTreeMap;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::value::Value;
use bcrdb_sql::ast::FunctionDef;
use bcrdb_sql::validate::{validate_contract_body, DeterminismRules};
use bcrdb_storage::catalog::Catalog;
use bcrdb_txn::context::TxnCtx;
use parking_lot::RwLock;

use crate::exec::{Executor, StatementEffect};

/// A transportable contract invocation: the payload of a blockchain
/// transaction ("the PL/SQL procedure execution command with the name of
/// the procedure and arguments", §3.3/§3.4).
#[derive(Clone, Debug, PartialEq)]
pub struct Invocation {
    /// Contract name.
    pub contract: String,
    /// Argument values.
    pub args: Vec<Value>,
}

impl Invocation {
    /// Convenience constructor.
    pub fn new(contract: impl Into<String>, args: Vec<Value>) -> Invocation {
        Invocation {
            contract: contract.into(),
            args,
        }
    }

    /// Canonical string rendering (part of the signed transaction content
    /// and of the EO flow's unique-id derivation, §3.4.3).
    pub fn canonical_string(&self) -> String {
        let mut s = self.contract.clone();
        s.push('(');
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&a.to_string());
        }
        s.push(')');
        s
    }
}

/// The registry of deployed contracts on one node.
#[derive(Default)]
pub struct ContractRegistry {
    map: RwLock<BTreeMap<String, FunctionDef>>,
}

impl ContractRegistry {
    /// Empty registry.
    pub fn new() -> ContractRegistry {
        ContractRegistry::default()
    }

    /// Validate a definition against the flow's determinism rules. Called
    /// at deploy time on every node, before the deploy transaction commits.
    pub fn validate(def: &FunctionDef, rules: &DeterminismRules) -> Result<()> {
        validate_contract_body(&def.body, rules)
    }

    /// Install (or replace, if `or_replace`) a contract. The caller is the
    /// serial commit phase applying a `CatalogOp::CreateFunction`.
    pub fn install(&self, def: FunctionDef) -> Result<()> {
        let mut map = self.map.write();
        if map.contains_key(&def.name) && !def.or_replace {
            return Err(Error::AlreadyExists(format!("contract {}", def.name)));
        }
        map.insert(def.name.clone(), def);
        Ok(())
    }

    /// Drop a contract.
    pub fn remove(&self, name: &str) -> Result<()> {
        if self.map.write().remove(name).is_none() {
            return Err(Error::NotFound(format!("contract {name}")));
        }
        Ok(())
    }

    /// Fetch a contract definition.
    pub fn get(&self, name: &str) -> Option<FunctionDef> {
        self.map.read().get(name).cloned()
    }

    /// Sorted contract names.
    pub fn names(&self) -> Vec<String> {
        self.map.read().keys().cloned().collect()
    }

    /// Number of deployed contracts.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if no contracts are deployed.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Execute a contract invocation inside `ctx`. Returns the effects of
    /// every statement in the body (the node collects deferred catalog ops
    /// and returns the last SELECT to the client).
    pub fn invoke(
        &self,
        catalog: &Catalog,
        ctx: &TxnCtx,
        invocation: &Invocation,
    ) -> Result<Vec<StatementEffect>> {
        let def = self
            .get(&invocation.contract)
            .ok_or_else(|| Error::NotFound(format!("contract {}", invocation.contract)))?;
        if invocation.args.len() != def.params.len() {
            return Err(Error::Analysis(format!(
                "contract {} expects {} argument(s), got {}",
                def.name,
                def.params.len(),
                invocation.args.len()
            )));
        }
        let mut args = Vec::with_capacity(invocation.args.len());
        for (v, (pname, ptype)) in invocation.args.iter().zip(&def.params) {
            args.push(v.clone().coerce_to(*ptype).map_err(|_| {
                Error::Type(format!(
                    "argument {pname} of contract {} expects {ptype}",
                    def.name
                ))
            })?);
        }
        let exec = Executor::new(catalog, ctx, &args);
        let mut effects = Vec::with_capacity(def.body.len());
        for stmt in &def.body {
            effects.push(exec.execute(stmt)?);
        }
        Ok(effects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::schema::{Column, DataType, TableSchema};
    use bcrdb_sql::ast::Statement;
    use bcrdb_sql::parse_statement;
    use bcrdb_storage::snapshot::ScanMode;
    use bcrdb_txn::ssi::{Flow, SsiManager};
    use std::sync::Arc;

    fn contract(sql: &str) -> FunctionDef {
        match parse_statement(sql).unwrap() {
            Statement::CreateFunction(def) => def,
            other => panic!("not a function: {other:?}"),
        }
    }

    fn setup() -> (Arc<SsiManager>, Catalog, ContractRegistry) {
        let mgr = Arc::new(SsiManager::new());
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableSchema::new(
                    "accounts",
                    vec![
                        Column::new("id", DataType::Int),
                        Column::new("balance", DataType::Float),
                    ],
                    vec![0],
                )
                .unwrap(),
            )
            .unwrap();
        let registry = ContractRegistry::new();
        registry
            .install(contract(
                "CREATE FUNCTION open_account(acct_id INT, amount FLOAT) AS $$ \
                   INSERT INTO accounts VALUES ($1, $2) $$",
            ))
            .unwrap();
        (mgr, catalog, registry)
    }

    #[test]
    fn deploy_and_invoke() {
        let (mgr, catalog, registry) = setup();
        let ctx = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        let inv = Invocation::new("open_account", vec![Value::Int(1), Value::Float(50.0)]);
        let effects = registry.invoke(&catalog, &ctx, &inv).unwrap();
        assert_eq!(effects.len(), 1);
        assert!(ctx
            .apply_commit(1, 0, Flow::OrderThenExecute)
            .is_committed());
        let r = TxnCtx::read_only(&mgr, 1);
        assert_eq!(
            r.scan(&catalog.get("accounts").unwrap(), None)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn argument_checking() {
        let (mgr, catalog, registry) = setup();
        let ctx = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        // Wrong arity.
        let err = registry
            .invoke(
                &catalog,
                &ctx,
                &Invocation::new("open_account", vec![Value::Int(1)]),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Analysis(_)));
        // Int coerces to float; text does not.
        assert!(registry
            .invoke(
                &catalog,
                &ctx,
                &Invocation::new("open_account", vec![Value::Int(2), Value::Int(7)])
            )
            .is_ok());
        let err = registry
            .invoke(
                &catalog,
                &ctx,
                &Invocation::new("open_account", vec![Value::Int(3), Value::Text("x".into())]),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Type(_)));
        ctx.rollback();
        // Unknown contract.
        let ctx2 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        assert!(matches!(
            registry.invoke(&catalog, &ctx2, &Invocation::new("nope", vec![])),
            Err(Error::NotFound(_))
        ));
        ctx2.rollback();
    }

    #[test]
    fn replace_requires_or_replace() {
        let registry = ContractRegistry::new();
        let def = contract("CREATE FUNCTION f(x INT) AS $$ INSERT INTO t VALUES ($1) $$");
        registry.install(def.clone()).unwrap();
        assert!(registry.install(def).is_err());
        let def2 =
            contract("CREATE OR REPLACE FUNCTION f(x INT) AS $$ INSERT INTO t VALUES ($1 + 1) $$");
        registry.install(def2).unwrap();
        assert_eq!(registry.len(), 1);
        registry.remove("f").unwrap();
        assert!(registry.remove("f").is_err());
        assert!(registry.is_empty());
    }

    #[test]
    fn determinism_validation_at_deploy() {
        let def = contract("CREATE FUNCTION f() AS $$ INSERT INTO t VALUES (random()) $$");
        let err =
            ContractRegistry::validate(&def, &DeterminismRules::order_then_execute()).unwrap_err();
        assert!(matches!(err, Error::Determinism(_)));
        let ok = contract("CREATE FUNCTION g(x INT) AS $$ INSERT INTO t VALUES ($1) $$");
        assert!(
            ContractRegistry::validate(&ok, &DeterminismRules::execute_order_parallel()).is_ok()
        );
    }

    #[test]
    fn canonical_string_binds_name_and_args() {
        let a = Invocation::new("f", vec![Value::Int(1), Value::Text("x".into())]);
        assert_eq!(a.canonical_string(), "f(1,'x')");
        let b = Invocation::new("f", vec![Value::Int(1), Value::Text("y".into())]);
        assert_ne!(a.canonical_string(), b.canonical_string());
    }
}
