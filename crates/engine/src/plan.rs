//! Minimal planning: index selection for predicate reads and equi-join
//! detection.
//!
//! The paper's rule (§4.3) — *all predicate reads must go through an index
//! in the execute-order-in-parallel flow* — makes index selection a
//! correctness feature, not just a performance one: the chosen index range
//! doubles as the SSI predicate lock. Selection is deliberately simple and
//! deterministic: split the WHERE clause into AND-conjuncts, find
//! `column ⟨op⟩ constant` conjuncts over indexed columns of the scanned
//! table, and pick the most selective shape (equality > bounded range >
//! half-open range).

use bcrdb_common::error::Result;
use bcrdb_common::schema::TableSchema;
use bcrdb_common::value::Value;
use bcrdb_sql::ast::{BinaryOp, Expr};
use bcrdb_storage::index::KeyRange;

use crate::expr::{eval, Env, RowSchema};

/// A chosen access path for one table scan.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessPath {
    /// Indexed column ordinal and the scan range.
    pub column: usize,
    /// Key range derived from the predicate.
    pub range: KeyRange,
}

/// Split an expression into its AND-conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(expr, &mut out);
    out
}

/// Is `e` a constant expression (literals/params only)? Those are safe to
/// evaluate at plan time.
fn is_const(e: &Expr) -> bool {
    let mut ok = true;
    e.walk(&mut |sub| {
        if matches!(sub, Expr::Column { .. }) {
            ok = false;
        }
        if let Expr::Function { name, .. } = sub {
            if bcrdb_sql::ast::is_aggregate_name(name) {
                ok = false;
            }
        }
    });
    ok
}

/// Evaluate a constant expression at plan time.
fn eval_const(e: &Expr, params: &[Value]) -> Result<Value> {
    let schema = RowSchema::default();
    let env = Env {
        schema: &schema,
        row: &[],
        params,
    };
    eval(e, &env)
}

/// Does a column expression refer to `alias` (or be unqualified) and name a
/// column of `schema`? Returns the ordinal.
fn column_of(e: &Expr, alias: &str, schema: &TableSchema) -> Option<usize> {
    if let Expr::Column { table, name } = e {
        if table.as_deref().is_none_or(|t| t == alias) {
            return schema.column_index(name);
        }
    }
    None
}

/// Rank an access path shape: lower is better.
fn rank(range: &KeyRange) -> u8 {
    use std::ops::Bound;
    match (&range.low, &range.high) {
        (Bound::Included(l), Bound::Included(h)) if l == h => 0, // equality
        (Bound::Unbounded, Bound::Unbounded) => 3,
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => 2, // half-open
        _ => 1,                                             // bounded range
    }
}

/// Choose an access path for scanning `schema` (referred to as `alias`)
/// under the optional `predicate`. Only conjuncts of the shape
/// `col op const`, `const op col` or `col BETWEEN const AND const` over
/// columns with an index are considered.
pub fn choose_access_path(
    schema: &TableSchema,
    alias: &str,
    predicate: Option<&Expr>,
    params: &[Value],
) -> Result<Option<AccessPath>> {
    let Some(pred) = predicate else {
        return Ok(None);
    };
    let mut best: Option<AccessPath> = None;
    let mut consider = |column: usize, range: KeyRange| {
        if schema.index_on(column).is_none() {
            return;
        }
        let better = match &best {
            None => true,
            Some(b) => rank(&range) < rank(&b.range),
        };
        if better {
            best = Some(AccessPath { column, range });
        }
    };

    for c in conjuncts(pred) {
        match c {
            Expr::Binary { op, left, right } => {
                let (col, constant, op_oriented) = if let Some(col) = column_of(left, alias, schema)
                {
                    if !is_const(right) {
                        continue;
                    }
                    (col, eval_const(right, params)?, *op)
                } else if let Some(col) = column_of(right, alias, schema) {
                    if !is_const(left) {
                        continue;
                    }
                    // Flip the operator: const op col ≡ col flipped-op const.
                    let flipped = match op {
                        BinaryOp::Lt => BinaryOp::Gt,
                        BinaryOp::LtEq => BinaryOp::GtEq,
                        BinaryOp::Gt => BinaryOp::Lt,
                        BinaryOp::GtEq => BinaryOp::LtEq,
                        other => *other,
                    };
                    (col, eval_const(left, params)?, flipped)
                } else {
                    continue;
                };
                if constant.is_null() {
                    continue; // NULL comparisons never match
                }
                let range = match op_oriented {
                    BinaryOp::Eq => KeyRange::eq(constant),
                    BinaryOp::Lt => KeyRange::less(constant, false),
                    BinaryOp::LtEq => KeyRange::less(constant, true),
                    BinaryOp::Gt => KeyRange::greater(constant, false),
                    BinaryOp::GtEq => KeyRange::greater(constant, true),
                    _ => continue,
                };
                consider(col, range);
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                if let Some(col) = column_of(expr, alias, schema) {
                    if is_const(low) && is_const(high) {
                        let lo = eval_const(low, params)?;
                        let hi = eval_const(high, params)?;
                        if !lo.is_null() && !hi.is_null() {
                            consider(col, KeyRange::between(lo, hi));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(best)
}

/// Detect an equi-join `left_expr = right_table.col` inside an ON
/// condition. Returns (expression over the left side, right column
/// ordinal) if found. Extra conjuncts are evaluated as residual filters by
/// the executor.
pub fn equi_join_key(
    on: &Expr,
    left_schema: &RowSchema,
    right_alias: &str,
    right_schema: &TableSchema,
) -> Option<(Expr, usize)> {
    let mut candidates: Vec<(Expr, usize)> = Vec::new();
    for c in conjuncts(on) {
        if let Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = c
        {
            // One side must be a genuine expression over the left relation
            // (pure literals are filters, not join keys), the other a
            // column of the right table.
            let left_in_left = resolves_in(left, left_schema) && has_column(left);
            if let (true, Some(col)) = (left_in_left, column_of(right, right_alias, right_schema)) {
                candidates.push(((**left).clone(), col));
                continue;
            }
            let right_in_left = resolves_in(right, left_schema) && has_column(right);
            if let (true, Some(col)) = (right_in_left, column_of(left, right_alias, right_schema)) {
                candidates.push(((**right).clone(), col));
            }
        }
    }
    // Prefer a key whose right column is indexed (enables the index
    // nested-loop join); otherwise any candidate works for the hash join.
    candidates
        .iter()
        .find(|(_, col)| right_schema.index_on(*col).is_some())
        .or_else(|| candidates.first())
        .cloned()
}

/// Does every column reference in `e` resolve in `schema`?
fn resolves_in(e: &Expr, schema: &RowSchema) -> bool {
    let mut ok = true;
    e.walk(&mut |sub| {
        if let Expr::Column { table, name } = sub {
            if schema.resolve(table.as_deref(), name).is_err() {
                ok = false;
            }
        }
    });
    ok
}

/// Does `e` contain at least one column reference?
fn has_column(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |sub| {
        if matches!(sub, Expr::Column { .. }) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::schema::{Column, DataType};
    use bcrdb_sql::parse_expression;

    fn schema() -> TableSchema {
        let mut s = TableSchema::new(
            "inv",
            vec![
                Column::new("id", DataType::Int),
                Column::new("supplier", DataType::Text),
                Column::new("amount", DataType::Float),
            ],
            vec![0],
        )
        .unwrap();
        s.add_index("idx_supplier", "supplier").unwrap();
        s
    }

    fn path(pred: &str, params: &[Value]) -> Option<AccessPath> {
        let e = parse_expression(pred).unwrap();
        choose_access_path(&schema(), "inv", Some(&e), params).unwrap()
    }

    #[test]
    fn equality_on_pk() {
        let p = path("id = 5", &[]).unwrap();
        assert_eq!(p.column, 0);
        assert_eq!(p.range, KeyRange::eq(Value::Int(5)));
    }

    #[test]
    fn param_and_flipped_comparisons() {
        let p = path("$1 = id", &[Value::Int(7)]).unwrap();
        assert_eq!(p.range, KeyRange::eq(Value::Int(7)));
        let p = path("10 > id", &[]).unwrap();
        assert_eq!(p.range, KeyRange::less(Value::Int(10), false));
    }

    #[test]
    fn between_and_range() {
        let p = path("id BETWEEN 2 AND 9", &[]).unwrap();
        assert_eq!(p.range, KeyRange::between(Value::Int(2), Value::Int(9)));
        let p = path("id >= 3 AND amount > 0", &[]).unwrap();
        assert_eq!(p.column, 0);
        assert_eq!(p.range, KeyRange::greater(Value::Int(3), true));
    }

    #[test]
    fn equality_preferred_over_range() {
        let p = path("supplier = 'acme' AND id > 3", &[]).unwrap();
        assert_eq!(p.column, 1, "equality on secondary index beats pk range");
        let p = path("id = 4 AND supplier = 'acme'", &[]).unwrap();
        // Both are equalities; the first conjunct wins (deterministic).
        assert_eq!(p.column, 0);
    }

    #[test]
    fn unindexed_or_unusable_predicates() {
        assert!(path("amount > 5.0", &[]).is_none(), "no index on amount");
        assert!(path("id + 1 = 5", &[]).is_none(), "not col-op-const shape");
        assert!(path("id = amount", &[]).is_none(), "both sides columns");
        assert!(path("id = NULL", &[]).is_none(), "null constant");
        let e = parse_expression("id = 1 OR id = 2").unwrap();
        assert!(choose_access_path(&schema(), "inv", Some(&e), &[])
            .unwrap()
            .is_none());
    }

    #[test]
    fn qualified_references_respect_alias() {
        let e = parse_expression("other.id = 5").unwrap();
        assert!(choose_access_path(&schema(), "inv", Some(&e), &[])
            .unwrap()
            .is_none());
        let e = parse_expression("inv.id = 5").unwrap();
        assert!(choose_access_path(&schema(), "inv", Some(&e), &[])
            .unwrap()
            .is_some());
    }

    #[test]
    fn equi_join_detection() {
        let left = RowSchema::new(vec![(Some("i".into()), "part_id".into())]);
        let right = schema();
        let on = parse_expression("i.part_id = inv.id").unwrap();
        let (key_expr, col) = equi_join_key(&on, &left, "inv", &right).unwrap();
        assert_eq!(col, 0);
        assert_eq!(key_expr, Expr::qualified("i", "part_id"));
        // Reversed orientation.
        let on = parse_expression("inv.id = i.part_id").unwrap();
        let (_, col) = equi_join_key(&on, &left, "inv", &right).unwrap();
        assert_eq!(col, 0);
        // Non-equi: none.
        let on = parse_expression("i.part_id < inv.id").unwrap();
        assert!(equi_join_key(&on, &left, "inv", &right).is_none());
    }
}
