//! Single-index access-path selection and equi-join key detection.
//!
//! The paper's rule (§4.3) — *all predicate reads must go through an index
//! in the execute-order-in-parallel flow* — makes index selection a
//! correctness feature, not just a performance one: the chosen index range
//! doubles as the SSI predicate lock. [`choose_access_path`] is the
//! single-index chooser used by UPDATE/DELETE target scans; SELECT scans
//! go through the richer [`crate::planner::plan_scan`] enumerator
//! (intersection, union, covering), which shares the sargable-conjunct
//! extraction here.
//!
//! Selection is cost-based over the snapshot-pinned statistics
//! ([`crate::stats::TableStatsView`]) with an explicit, documented
//! tie-break: **lowest estimated cost first, then lowest column
//! ordinal**. Both inputs are identical on every replica (the catalog and
//! the sealed stats ride the deterministic commit path), so every replica
//! picks the same path.

use bcrdb_common::error::Result;
use bcrdb_common::schema::TableSchema;
use bcrdb_common::value::Value;
use bcrdb_sql::ast::{BinaryOp, Expr};
use bcrdb_storage::index::KeyRange;

use crate::cost;
use crate::expr::{eval, Env, RowSchema};
use crate::stats::TableStatsView;

/// A chosen access path for one table scan.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessPath {
    /// Indexed column ordinal and the scan range.
    pub column: usize,
    /// Key range derived from the predicate.
    pub range: KeyRange,
}

/// Split an expression into its AND-conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(expr, &mut out);
    out
}

/// Is `e` a constant expression (literals/params only)? Those are safe to
/// evaluate at plan time.
pub(crate) fn is_const(e: &Expr) -> bool {
    let mut ok = true;
    e.walk(&mut |sub| {
        if matches!(sub, Expr::Column { .. }) {
            ok = false;
        }
        if let Expr::Function { name, .. } = sub {
            if bcrdb_sql::ast::is_aggregate_name(name) {
                ok = false;
            }
        }
    });
    ok
}

/// Evaluate a constant expression at plan time.
pub(crate) fn eval_const(e: &Expr, params: &[Value]) -> Result<Value> {
    let schema = RowSchema::default();
    let env = Env {
        schema: &schema,
        row: &[],
        params,
    };
    eval(e, &env)
}

/// Does a column expression refer to `alias` (or be unqualified) and name a
/// column of `schema`? Returns the ordinal.
fn column_of(e: &Expr, alias: &str, schema: &TableSchema) -> Option<usize> {
    if let Expr::Column { table, name } = e {
        if table.as_deref().is_none_or(|t| t == alias) {
            return schema.column_index(name);
        }
    }
    None
}

/// Rank an access path shape (stats-free structural fallback): lower is
/// better.
pub(crate) fn rank(range: &KeyRange) -> u8 {
    use std::ops::Bound;
    match (&range.low, &range.high) {
        (Bound::Included(l), Bound::Included(h)) if l == h => 0, // equality
        (Bound::Unbounded, Bound::Unbounded) => 3,
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => 2, // half-open
        _ => 1,                                             // bounded range
    }
}

/// Extract the sargable shape of one conjunct: `col op const`,
/// `const op col` or `col BETWEEN const AND const` over a column of
/// `schema` that has an index. Returns the column ordinal and key range.
pub(crate) fn sargable_conjunct(
    c: &Expr,
    alias: &str,
    schema: &TableSchema,
    params: &[Value],
) -> Result<Option<(usize, KeyRange)>> {
    match c {
        Expr::Binary { op, left, right } => {
            let (col, constant, op_oriented) = if let Some(col) = column_of(left, alias, schema) {
                if !is_const(right) {
                    return Ok(None);
                }
                (col, eval_const(right, params)?, *op)
            } else if let Some(col) = column_of(right, alias, schema) {
                if !is_const(left) {
                    return Ok(None);
                }
                // Flip the operator: const op col ≡ col flipped-op const.
                let flipped = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    other => *other,
                };
                (col, eval_const(left, params)?, flipped)
            } else {
                return Ok(None);
            };
            if constant.is_null() {
                return Ok(None); // NULL comparisons never match
            }
            let range = match op_oriented {
                BinaryOp::Eq => KeyRange::eq(constant),
                BinaryOp::Lt => KeyRange::less(constant, false),
                BinaryOp::LtEq => KeyRange::less(constant, true),
                BinaryOp::Gt => KeyRange::greater(constant, false),
                BinaryOp::GtEq => KeyRange::greater(constant, true),
                _ => return Ok(None),
            };
            if schema.index_on(col).is_none() {
                return Ok(None);
            }
            Ok(Some((col, range)))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let Some(col) = column_of(expr, alias, schema) else {
                return Ok(None);
            };
            if schema.index_on(col).is_none() || !is_const(low) || !is_const(high) {
                return Ok(None);
            }
            let lo = eval_const(low, params)?;
            let hi = eval_const(high, params)?;
            if lo.is_null() || hi.is_null() {
                return Ok(None);
            }
            Ok(Some((col, KeyRange::between(lo, hi))))
        }
        _ => Ok(None),
    }
}

/// Choose a single-index access path for scanning `schema` (referred to
/// as `alias`) under the optional `predicate`. Only conjuncts of the
/// shape `col op const`, `const op col` or `col BETWEEN const AND const`
/// over columns with an index are considered.
///
/// Tie-break (documented contract, see the
/// `equality_preferred_over_range` test): **lowest estimated cost wins;
/// equal costs break to the lowest column ordinal.** Cost comes from the
/// snapshot-pinned `stats` (or the fixed default selectivities when no
/// summary is sealed), so the choice is identical on every replica.
pub fn choose_access_path(
    schema: &TableSchema,
    alias: &str,
    predicate: Option<&Expr>,
    params: &[Value],
    stats: &TableStatsView,
) -> Result<Option<AccessPath>> {
    let Some(pred) = predicate else {
        return Ok(None);
    };
    let rows = cost::table_rows(stats);
    let mut best: Option<(AccessPath, f64)> = None;
    for c in conjuncts(pred) {
        let Some((column, range)) = sargable_conjunct(c, alias, schema, params)? else {
            continue;
        };
        let est = rows * cost::selectivity(stats, column, &range);
        let path_cost = cost::index_scan_cost(est, false);
        let better = match &best {
            None => true,
            Some((b, bcost)) => path_cost < *bcost || (path_cost == *bcost && column < b.column),
        };
        if better {
            best = Some((AccessPath { column, range }, path_cost));
        }
    }
    Ok(best.map(|(p, _)| p))
}

/// Detect an equi-join `left_expr = right_table.col` inside an ON
/// condition. Returns (expression over the left side, right column
/// ordinal) if found. Extra conjuncts are evaluated as residual filters by
/// the executor.
///
/// Candidates are ranked by the right table's statistics: indexed
/// columns first (they enable the index-nested-loop join), then the
/// highest distinct count (each probe matches the fewest rows), then the
/// lowest column ordinal. A single-column primary key counts as fully
/// distinct even before any summary is sealed.
pub fn equi_join_key(
    on: &Expr,
    left_schema: &RowSchema,
    right_alias: &str,
    right_schema: &TableSchema,
    right_stats: &TableStatsView,
) -> Option<(Expr, usize)> {
    let mut candidates: Vec<(Expr, usize)> = Vec::new();
    for c in conjuncts(on) {
        if let Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = c
        {
            // One side must be a genuine expression over the left relation
            // (pure literals are filters, not join keys), the other a
            // column of the right table.
            let left_in_left = resolves_in(left, left_schema) && has_column(left);
            if let (true, Some(col)) = (left_in_left, column_of(right, right_alias, right_schema)) {
                candidates.push(((**left).clone(), col));
                continue;
            }
            let right_in_left = resolves_in(right, left_schema) && has_column(right);
            if let (true, Some(col)) = (right_in_left, column_of(left, right_alias, right_schema)) {
                candidates.push(((**right).clone(), col));
            }
        }
    }
    // (indexed, distinct) score: bigger is better; ordinal breaks ties.
    let score = |col: usize| -> (bool, u64) {
        let indexed = right_schema.index_on(col).is_some();
        let distinct = if right_stats.is_unique(col) {
            u64::MAX
        } else {
            right_stats.column(col).map(|c| c.distinct).unwrap_or(0)
        };
        (indexed, distinct)
    };
    candidates
        .iter()
        .enumerate()
        .max_by(|(ia, (_, a)), (ib, (_, b))| {
            score(*a)
                .cmp(&score(*b))
                // Lower ordinal (then earlier conjunct) wins ties.
                .then_with(|| b.cmp(a))
                .then_with(|| ib.cmp(ia))
        })
        .map(|(_, c)| c.clone())
}

/// Does every column reference in `e` resolve in `schema`?
fn resolves_in(e: &Expr, schema: &RowSchema) -> bool {
    let mut ok = true;
    e.walk(&mut |sub| {
        if let Expr::Column { table, name } = sub {
            if schema.resolve(table.as_deref(), name).is_err() {
                ok = false;
            }
        }
    });
    ok
}

/// Does `e` contain at least one column reference?
fn has_column(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |sub| {
        if matches!(sub, Expr::Column { .. }) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::schema::{Column, DataType};
    use bcrdb_sql::parse_expression;

    fn schema() -> TableSchema {
        let mut s = TableSchema::new(
            "inv",
            vec![
                Column::new("id", DataType::Int),
                Column::new("supplier", DataType::Text),
                Column::new("amount", DataType::Float),
            ],
            vec![0],
        )
        .unwrap();
        s.add_index("idx_supplier", "supplier").unwrap();
        s
    }

    fn path(pred: &str, params: &[Value]) -> Option<AccessPath> {
        let e = parse_expression(pred).unwrap();
        let s = schema();
        choose_access_path(&s, "inv", Some(&e), params, &TableStatsView::empty(&s)).unwrap()
    }

    #[test]
    fn equality_on_pk() {
        let p = path("id = 5", &[]).unwrap();
        assert_eq!(p.column, 0);
        assert_eq!(p.range, KeyRange::eq(Value::Int(5)));
    }

    #[test]
    fn param_and_flipped_comparisons() {
        let p = path("$1 = id", &[Value::Int(7)]).unwrap();
        assert_eq!(p.range, KeyRange::eq(Value::Int(7)));
        let p = path("10 > id", &[]).unwrap();
        assert_eq!(p.range, KeyRange::less(Value::Int(10), false));
    }

    #[test]
    fn between_and_range() {
        let p = path("id BETWEEN 2 AND 9", &[]).unwrap();
        assert_eq!(p.range, KeyRange::between(Value::Int(2), Value::Int(9)));
        let p = path("id >= 3 AND amount > 0", &[]).unwrap();
        assert_eq!(p.column, 0);
        assert_eq!(p.range, KeyRange::greater(Value::Int(3), true));
    }

    #[test]
    fn equality_preferred_over_range() {
        // Documented tie-break: lowest estimated cost, then lowest column
        // ordinal. An equality estimates fewer rows than a half-open
        // range, so it costs less regardless of which conjunct came
        // first…
        let p = path("supplier = 'acme' AND id > 3", &[]).unwrap();
        assert_eq!(p.column, 1, "equality on secondary index beats pk range");
        // …and among equalities the unique pk estimates fewest rows.
        let p = path("id = 4 AND supplier = 'acme'", &[]).unwrap();
        assert_eq!(p.column, 0);
    }

    #[test]
    fn unindexed_or_unusable_predicates() {
        assert!(path("amount > 5.0", &[]).is_none(), "no index on amount");
        assert!(path("id + 1 = 5", &[]).is_none(), "not col-op-const shape");
        assert!(path("id = amount", &[]).is_none(), "both sides columns");
        assert!(path("id = NULL", &[]).is_none(), "null constant");
        // A disjunction is not a *single* access path — the SELECT
        // planner turns it into an index union instead
        // (`planner::tests::or_on_indexed_column_becomes_index_union`).
        let e = parse_expression("id = 1 OR id = 2").unwrap();
        let s = schema();
        assert!(
            choose_access_path(&s, "inv", Some(&e), &[], &TableStatsView::empty(&s))
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn qualified_references_respect_alias() {
        let s = schema();
        let e = parse_expression("other.id = 5").unwrap();
        assert!(
            choose_access_path(&s, "inv", Some(&e), &[], &TableStatsView::empty(&s))
                .unwrap()
                .is_none()
        );
        let e = parse_expression("inv.id = 5").unwrap();
        assert!(
            choose_access_path(&s, "inv", Some(&e), &[], &TableStatsView::empty(&s))
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn equi_join_detection() {
        let left = RowSchema::new(vec![(Some("i".into()), "part_id".into())]);
        let right = schema();
        let stats = TableStatsView::empty(&right);
        let on = parse_expression("i.part_id = inv.id").unwrap();
        let (key_expr, col) = equi_join_key(&on, &left, "inv", &right, &stats).unwrap();
        assert_eq!(col, 0);
        assert_eq!(key_expr, Expr::qualified("i", "part_id"));
        // Reversed orientation.
        let on = parse_expression("inv.id = i.part_id").unwrap();
        let (_, col) = equi_join_key(&on, &left, "inv", &right, &stats).unwrap();
        assert_eq!(col, 0);
        // Non-equi: none.
        let on = parse_expression("i.part_id < inv.id").unwrap();
        assert!(equi_join_key(&on, &left, "inv", &right, &stats).is_none());
    }

    #[test]
    fn equi_join_ranks_by_distinct_count() {
        let left = RowSchema::new(vec![
            (Some("l".into()), "a".into()),
            (Some("l".into()), "b".into()),
        ]);
        let right = schema();
        let stats = TableStatsView::empty(&right);
        // Both right columns are indexed; the unique pk (id) outranks the
        // secondary index even though the supplier conjunct comes first.
        let on = parse_expression("l.a = inv.supplier AND l.b = inv.id").unwrap();
        let (key_expr, col) = equi_join_key(&on, &left, "inv", &right, &stats).unwrap();
        assert_eq!(col, 0);
        assert_eq!(key_expr, Expr::qualified("l", "b"));
    }
}
