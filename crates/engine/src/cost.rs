//! The cost model: selectivity estimation and operator cost formulas.
//!
//! Costs are synthetic row-visit units, not microseconds — the only thing
//! that matters is the *ordering* of candidate plans, and that the
//! ordering is a pure function of the catalog and the sealed statistics
//! so every replica picks the same plan (the chosen plan shapes the SSI
//! predicate locks, §4.3). All arithmetic is straightforward IEEE f64
//! over identical inputs; ties are broken structurally by the planner,
//! never by float identity games.
//!
//! Estimation rules:
//!
//! * equality on a single-column primary key selects at most one row
//!   (schema fact, no statistics needed);
//! * equality on a column with a sealed summary selects `count/distinct`
//!   of its non-NULL rows (uniform-per-key assumption over exact
//!   distinct counts);
//! * ranges over numeric columns interpolate the requested interval
//!   against the sealed min/max;
//! * without a summary, fixed default selectivities apply — constants,
//!   so the fallback is as deterministic as the statistics path.

use std::ops::Bound;

use bcrdb_common::value::Value;
use bcrdb_storage::index::KeyRange;

use crate::stats::TableStatsView;

/// Assumed table cardinality when no summary is sealed yet.
pub const DEFAULT_TABLE_ROWS: f64 = 1000.0;
/// Equality selectivity without statistics (non-unique column).
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.05;
/// Range selectivity without statistics (or non-numeric bounds).
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 0.33;

/// Cost of one B-tree descent.
pub const INDEX_SEEK_COST: f64 = 2.0;
/// Cost per index entry touched.
pub const INDEX_ENTRY_COST: f64 = 0.2;
/// Cost per heap row faulted and cloned.
pub const HEAP_ROW_COST: f64 = 1.0;
/// Cost per row of a covering scan (key + rowid only; no row clone).
pub const COVERING_ROW_COST: f64 = 0.4;
/// Hash join: cost per right row inserted into the build table.
pub const HASH_BUILD_COST: f64 = 2.0;
/// Hash join: cost per left row probed.
pub const HASH_PROBE_COST: f64 = 0.5;
/// Sort: per-row, per-comparison-level factor (`n·log₂n·factor`).
pub const SORT_FACTOR: f64 = 0.2;
/// Sort-merge join: cost per row of the merge walk.
pub const MERGE_ROW_COST: f64 = 0.2;

/// Table cardinality for costing: the sealed row count, or the default.
pub fn table_rows(stats: &TableStatsView) -> f64 {
    stats.rows().map(|r| r as f64).unwrap_or(DEFAULT_TABLE_ROWS)
}

/// Fraction of the table's rows a single `column ∈ range` predicate
/// selects, in `[0, 1]`.
pub fn selectivity(stats: &TableStatsView, column: usize, range: &KeyRange) -> f64 {
    let rows = table_rows(stats).max(1.0);
    let is_eq = matches!(
        (&range.low, &range.high),
        (Bound::Included(l), Bound::Included(h)) if l == h
    );
    if is_eq {
        if stats.is_unique(column) {
            return (1.0 / rows).min(1.0);
        }
        if let Some(col) = stats.column(column) {
            if col.count == 0 {
                // No non-NULL keys: an equality matches nothing.
                return 0.0;
            }
            let per_key = col.count as f64 / col.distinct.max(1) as f64;
            return (per_key / rows).min(1.0);
        }
        return DEFAULT_EQ_SELECTIVITY;
    }
    if matches!(
        (&range.low, &range.high),
        (Bound::Unbounded, Bound::Unbounded)
    ) {
        return 1.0;
    }
    // Range: interpolate against sealed min/max when both are numeric.
    if let Some(col) = stats.column(column) {
        if let (Some(min), Some(max)) = (
            col.min.as_ref().and_then(numeric),
            col.max.as_ref().and_then(numeric),
        ) {
            let lo = match &range.low {
                Bound::Unbounded => min,
                Bound::Included(v) | Bound::Excluded(v) => match numeric(v) {
                    Some(f) => f.max(min),
                    None => return DEFAULT_RANGE_SELECTIVITY,
                },
            };
            let hi = match &range.high {
                Bound::Unbounded => max,
                Bound::Included(v) | Bound::Excluded(v) => match numeric(v) {
                    Some(f) => f.min(max),
                    None => return DEFAULT_RANGE_SELECTIVITY,
                },
            };
            if hi < lo {
                return 0.0;
            }
            if max > min {
                // Never claim less than one key's worth of rows for a
                // non-empty interval.
                let floor = 1.0 / rows;
                return ((hi - lo) / (max - min)).clamp(floor, 1.0);
            }
            // Degenerate domain (all keys equal): the interval either
            // contains that key or misses the table entirely.
            return if lo <= min && min <= hi { 1.0 } else { 0.0 };
        }
    }
    DEFAULT_RANGE_SELECTIVITY
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Cost of a full heap scan over `rows` rows.
pub fn full_scan_cost(rows: f64) -> f64 {
    rows * HEAP_ROW_COST
}

/// Cost of one index scan returning `est` rows. A covering scan skips
/// the heap-row clone.
pub fn index_scan_cost(est: f64, covering: bool) -> f64 {
    let per_row = INDEX_ENTRY_COST
        + if covering {
            COVERING_ROW_COST
        } else {
            HEAP_ROW_COST
        };
    INDEX_SEEK_COST + est * per_row
}

/// Cost of an intersection of index scans: every part walks its index
/// entries, but only the intersection faults heap rows.
pub fn intersect_cost(part_ests: &[f64], out_est: f64) -> f64 {
    let entries: f64 = part_ests.iter().sum();
    part_ests.len() as f64 * INDEX_SEEK_COST + entries * INDEX_ENTRY_COST + out_est * HEAP_ROW_COST
}

/// Cost of a union of index scans: every part walks its entries *and*
/// faults its heap rows (the union deduplicates row ids, not faults).
pub fn union_cost(part_ests: &[f64]) -> f64 {
    let rows: f64 = part_ests.iter().sum();
    part_ests.len() as f64 * INDEX_SEEK_COST + rows * (INDEX_ENTRY_COST + HEAP_ROW_COST)
}

/// `n·log₂(n)`-shaped sort cost.
pub fn sort_cost(n: f64) -> f64 {
    let n = n.max(0.0);
    n * n.max(2.0).log2() * SORT_FACTOR
}

/// Index nested-loop join: one index probe per left row, faulting the
/// estimated per-key match count.
pub fn inl_join_cost(left: f64, per_key: f64) -> f64 {
    left * (INDEX_SEEK_COST + per_key * (INDEX_ENTRY_COST + HEAP_ROW_COST))
}

/// Hash join: full right scan + build + probe.
pub fn hash_join_cost(left: f64, right: f64) -> f64 {
    right * HEAP_ROW_COST + right * HASH_BUILD_COST + left * HASH_PROBE_COST
}

/// Sort-merge join: full right scan + sort both sides + merge, minus the
/// downstream sort the merge order makes redundant when the query orders
/// by the join key (`order_credit` = estimated output rows, 0 otherwise).
pub fn sort_merge_join_cost(left: f64, right: f64, order_credit: f64) -> f64 {
    right * HEAP_ROW_COST + sort_cost(left) + sort_cost(right) + (left + right) * MERGE_ROW_COST
        - sort_cost(order_credit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::schema::{Column, DataType, TableSchema};
    use bcrdb_storage::stats::{ColumnSummary, TableSummary};

    fn schema() -> TableSchema {
        let mut s = TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("grp", DataType::Text),
            ],
            vec![0],
        )
        .unwrap();
        s.add_index("idx_grp", "grp").unwrap();
        s
    }

    fn view(rows: u64) -> TableStatsView {
        let summary = TableSummary {
            rows,
            columns: vec![
                (
                    0,
                    ColumnSummary {
                        distinct: rows,
                        count: rows,
                        min: Some(Value::Int(1)),
                        max: Some(Value::Int(rows as i64)),
                    },
                ),
                (
                    1,
                    ColumnSummary {
                        distinct: 10,
                        count: rows,
                        min: Some(Value::Text("a".into())),
                        max: Some(Value::Text("j".into())),
                    },
                ),
            ],
        };
        TableStatsView::with_summary(&schema(), summary)
    }

    #[test]
    fn pk_equality_selects_one_row() {
        let v = view(200);
        let s = selectivity(&v, 0, &KeyRange::eq(Value::Int(7)));
        assert!((s - 1.0 / 200.0).abs() < 1e-12);
        // Unique even without a sealed summary.
        let empty = TableStatsView::empty(&schema());
        let s = selectivity(&empty, 0, &KeyRange::eq(Value::Int(7)));
        assert!((s - 1.0 / DEFAULT_TABLE_ROWS).abs() < 1e-12);
    }

    #[test]
    fn equality_uses_distinct_counts() {
        let v = view(200);
        // 10 distinct groups over 200 rows → 20 rows per key → 0.1.
        let s = selectivity(&v, 1, &KeyRange::eq(Value::Text("c".into())));
        assert!((s - 0.1).abs() < 1e-12);
    }

    #[test]
    fn numeric_ranges_interpolate() {
        let v = view(100); // id spans 1..=100
        let s = selectivity(&v, 0, &KeyRange::between(Value::Int(1), Value::Int(50)));
        assert!((s - 49.0 / 99.0).abs() < 1e-12);
        // Out-of-domain ranges select nothing.
        let s = selectivity(&v, 0, &KeyRange::greater(Value::Int(500), true));
        assert_eq!(s, 0.0);
        // Text bounds fall back to the default.
        let s = selectivity(&v, 1, &KeyRange::greater(Value::Text("d".into()), true));
        assert_eq!(s, DEFAULT_RANGE_SELECTIVITY);
    }

    #[test]
    fn covering_scans_cost_less() {
        assert!(index_scan_cost(50.0, true) < index_scan_cost(50.0, false));
    }

    #[test]
    fn order_credit_flips_hash_vs_sort_merge() {
        let (n, m) = (100.0, 100.0);
        assert!(hash_join_cost(n, m) < sort_merge_join_cost(n, m, 0.0));
        assert!(sort_merge_join_cost(n, m, n) < hash_join_cost(n, m));
    }
}
