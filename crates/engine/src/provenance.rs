//! Provenance queries (§4.2, Table 3).
//!
//! The paper introduces a special read-only query class that "can see all
//! committed rows present in tables irrespective of whether it is inactive
//! (i.e., marked with xmax) or active". Here that is the `HISTORY(table)`
//! table function: it scans *every committed version* up to the reader's
//! snapshot height and exposes five system columns alongside the table's
//! own columns:
//!
//! | column           | meaning                                          |
//! |------------------|--------------------------------------------------|
//! | `_row_id`        | logical row identity across versions             |
//! | `xmin`           | local id of the creating transaction             |
//! | `xmax`           | local id of the deleting transaction (or NULL)   |
//! | `_creator_block` | block that committed this version                |
//! | `_deleter_block` | block that deleted this version (or NULL)        |
//!
//! Joining `HISTORY(t)` with the node's ledger table (which maps local
//! transaction ids to users, contracts and block numbers) reproduces the
//! audit queries of Table 3.

use bcrdb_common::error::Result;
use bcrdb_common::value::{Row, Value};
use bcrdb_sql::ast::TableRef;
use bcrdb_storage::catalog::Catalog;
use bcrdb_txn::context::TxnCtx;

use crate::expr::RowSchema;

/// Names of the system columns appended by `HISTORY(t)`.
pub const SYSTEM_COLUMN_NAMES: [&str; 5] = [
    "_row_id",
    "xmin",
    "xmax",
    "_creator_block",
    "_deleter_block",
];

/// Scan the full committed version history of a table.
pub fn history_scan(
    catalog: &Catalog,
    ctx: &TxnCtx,
    tref: &TableRef,
) -> Result<(RowSchema, Vec<Row>)> {
    let table = catalog.get(&tref.name)?;
    let alias = tref.effective_name().to_string();
    let table_schema = table.schema();

    let mut names: Vec<String> = table_schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    names.extend(SYSTEM_COLUMN_NAMES.iter().map(|s| s.to_string()));
    let schema = RowSchema::for_table(&alias, &names);

    let height = ctx.snapshot.height;
    let mut keyed: Vec<((u64, u64), Row)> = Vec::new();
    for version in table.all_versions() {
        let st = version.state();
        if st.aborted {
            continue;
        }
        let Some(creator) = st.creator_block else {
            continue;
        };
        if creator > height {
            continue;
        }
        let mut row = version.data.clone();
        row.push(Value::Int(st.row_id.0 as i64));
        row.push(Value::Int(version.xmin.0 as i64));
        row.push(match st.xmax_committed {
            // Deletions beyond the snapshot height are not yet visible.
            Some(tx) if st.deleter_block.is_some_and(|db| db <= height) => Value::Int(tx.0 as i64),
            _ => Value::Null,
        });
        row.push(Value::Int(creator as i64));
        row.push(match st.deleter_block {
            Some(db) if db <= height => Value::Int(db as i64),
            _ => Value::Null,
        });
        keyed.push(((st.row_id.0, creator), row));
    }
    // Deterministic order: by logical row, then by version age.
    keyed.sort_by_key(|(k, _)| *k);
    Ok((schema, keyed.into_iter().map(|(_, r)| r).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::schema::{Column, DataType, TableSchema};
    use bcrdb_storage::snapshot::ScanMode;
    use bcrdb_txn::ssi::{Flow, SsiManager};
    use std::sync::Arc;

    fn setup() -> (Arc<SsiManager>, Catalog) {
        let mgr = Arc::new(SsiManager::new());
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableSchema::new(
                    "inv",
                    vec![
                        Column::new("id", DataType::Int),
                        Column::new("amt", DataType::Int),
                    ],
                    vec![0],
                )
                .unwrap(),
            )
            .unwrap();
        (mgr, catalog)
    }

    fn tref() -> TableRef {
        TableRef {
            name: "inv".into(),
            alias: Some("h".into()),
            history: true,
        }
    }

    #[test]
    fn history_exposes_all_versions_with_system_columns() {
        let (mgr, catalog) = setup();
        let table = catalog.get("inv").unwrap();

        // Block 1: insert. Block 2: update.
        let t1 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t1.insert(&table, vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        assert!(t1.apply_commit(1, 0, Flow::OrderThenExecute).is_committed());
        let t2 = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        let target = t2.scan(&table, None).unwrap()[0].clone();
        t2.update(&table, &target, vec![Value::Int(1), Value::Int(150)])
            .unwrap();
        assert!(t2.apply_commit(2, 0, Flow::OrderThenExecute).is_committed());

        let reader = TxnCtx::read_only(&mgr, 2);
        let (schema, rows) = history_scan(&catalog, &reader, &tref()).unwrap();
        assert_eq!(schema.arity(), 2 + 5);
        assert_eq!(rows.len(), 2, "both versions visible to provenance");
        // Row layout: id, amt, _row_id, xmin, xmax, _creator_block,
        // _deleter_block. First version: created at 1, deleted at 2.
        assert_eq!(rows[0][1], Value::Int(100));
        assert_eq!(rows[0][4], Value::Int(t2.id.0 as i64)); // xmax
        assert_eq!(rows[0][5], Value::Int(1)); // _creator_block
        assert_eq!(rows[0][6], Value::Int(2)); // _deleter_block
                                               // Second version: created at 2, live.
        assert_eq!(rows[1][1], Value::Int(150));
        assert_eq!(rows[1][4], Value::Null);
        assert_eq!(rows[1][6], Value::Null);
        // Same logical row id for both versions.
        assert_eq!(rows[0][2], rows[1][2]);
    }

    #[test]
    fn history_respects_snapshot_height() {
        let (mgr, catalog) = setup();
        let table = catalog.get("inv").unwrap();
        let t1 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t1.insert(&table, vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        assert!(t1.apply_commit(1, 0, Flow::OrderThenExecute).is_committed());
        let t2 = TxnCtx::begin(&mgr, 1, ScanMode::Relaxed);
        let target = t2.scan(&table, None).unwrap()[0].clone();
        t2.delete(&table, &target).unwrap();
        assert!(t2.apply_commit(2, 0, Flow::OrderThenExecute).is_committed());

        // At height 1 the deletion is not visible yet: xmax/deleter NULL.
        let r1 = TxnCtx::read_only(&mgr, 1);
        let (_, rows) = history_scan(&catalog, &r1, &tref()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][4], Value::Null);
        assert_eq!(rows[0][6], Value::Null);
        // At height 2 the full lifecycle is visible.
        let r2 = TxnCtx::read_only(&mgr, 2);
        let (_, rows) = history_scan(&catalog, &r2, &tref()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][6], Value::Int(2));
        // At height 0 nothing existed.
        let r0 = TxnCtx::read_only(&mgr, 0);
        let (_, rows) = history_scan(&catalog, &r0, &tref()).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn aborted_and_pending_versions_hidden() {
        let (mgr, catalog) = setup();
        let table = catalog.get("inv").unwrap();
        let t1 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t1.insert(&table, vec![Value::Int(1), Value::Int(1)])
            .unwrap();
        t1.rollback();
        let t2 = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        t2.insert(&table, vec![Value::Int(2), Value::Int(2)])
            .unwrap();
        // t2 still pending.
        let r = TxnCtx::read_only(&mgr, 5);
        let (_, rows) = history_scan(&catalog, &r, &tref()).unwrap();
        assert!(rows.is_empty());
    }
}
