//! Contract-level access control (§3.7).
//!
//! The paper keeps the database's native access-control machinery and adds
//! a network-level layer: system smart contracts are admin-only, and user
//! contracts carry a policy fixed at deploy time ("access control policies
//! need to be embedded within a smart contract itself"). The policy is
//! checked on every node after signature verification, using the verified
//! certificate's organization and role.

use std::collections::BTreeMap;

use bcrdb_common::error::{AbortReason, Error, Result};
use bcrdb_crypto::identity::{Certificate, Role};
use parking_lot::RwLock;

/// Who may invoke a contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessPolicy {
    /// Only organization admins (system contracts).
    AdminOnly,
    /// Any registered client or admin.
    AnyClient,
    /// Clients/admins of the listed organizations only.
    Orgs(Vec<String>),
}

impl AccessPolicy {
    /// Does `cert` satisfy this policy?
    pub fn permits(&self, cert: &Certificate) -> bool {
        let participant = matches!(cert.role, Role::Admin | Role::Client);
        match self {
            AccessPolicy::AdminOnly => cert.role == Role::Admin,
            AccessPolicy::AnyClient => participant,
            AccessPolicy::Orgs(orgs) => participant && orgs.contains(&cert.org),
        }
    }
}

/// Per-contract access policies on one node.
#[derive(Default)]
pub struct AccessController {
    policies: RwLock<BTreeMap<String, AccessPolicy>>,
}

impl AccessController {
    /// Empty controller.
    pub fn new() -> AccessController {
        AccessController::default()
    }

    /// Set the policy for a contract (at deploy time).
    pub fn set_policy(&self, contract: impl Into<String>, policy: AccessPolicy) {
        self.policies.write().insert(contract.into(), policy);
    }

    /// Remove a contract's policy (when the contract is dropped).
    pub fn remove(&self, contract: &str) {
        self.policies.write().remove(contract);
    }

    /// The policy for a contract; contracts without an explicit policy
    /// default to [`AccessPolicy::AnyClient`].
    pub fn policy_for(&self, contract: &str) -> AccessPolicy {
        self.policies
            .read()
            .get(contract)
            .cloned()
            .unwrap_or(AccessPolicy::AnyClient)
    }

    /// Check an invocation; returns an access-denied abort on failure.
    pub fn check(&self, contract: &str, cert: &Certificate) -> Result<()> {
        if self.policy_for(contract).permits(cert) {
            Ok(())
        } else {
            Err(Error::Abort(AbortReason::AccessDenied(format!(
                "user {} (org {}, role {}) may not invoke {contract}",
                cert.name, cert.org, cert.role
            ))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_crypto::identity::{KeyPair, PublicKey, Scheme};

    fn cert(name: &str, org: &str, role: Role) -> Certificate {
        // A throwaway key: policies never look at the key itself.
        let _ = KeyPair::generate(name, b"seed", Scheme::Sim);
        Certificate {
            name: name.into(),
            org: org.into(),
            role,
            public_key: PublicKey::Sim([0u8; 32]),
        }
    }

    #[test]
    fn admin_only_policy() {
        let p = AccessPolicy::AdminOnly;
        assert!(p.permits(&cert("org1/admin", "org1", Role::Admin)));
        assert!(!p.permits(&cert("org1/alice", "org1", Role::Client)));
        assert!(!p.permits(&cert("org1/orderer", "org1", Role::Orderer)));
    }

    #[test]
    fn org_scoped_policy() {
        let p = AccessPolicy::Orgs(vec!["org1".into(), "org2".into()]);
        assert!(p.permits(&cert("org1/alice", "org1", Role::Client)));
        assert!(p.permits(&cert("org2/admin", "org2", Role::Admin)));
        assert!(!p.permits(&cert("org3/carol", "org3", Role::Client)));
    }

    #[test]
    fn controller_checks_and_defaults() {
        let ac = AccessController::new();
        ac.set_policy("deploy", AccessPolicy::AdminOnly);
        let admin = cert("org1/admin", "org1", Role::Admin);
        let client = cert("org1/alice", "org1", Role::Client);
        assert!(ac.check("deploy", &admin).is_ok());
        let err = ac.check("deploy", &client).unwrap_err();
        assert!(matches!(err, Error::Abort(AbortReason::AccessDenied(_))));
        // Unknown contract defaults to AnyClient.
        assert!(ac.check("user_contract", &client).is_ok());
        // Peers/orderers are never invokers.
        let peer = cert("org1/peer", "org1", Role::Peer);
        assert!(ac.check("user_contract", &peer).is_err());
        ac.remove("deploy");
        assert_eq!(ac.policy_for("deploy"), AccessPolicy::AnyClient);
    }
}
