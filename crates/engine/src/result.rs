//! Query results.

use bcrdb_common::value::{Row, Value};

/// The result of a SELECT (or the summary of a DML statement).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows in deterministic output order.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Empty result with the given column names.
    pub fn empty(columns: Vec<String>) -> QueryResult {
        QueryResult { columns, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar of a one-row/one-column result, if so shaped.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => self.rows[0].first(),
            _ => None,
        }
    }

    /// Render as a simple aligned text table (for examples and debugging).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.display_raw();
                        if i < widths.len() && s.len() > widths[i] {
                            widths[i] = s.len();
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in rendered {
            for (i, cell) in row.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                out.push_str(&format!("{cell:<w$}  "));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_extraction() {
        let r = QueryResult { columns: vec!["n".into()], rows: vec![vec![Value::Int(7)]] };
        assert_eq!(r.scalar(), Some(&Value::Int(7)));
        let r2 = QueryResult { columns: vec!["a".into(), "b".into()], rows: vec![] };
        assert!(r2.scalar().is_none());
        assert!(r2.is_empty());
    }

    #[test]
    fn table_rendering() {
        let r = QueryResult {
            columns: vec!["id".into(), "name".into()],
            rows: vec![vec![Value::Int(1), Value::Text("alice".into())]],
        };
        let s = r.to_table_string();
        assert!(s.contains("id"));
        assert!(s.contains("alice"));
    }
}
