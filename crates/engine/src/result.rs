//! Query results and typed row decoding.
//!
//! [`QueryResult`] is the raw wire shape (column names + rows of
//! [`Value`]s). The typed layer on top — [`FromRow`], [`RowRef`],
//! [`QueryResult::rows_as`] — is what the session API exposes so
//! applications never hand-decode `Vec<Value>`:
//!
//! ```ignore
//! let accounts: Vec<(i64, String, f64)> = result.rows_as()?;
//! let balance: f64 = result.row(0).unwrap().get("balance")?;
//! ```

use bcrdb_common::error::{Error, Result};
use bcrdb_common::value::{FromValue, Row, Value};

/// The result of a SELECT (or the summary of a DML statement).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows in deterministic output order.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Empty result with the given column names.
    pub fn empty(columns: Vec<String>) -> QueryResult {
        QueryResult {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar of a one-row/one-column result, if so shaped.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => self.rows[0].first(),
            _ => None,
        }
    }

    /// The single scalar, decoded into `T`. Errors when the result is not
    /// exactly one row by one column, or the value has the wrong type.
    pub fn scalar_as<T: FromValue>(&self) -> Result<T> {
        let v = self.scalar().ok_or_else(|| {
            Error::Decode(format!(
                "expected a 1x1 result, got {} rows x {} columns",
                self.rows.len(),
                self.columns.len()
            ))
        })?;
        T::from_value(v)
    }

    /// Ordinal of a named output column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// A typed view of the `i`-th row, or `None` past the end.
    pub fn row(&self, i: usize) -> Option<RowRef<'_>> {
        self.rows.get(i).map(|row| RowRef {
            columns: &self.columns,
            row,
        })
    }

    /// Iterate over typed row views.
    pub fn iter_rows(&self) -> impl Iterator<Item = RowRef<'_>> {
        self.rows.iter().map(|row| RowRef {
            columns: &self.columns,
            row,
        })
    }

    /// Decode every row into `T` (tuples of [`FromValue`] types, or any
    /// custom [`FromRow`] impl).
    pub fn rows_as<T: FromRow>(&self) -> Result<Vec<T>> {
        self.rows
            .iter()
            .map(|row| T::from_row(&self.columns, row))
            .collect()
    }

    /// Decode the single row of a one-row result into `T`.
    pub fn one_as<T: FromRow>(&self) -> Result<T> {
        if self.rows.len() != 1 {
            return Err(Error::Decode(format!(
                "expected exactly one row, got {}",
                self.rows.len()
            )));
        }
        T::from_row(&self.columns, &self.rows[0])
    }

    /// Render as a simple aligned text table (for examples and debugging).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.display_raw();
                        if i < widths.len() && s.len() > widths[i] {
                            widths[i] = s.len();
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in rendered {
            for (i, cell) in row.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                out.push_str(&format!("{cell:<w$}  "));
            }
            out.push('\n');
        }
        out
    }
}

/// A borrowed row paired with its column names, for by-name typed access.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    columns: &'a [String],
    row: &'a [Value],
}

impl<'a> RowRef<'a> {
    /// Decode the named column into `T`.
    pub fn get<T: FromValue>(&self, column: &str) -> Result<T> {
        let i = self
            .columns
            .iter()
            .position(|c| c == column)
            .ok_or_else(|| {
                Error::Decode(format!(
                    "unknown column {column:?} (have: {})",
                    self.columns.join(", ")
                ))
            })?;
        T::from_value(&self.row[i])
    }

    /// Decode the column at ordinal `i` into `T`.
    pub fn at<T: FromValue>(&self, i: usize) -> Result<T> {
        let v = self.row.get(i).ok_or_else(|| {
            Error::Decode(format!(
                "column ordinal {i} out of range ({})",
                self.row.len()
            ))
        })?;
        T::from_value(v)
    }

    /// The raw values of this row.
    pub fn values(&self) -> &'a [Value] {
        self.row
    }

    /// The output column names.
    pub fn columns(&self) -> &'a [String] {
        self.columns
    }
}

/// Decode a whole row into a typed value — the `libpq`-style typed-row
/// trait of the session API. Implemented for tuples of [`FromValue`]
/// types (positional) and derivable by hand for named structs.
pub trait FromRow: Sized {
    /// Decode one row given its output column names.
    fn from_row(columns: &[String], row: &[Value]) -> Result<Self>;
}

impl FromRow for Row {
    fn from_row(_columns: &[String], row: &[Value]) -> Result<Row> {
        Ok(row.to_vec())
    }
}

impl<T: FromValue> FromRow for (T,) {
    fn from_row(columns: &[String], row: &[Value]) -> Result<(T,)> {
        check_arity(columns, row, 1)?;
        Ok((T::from_value(&row[0])?,))
    }
}

fn check_arity(_columns: &[String], row: &[Value], want: usize) -> Result<()> {
    if row.len() != want {
        return Err(Error::Decode(format!(
            "row has {} columns, tuple expects {want}",
            row.len()
        )));
    }
    Ok(())
}

macro_rules! impl_from_row_tuple {
    ($n:expr => $($t:ident : $i:tt),+) => {
        impl<$($t: FromValue),+> FromRow for ($($t,)+) {
            fn from_row(columns: &[String], row: &[Value]) -> Result<($($t,)+)> {
                check_arity(columns, row, $n)?;
                Ok(($($t::from_value(&row[$i])?,)+))
            }
        }
    };
}

impl_from_row_tuple!(2 => A:0, B:1);
impl_from_row_tuple!(3 => A:0, B:1, C:2);
impl_from_row_tuple!(4 => A:0, B:1, C:2, D:3);
impl_from_row_tuple!(5 => A:0, B:1, C:2, D:3, E:4);
impl_from_row_tuple!(6 => A:0, B:1, C:2, D:3, E:4, F:5);
impl_from_row_tuple!(7 => A:0, B:1, C:2, D:3, E:4, F:5, G:6);
impl_from_row_tuple!(8 => A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_extraction() {
        let r = QueryResult {
            columns: vec!["n".into()],
            rows: vec![vec![Value::Int(7)]],
        };
        assert_eq!(r.scalar(), Some(&Value::Int(7)));
        let r2 = QueryResult {
            columns: vec!["a".into(), "b".into()],
            rows: vec![],
        };
        assert!(r2.scalar().is_none());
        assert!(r2.is_empty());
    }

    fn sample() -> QueryResult {
        QueryResult {
            columns: vec!["id".into(), "name".into(), "balance".into()],
            rows: vec![
                vec![
                    Value::Int(1),
                    Value::Text("alice".into()),
                    Value::Float(100.0),
                ],
                vec![Value::Int(2), Value::Text("bob".into()), Value::Float(25.5)],
            ],
        }
    }

    #[test]
    fn rows_as_tuples() {
        let r = sample();
        let typed: Vec<(i64, String, f64)> = r.rows_as().unwrap();
        assert_eq!(typed[0], (1, "alice".to_string(), 100.0));
        assert_eq!(typed[1].2, 25.5);
        // Arity mismatch is a decode error.
        assert!(matches!(
            r.rows_as::<(i64, String)>(),
            Err(Error::Decode(_))
        ));
        // Type mismatch is a decode error.
        assert!(matches!(
            r.rows_as::<(String, String, f64)>(),
            Err(Error::Decode(_))
        ));
    }

    #[test]
    fn row_ref_by_name_and_ordinal() {
        let r = sample();
        let row = r.row(1).unwrap();
        assert_eq!(row.get::<i64>("id").unwrap(), 2);
        assert_eq!(row.get::<String>("name").unwrap(), "bob");
        assert_eq!(row.at::<f64>(2).unwrap(), 25.5);
        assert!(matches!(row.get::<i64>("missing"), Err(Error::Decode(_))));
        assert!(r.row(5).is_none());
        assert_eq!(r.iter_rows().count(), 2);
    }

    #[test]
    fn scalar_as_typed() {
        let r = QueryResult {
            columns: vec!["n".into()],
            rows: vec![vec![Value::Int(7)]],
        };
        assert_eq!(r.scalar_as::<i64>().unwrap(), 7);
        assert!(matches!(sample().scalar_as::<i64>(), Err(Error::Decode(_))));
    }

    #[test]
    fn one_as_requires_exactly_one_row() {
        let r = QueryResult {
            columns: vec!["n".into()],
            rows: vec![vec![Value::Int(7)]],
        };
        assert_eq!(r.one_as::<(i64,)>().unwrap(), (7,));
        assert!(sample().one_as::<(i64, String, f64)>().is_err());
    }

    #[test]
    fn table_rendering() {
        let r = QueryResult {
            columns: vec!["id".into(), "name".into()],
            rows: vec![vec![Value::Int(1), Value::Text("alice".into())]],
        };
        let s = r.to_table_string();
        assert!(s.contains("id"));
        assert!(s.contains("alice"));
    }
}
