#![warn(missing_docs)]
//! # bcrdb-engine
//!
//! The SQL execution engine: expression evaluation, planning (index
//! selection honoring the paper's "predicate reads must use an index" rule
//! for the execute-order-in-parallel flow, §4.3), the statement executor
//! (scans, joins, aggregation, ordering), the deterministic smart-contract
//! engine (the paper's constrained PL/SQL procedures, §2/§4.3), provenance
//! queries over full row history (§4.2, Table 3) and contract-level access
//! control (§3.7).
//!
//! The engine is *transactional glue*: it parses/validates nothing about
//! blocks or consensus — it executes statements against a
//! [`bcrdb_storage::Catalog`] through a [`bcrdb_txn::TxnCtx`], buffering
//! DDL as [`CatalogOp`]s that the node applies during the serial commit
//! phase (so every replica's catalog changes at the same block position).

pub mod access;
pub mod cost;
pub mod exec;
pub mod expr;
pub mod plan;
pub mod planner;
pub mod prepared;
pub mod procedures;
pub mod provenance;
pub mod result;
pub mod stats;

pub use access::{AccessController, AccessPolicy};
pub use exec::{CatalogOp, Executor, StatementEffect};
pub use planner::{PlanNode, ScanPlan};
pub use prepared::PreparedQuery;
pub use procedures::{ContractRegistry, Invocation};
pub use result::{FromRow, QueryResult, RowRef};
pub use stats::TableStatsView;
