//! The statement executor.
//!
//! Executes parsed statements against a [`Catalog`] through a transaction
//! context. SELECT supports index and full scans, index-nested-loop and
//! hash joins, grouping with aggregates, HAVING, ORDER BY and LIMIT — the
//! surface the paper's three evaluation contracts need (Appendix A) plus
//! provenance scans (§4.2).
//!
//! DDL statements do **not** mutate the catalog immediately: they are
//! returned as [`CatalogOp`]s that the block processor applies during the
//! serial commit phase, so the catalog changes at the same block position
//! on every replica.

use std::collections::HashMap;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::schema::{Column, TableSchema};
use bcrdb_common::value::{Row, Value};
use bcrdb_crypto::identity::{Certificate, CertificateRegistry};
use bcrdb_sql::ast::{
    BinaryOp, Expr, FromClause, FunctionDef, InsertSource, Join, OrderItem, SelectItem, SelectStmt,
    Statement, TableRef,
};
use bcrdb_storage::catalog::Catalog;
use bcrdb_storage::index::KeyRange;
use bcrdb_txn::context::TxnCtx;

use crate::expr::{eval, Env, RowSchema};
use crate::plan::{choose_access_path, equi_join_key};
use crate::procedures::ContractRegistry;
use crate::provenance;
use crate::result::QueryResult;

/// A deferred catalog mutation, applied at commit time.
#[derive(Clone, Debug, PartialEq)]
pub enum CatalogOp {
    /// CREATE TABLE.
    CreateTable(TableSchema),
    /// CREATE INDEX.
    CreateIndex {
        /// Target table.
        table: String,
        /// Index name.
        index: String,
        /// Indexed column name.
        column: String,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS flag.
        if_exists: bool,
    },
    /// CREATE [OR REPLACE] FUNCTION (deploying a smart contract).
    CreateFunction(FunctionDef),
    /// DROP FUNCTION.
    DropFunction {
        /// Contract name.
        name: String,
    },
    /// Register a user certificate (user-management system contracts,
    /// §3.7: "three more system smart contracts to create, delete, and
    /// update users with cryptographic credentials").
    RegisterCert(Certificate),
    /// Revoke a user certificate.
    RevokeCert {
        /// Certificate (user) name.
        name: String,
    },
}

/// Apply a catalog op (serial commit phase only).
pub fn apply_catalog_op(
    catalog: &Catalog,
    contracts: &ContractRegistry,
    certs: &CertificateRegistry,
    op: &CatalogOp,
) -> Result<()> {
    match op {
        CatalogOp::CreateTable(schema) => {
            catalog.create_table(schema.clone())?;
            Ok(())
        }
        CatalogOp::CreateIndex {
            table,
            index,
            column,
        } => catalog.get(table)?.add_index(index, column),
        CatalogOp::DropTable { name, if_exists } => catalog.drop_table(name, *if_exists),
        CatalogOp::CreateFunction(def) => contracts.install(def.clone()),
        CatalogOp::DropFunction { name } => contracts.remove(name),
        CatalogOp::RegisterCert(cert) => {
            certs.register(cert.clone());
            Ok(())
        }
        CatalogOp::RevokeCert { name } => {
            certs.revoke(name);
            Ok(())
        }
    }
}

/// What a statement did.
#[derive(Clone, Debug)]
pub enum StatementEffect {
    /// SELECT output.
    Rows(QueryResult),
    /// DML affected-row count.
    Count(usize),
    /// Deferred DDL.
    Catalog(CatalogOp),
}

impl StatementEffect {
    /// The query result, if this was a SELECT.
    pub fn rows(&self) -> Option<&QueryResult> {
        match self {
            StatementEffect::Rows(r) => Some(r),
            _ => None,
        }
    }
}

/// Statement executor bound to one transaction.
pub struct Executor<'a> {
    /// Table catalog.
    pub catalog: &'a Catalog,
    /// Transaction context (data access + conflict tracking).
    pub ctx: &'a TxnCtx,
    /// `$n` parameters.
    pub params: &'a [Value],
}

type Dataset = (RowSchema, Vec<Row>);

impl<'a> Executor<'a> {
    /// Create an executor.
    pub fn new(catalog: &'a Catalog, ctx: &'a TxnCtx, params: &'a [Value]) -> Executor<'a> {
        Executor {
            catalog,
            ctx,
            params,
        }
    }

    /// Execute one statement.
    pub fn execute(&self, stmt: &Statement) -> Result<StatementEffect> {
        match stmt {
            Statement::Select(sel) => Ok(StatementEffect::Rows(self.run_select(sel)?)),
            Statement::Insert {
                table,
                columns,
                source,
            } => Ok(StatementEffect::Count(self.run_insert(
                table,
                columns.as_deref(),
                source,
            )?)),
            Statement::Update {
                table,
                assignments,
                predicate,
            } => Ok(StatementEffect::Count(self.run_update(
                table,
                assignments,
                predicate.as_ref(),
            )?)),
            Statement::Delete { table, predicate } => Ok(StatementEffect::Count(
                self.run_delete(table, predicate.as_ref())?,
            )),
            Statement::CreateTable {
                name,
                columns,
                primary_key,
            } => Ok(StatementEffect::Catalog(build_create_table(
                name,
                columns,
                primary_key,
            )?)),
            Statement::CreateIndex {
                name,
                table,
                column,
            } => Ok(StatementEffect::Catalog(CatalogOp::CreateIndex {
                table: table.clone(),
                index: name.clone(),
                column: column.clone(),
            })),
            Statement::DropTable { name, if_exists } => {
                Ok(StatementEffect::Catalog(CatalogOp::DropTable {
                    name: name.clone(),
                    if_exists: *if_exists,
                }))
            }
            Statement::CreateFunction(def) => Ok(StatementEffect::Catalog(
                CatalogOp::CreateFunction(def.clone()),
            )),
            Statement::DropFunction { name } => {
                Ok(StatementEffect::Catalog(CatalogOp::DropFunction {
                    name: name.clone(),
                }))
            }
        }
    }

    // ------------------------------------------------------------ SELECT

    /// Execute a SELECT.
    pub fn run_select(&self, sel: &SelectStmt) -> Result<QueryResult> {
        let (schema, mut rows) = match &sel.from {
            None => (RowSchema::default(), vec![Vec::new()]),
            Some(fc) => self.run_from(fc, sel.predicate.as_ref())?,
        };

        // Residual WHERE filter.
        if let Some(pred) = &sel.predicate {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                let env = Env {
                    schema: &schema,
                    row: &row,
                    params: self.params,
                };
                if eval(pred, &env)?.is_truthy() {
                    kept.push(row);
                }
            }
            rows = kept;
        }

        let has_aggregates = !sel.group_by.is_empty()
            || sel.projections.iter().any(|p| match p {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
            || sel.having.as_ref().is_some_and(Expr::contains_aggregate);

        let mut result = if has_aggregates {
            self.run_aggregate(sel, &schema, rows)?
        } else {
            self.run_projection(sel, &schema, rows)?
        };

        // LIMIT.
        if let Some(limit_expr) = &sel.limit {
            let empty = RowSchema::default();
            let env = Env {
                schema: &empty,
                row: &[],
                params: self.params,
            };
            let n = eval(limit_expr, &env)?.as_i64()?;
            let n = usize::try_from(n.max(0)).unwrap_or(usize::MAX);
            result.rows.truncate(n);
        }
        Ok(result)
    }

    fn run_from(&self, fc: &FromClause, predicate: Option<&Expr>) -> Result<Dataset> {
        let mut dataset = self.scan_table_ref(&fc.base, predicate)?;
        for join in &fc.joins {
            dataset = self.run_join(dataset, join, predicate)?;
        }
        Ok(dataset)
    }

    fn scan_table_ref(&self, tref: &TableRef, predicate: Option<&Expr>) -> Result<Dataset> {
        if tref.history {
            return provenance::history_scan(self.catalog, self.ctx, tref);
        }
        let table = self.catalog.get(&tref.name)?;
        let alias = tref.effective_name().to_string();
        let table_schema = table.schema();
        let path = choose_access_path(&table_schema, &alias, predicate, self.params)?;
        let rows = match &path {
            Some(p) => self.ctx.scan(&table, Some((p.column, &p.range)))?,
            None => self.ctx.scan(&table, None)?,
        };
        let names: Vec<String> = table_schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let schema = RowSchema::for_table(&alias, &names);
        Ok((schema, rows.into_iter().map(|r| r.data).collect()))
    }

    fn run_join(&self, left: Dataset, join: &Join, where_pred: Option<&Expr>) -> Result<Dataset> {
        let (left_schema, left_rows) = left;
        // Comma joins (`FROM a, b WHERE a.x = b.y`) carry their equi
        // condition in WHERE, not ON: mine both for the join key.
        let key_source = match where_pred {
            Some(p) => Expr::binary(BinaryOp::And, join.on.clone(), p.clone()),
            None => join.on.clone(),
        };
        if join.table.history {
            // Provenance joins materialize the history side and nested-loop.
            let (right_schema, right_rows) =
                provenance::history_scan(self.catalog, self.ctx, &join.table)?;
            let schema = left_schema.join(&right_schema);
            let rows = nested_loop(&schema, &left_rows, &right_rows, &join.on, self.params)?;
            return Ok((schema, rows));
        }

        let right_table = self.catalog.get(&join.table.name)?;
        let right_alias = join.table.effective_name().to_string();
        let right_table_schema = right_table.schema();
        let names: Vec<String> = right_table_schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let right_schema = RowSchema::for_table(&right_alias, &names);
        let combined = left_schema.join(&right_schema);

        let equi = equi_join_key(&key_source, &left_schema, &right_alias, &right_table_schema);
        if let Some((key_expr, right_col)) = &equi {
            if right_table_schema.index_on(*right_col).is_some() {
                // Index nested-loop join: the per-key point scans register
                // precise predicate locks (EO-flow friendly).
                let mut out = Vec::new();
                for lrow in &left_rows {
                    let env = Env {
                        schema: &left_schema,
                        row: lrow,
                        params: self.params,
                    };
                    let key = eval(key_expr, &env)?;
                    if key.is_null() {
                        continue;
                    }
                    let range = KeyRange::eq(key);
                    let matches = self.ctx.scan(&right_table, Some((*right_col, &range)))?;
                    for m in matches {
                        let mut row = lrow.clone();
                        row.extend(m.data);
                        let env = Env {
                            schema: &combined,
                            row: &row,
                            params: self.params,
                        };
                        if eval(&join.on, &env)?.is_truthy() {
                            out.push(row);
                        }
                    }
                }
                return Ok((combined, out));
            }
        }

        // Materialize the right side (full scan: relaxed flows only — the
        // strict mode of the EO flow rejects it inside TxnCtx::scan).
        let right_rows: Vec<Row> = self
            .ctx
            .scan(&right_table, None)?
            .into_iter()
            .map(|r| r.data)
            .collect();

        if let Some((key_expr, right_col)) = &equi {
            // Hash join on the equi key.
            let mut table_map: HashMap<Value, Vec<Row>> = HashMap::new();
            for rrow in &right_rows {
                let key = rrow[*right_col].clone();
                if !key.is_null() {
                    table_map.entry(key).or_default().push(rrow.clone());
                }
            }
            let mut out = Vec::new();
            for lrow in &left_rows {
                let env = Env {
                    schema: &left_schema,
                    row: lrow,
                    params: self.params,
                };
                let key = eval(key_expr, &env)?;
                if key.is_null() {
                    continue;
                }
                if let Some(matches) = table_map.get(&key) {
                    for m in matches {
                        let mut row = lrow.clone();
                        row.extend(m.iter().cloned());
                        let env = Env {
                            schema: &combined,
                            row: &row,
                            params: self.params,
                        };
                        if eval(&join.on, &env)?.is_truthy() {
                            out.push(row);
                        }
                    }
                }
            }
            return Ok((combined, out));
        }

        let rows = nested_loop(&combined, &left_rows, &right_rows, &join.on, self.params)?;
        Ok((combined, rows))
    }

    // -------------------------------------------------------- projection

    fn run_projection(
        &self,
        sel: &SelectStmt,
        schema: &RowSchema,
        rows: Vec<Row>,
    ) -> Result<QueryResult> {
        let columns = output_columns(&sel.projections, schema)?;
        let mut outputs: Vec<(Row, Row)> = Vec::with_capacity(rows.len()); // (input, output)
        for row in rows {
            let env = Env {
                schema,
                row: &row,
                params: self.params,
            };
            let mut out = Vec::with_capacity(columns.len());
            for item in &sel.projections {
                match item {
                    SelectItem::Wildcard => out.extend(row.iter().cloned()),
                    SelectItem::QualifiedWildcard(q) => {
                        let ords = schema.ordinals_for_qualifier(q);
                        if ords.is_empty() {
                            return Err(Error::Analysis(format!("unknown table alias {q}")));
                        }
                        out.extend(ords.into_iter().map(|i| row[i].clone()));
                    }
                    SelectItem::Expr { expr, .. } => out.push(eval(expr, &env)?),
                }
            }
            outputs.push((row, out));
        }

        if !sel.order_by.is_empty() {
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(outputs.len());
            for (input, output) in outputs {
                let keys =
                    self.order_keys(&sel.order_by, schema, &input, Some((&columns, &output)))?;
                keyed.push((keys, output));
            }
            sort_by_keys(&mut keyed, &sel.order_by);
            return Ok(QueryResult {
                columns,
                rows: keyed.into_iter().map(|(_, r)| r).collect(),
            });
        }
        Ok(QueryResult {
            columns,
            rows: outputs.into_iter().map(|(_, o)| o).collect(),
        })
    }

    fn order_keys(
        &self,
        order_by: &[OrderItem],
        schema: &RowSchema,
        input: &[Value],
        output: Option<(&[String], &[Value])>,
    ) -> Result<Vec<Value>> {
        let mut keys = Vec::with_capacity(order_by.len());
        for item in order_by {
            // A bare name may refer to an output alias.
            if let (Expr::Column { table: None, name }, Some((cols, out))) = (&item.expr, output) {
                if let Some(i) = cols.iter().position(|c| c == name) {
                    keys.push(out[i].clone());
                    continue;
                }
            }
            let env = Env {
                schema,
                row: input,
                params: self.params,
            };
            keys.push(eval(&item.expr, &env)?);
        }
        Ok(keys)
    }

    // ------------------------------------------------------- aggregation

    fn run_aggregate(
        &self,
        sel: &SelectStmt,
        schema: &RowSchema,
        rows: Vec<Row>,
    ) -> Result<QueryResult> {
        for item in &sel.projections {
            if matches!(
                item,
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)
            ) {
                return Err(Error::Analysis(
                    "wildcard projections are not valid in aggregate queries".into(),
                ));
            }
        }
        // Collect unique aggregate call expressions from every clause.
        let mut agg_exprs: Vec<Expr> = Vec::new();
        let mut collect = |e: &Expr| {
            e.walk(&mut |sub| {
                if let Expr::Function { name, .. } = sub {
                    if bcrdb_sql::ast::is_aggregate_name(name)
                        && !agg_exprs.iter().any(|a| a == sub)
                    {
                        agg_exprs.push(sub.clone());
                    }
                }
            });
        };
        for item in &sel.projections {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr);
            }
        }
        if let Some(h) = &sel.having {
            collect(h);
        }
        for o in &sel.order_by {
            collect(&o.expr);
        }

        // Group rows. BTreeMap gives deterministic group order.
        use std::collections::BTreeMap;
        struct Group {
            rep: Row,
            accs: Vec<AggAcc>,
        }
        let mut groups: BTreeMap<Vec<Value>, Group> = BTreeMap::new();
        for row in rows {
            let env = Env {
                schema,
                row: &row,
                params: self.params,
            };
            let mut key = Vec::with_capacity(sel.group_by.len());
            for g in &sel.group_by {
                key.push(eval(g, &env)?);
            }
            let group = match groups.get_mut(&key) {
                Some(g) => g,
                None => {
                    let accs = agg_exprs.iter().map(AggAcc::new).collect::<Result<_>>()?;
                    groups.entry(key.clone()).or_insert(Group {
                        rep: row.clone(),
                        accs,
                    });
                    groups.get_mut(&key).expect("just inserted")
                }
            };
            let env = Env {
                schema,
                row: &row,
                params: self.params,
            };
            for (acc, aexpr) in group.accs.iter_mut().zip(&agg_exprs) {
                acc.fold(aexpr, &env)?;
            }
        }
        // Aggregates without GROUP BY over zero rows: one empty group.
        if groups.is_empty() && sel.group_by.is_empty() {
            let accs = agg_exprs.iter().map(AggAcc::new).collect::<Result<_>>()?;
            groups.insert(
                Vec::new(),
                Group {
                    rep: Vec::new(),
                    accs,
                },
            );
        }

        let columns = output_columns(&sel.projections, schema)?;
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
        for group in groups.values() {
            // For the representative row of an empty table, pad with NULLs
            // so column references don't panic (they're meaningless there).
            let rep = if group.rep.is_empty() && schema.arity() > 0 {
                vec![Value::Null; schema.arity()]
            } else {
                group.rep.clone()
            };
            let agg_values: Vec<Value> = group
                .accs
                .iter()
                .map(AggAcc::finish)
                .collect::<Result<_>>()?;
            let env = Env {
                schema,
                row: &rep,
                params: self.params,
            };
            // HAVING.
            if let Some(h) = &sel.having {
                if !eval_with_aggs(h, &env, &agg_exprs, &agg_values)?.is_truthy() {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(columns.len());
            for item in &sel.projections {
                if let SelectItem::Expr { expr, .. } = item {
                    out.push(eval_with_aggs(expr, &env, &agg_exprs, &agg_values)?);
                }
            }
            let mut order_keys = Vec::with_capacity(sel.order_by.len());
            for o in &sel.order_by {
                // Output aliases first, then group-context evaluation.
                if let Expr::Column { table: None, name } = &o.expr {
                    if let Some(i) = columns.iter().position(|c| c == name) {
                        order_keys.push(out[i].clone());
                        continue;
                    }
                }
                order_keys.push(eval_with_aggs(&o.expr, &env, &agg_exprs, &agg_values)?);
            }
            keyed.push((order_keys, out));
        }
        if !sel.order_by.is_empty() {
            sort_by_keys(&mut keyed, &sel.order_by);
        }
        Ok(QueryResult {
            columns,
            rows: keyed.into_iter().map(|(_, r)| r).collect(),
        })
    }

    // --------------------------------------------------------------- DML

    fn run_insert(
        &self,
        table_name: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<usize> {
        let table = self.catalog.get(table_name)?;
        let schema = table.schema();
        let target_ordinals: Vec<usize> = match columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    schema.column_index(c).ok_or_else(|| {
                        Error::Analysis(format!("unknown column {c} in table {table_name}"))
                    })
                })
                .collect::<Result<_>>()?,
            None => (0..schema.arity()).collect(),
        };

        let value_rows: Vec<Row> = match source {
            InsertSource::Values(expr_rows) => {
                let empty = RowSchema::default();
                let mut out = Vec::with_capacity(expr_rows.len());
                for exprs in expr_rows {
                    let env = Env {
                        schema: &empty,
                        row: &[],
                        params: self.params,
                    };
                    let mut row = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        row.push(eval(e, &env)?);
                    }
                    out.push(row);
                }
                out
            }
            InsertSource::Select(sel) => self.run_select(sel)?.rows,
        };

        let mut count = 0;
        for values in value_rows {
            if values.len() != target_ordinals.len() {
                return Err(Error::Analysis(format!(
                    "INSERT into {table_name} expects {} values, got {}",
                    target_ordinals.len(),
                    values.len()
                )));
            }
            let mut row = vec![Value::Null; schema.arity()];
            for (ordinal, v) in target_ordinals.iter().zip(values) {
                row[*ordinal] = v;
            }
            let row = schema.check_row(row)?;
            self.ctx.insert(&table, row)?;
            count += 1;
        }
        Ok(count)
    }

    fn run_update(
        &self,
        table_name: &str,
        assignments: &[(String, Expr)],
        predicate: Option<&Expr>,
    ) -> Result<usize> {
        let table = self.catalog.get(table_name)?;
        let schema = table.schema();
        let names: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
        let row_schema = RowSchema::for_table(table_name, &names);
        let assigned: Vec<(usize, &Expr)> = assignments
            .iter()
            .map(|(name, e)| {
                schema.column_index(name).map(|i| (i, e)).ok_or_else(|| {
                    Error::Analysis(format!("unknown column {name} in table {table_name}"))
                })
            })
            .collect::<Result<_>>()?;

        let path = choose_access_path(&schema, table_name, predicate, self.params)?;
        let targets = match &path {
            Some(p) => self.ctx.scan(&table, Some((p.column, &p.range)))?,
            None => self.ctx.scan(&table, None)?,
        };

        let mut count = 0;
        for target in targets {
            if let Some(pred) = predicate {
                let env = Env {
                    schema: &row_schema,
                    row: &target.data,
                    params: self.params,
                };
                if !eval(pred, &env)?.is_truthy() {
                    continue;
                }
            }
            let env = Env {
                schema: &row_schema,
                row: &target.data,
                params: self.params,
            };
            let mut new_row = target.data.clone();
            for (ordinal, e) in &assigned {
                new_row[*ordinal] = eval(e, &env)?;
            }
            let new_row = schema.check_row(new_row)?;
            self.ctx.update(&table, &target, new_row)?;
            count += 1;
        }
        Ok(count)
    }

    fn run_delete(&self, table_name: &str, predicate: Option<&Expr>) -> Result<usize> {
        let table = self.catalog.get(table_name)?;
        let schema = table.schema();
        let names: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
        let row_schema = RowSchema::for_table(table_name, &names);
        let path = choose_access_path(&schema, table_name, predicate, self.params)?;
        let targets = match &path {
            Some(p) => self.ctx.scan(&table, Some((p.column, &p.range)))?,
            None => self.ctx.scan(&table, None)?,
        };
        let mut count = 0;
        for target in targets {
            if let Some(pred) = predicate {
                let env = Env {
                    schema: &row_schema,
                    row: &target.data,
                    params: self.params,
                };
                if !eval(pred, &env)?.is_truthy() {
                    continue;
                }
            }
            self.ctx.delete(&table, &target)?;
            count += 1;
        }
        Ok(count)
    }
}

fn nested_loop(
    combined: &RowSchema,
    left_rows: &[Row],
    right_rows: &[Row],
    on: &Expr,
    params: &[Value],
) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for lrow in left_rows {
        for rrow in right_rows {
            let mut row = lrow.clone();
            row.extend(rrow.iter().cloned());
            let env = Env {
                schema: combined,
                row: &row,
                params,
            };
            if eval(on, &env)?.is_truthy() {
                out.push(row);
            }
        }
    }
    Ok(out)
}

fn sort_by_keys(keyed: &mut [(Vec<Value>, Row)], order_by: &[OrderItem]) {
    keyed.sort_by(|(a, _), (b, _)| {
        for (i, item) in order_by.iter().enumerate() {
            let ord = a[i].cmp_total(&b[i]);
            let ord = if item.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn output_columns(projections: &[SelectItem], schema: &RowSchema) -> Result<Vec<String>> {
    let mut out = Vec::new();
    for item in projections {
        match item {
            SelectItem::Wildcard => {
                out.extend(schema.columns().iter().map(|(_, n)| n.clone()));
            }
            SelectItem::QualifiedWildcard(q) => {
                let ords = schema.ordinals_for_qualifier(q);
                if ords.is_empty() {
                    return Err(Error::Analysis(format!("unknown table alias {q}")));
                }
                out.extend(ords.into_iter().map(|i| schema.columns()[i].1.clone()));
            }
            SelectItem::Expr { expr, alias } => out.push(match alias {
                Some(a) => a.clone(),
                None => default_column_name(expr),
            }),
        }
    }
    Ok(out)
}

fn default_column_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => "?column?".to_string(),
    }
}

/// Evaluate an expression in a group context: aggregate sub-expressions are
/// replaced by their precomputed values.
fn eval_with_aggs(
    expr: &Expr,
    env: &Env<'_>,
    agg_exprs: &[Expr],
    agg_values: &[Value],
) -> Result<Value> {
    if let Some(i) = agg_exprs.iter().position(|a| a == expr) {
        return Ok(agg_values[i].clone());
    }
    match expr {
        Expr::Binary { op, left, right } => {
            // Rebuild with substituted children via recursive evaluation.
            let l = eval_with_aggs(left, env, agg_exprs, agg_values)?;
            let r = eval_with_aggs(right, env, agg_exprs, agg_values)?;
            let le = Expr::Literal(l);
            let re = Expr::Literal(r);
            eval(&Expr::binary(*op, le, re), env)
        }
        Expr::Unary { op, operand } => {
            let v = eval_with_aggs(operand, env, agg_exprs, agg_values)?;
            eval(
                &Expr::Unary {
                    op: *op,
                    operand: Box::new(Expr::Literal(v)),
                },
                env,
            )
        }
        Expr::IsNull {
            expr: inner,
            negated,
        } => {
            let v = eval_with_aggs(inner, env, agg_exprs, agg_values)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        _ => eval(expr, env),
    }
}

/// Streaming aggregate accumulator.
enum AggAcc {
    Count(i64),
    CountExpr(i64),
    Sum(Option<Value>),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggAcc {
    fn new(expr: &Expr) -> Result<AggAcc> {
        let Expr::Function { name, args, star } = expr else {
            return Err(Error::internal("aggregate accumulator over non-function"));
        };
        let check_one_arg = || -> Result<()> {
            if *star || args.len() != 1 {
                return Err(Error::Analysis(format!("{name}() expects one argument")));
            }
            Ok(())
        };
        Ok(match name.as_str() {
            "count" if *star => AggAcc::Count(0),
            "count" => {
                check_one_arg()?;
                AggAcc::CountExpr(0)
            }
            "sum" => {
                check_one_arg()?;
                AggAcc::Sum(None)
            }
            "avg" => {
                check_one_arg()?;
                AggAcc::Avg { sum: 0.0, n: 0 }
            }
            "min" => {
                check_one_arg()?;
                AggAcc::Min(None)
            }
            "max" => {
                check_one_arg()?;
                AggAcc::Max(None)
            }
            other => return Err(Error::Analysis(format!("unknown aggregate {other}()"))),
        })
    }

    fn arg(expr: &Expr) -> &Expr {
        match expr {
            Expr::Function { args, .. } => &args[0],
            _ => unreachable!("checked in new()"),
        }
    }

    fn fold(&mut self, expr: &Expr, env: &Env<'_>) -> Result<()> {
        match self {
            AggAcc::Count(n) => *n += 1,
            AggAcc::CountExpr(n) => {
                if !eval(Self::arg(expr), env)?.is_null() {
                    *n += 1;
                }
            }
            AggAcc::Sum(acc) => {
                let v = eval(Self::arg(expr), env)?;
                if !v.is_null() {
                    *acc = Some(match acc.take() {
                        Some(cur) => cur.add(&v)?,
                        None => v,
                    });
                }
            }
            AggAcc::Avg { sum, n } => {
                let v = eval(Self::arg(expr), env)?;
                if !v.is_null() {
                    *sum += v.as_f64()?;
                    *n += 1;
                }
            }
            AggAcc::Min(acc) => {
                let v = eval(Self::arg(expr), env)?;
                if !v.is_null() {
                    let replace = acc.as_ref().is_none_or(|cur| v.cmp_total(cur).is_lt());
                    if replace {
                        *acc = Some(v);
                    }
                }
            }
            AggAcc::Max(acc) => {
                let v = eval(Self::arg(expr), env)?;
                if !v.is_null() {
                    let replace = acc.as_ref().is_none_or(|cur| v.cmp_total(cur).is_gt());
                    if replace {
                        *acc = Some(v);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Result<Value> {
        Ok(match self {
            AggAcc::Count(n) | AggAcc::CountExpr(n) => Value::Int(*n),
            AggAcc::Sum(v) => v.clone().unwrap_or(Value::Null),
            AggAcc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
            AggAcc::Min(v) | AggAcc::Max(v) => v.clone().unwrap_or(Value::Null),
        })
    }
}

fn build_create_table(
    name: &str,
    columns: &[bcrdb_sql::ast::ColumnDef],
    primary_key: &[String],
) -> Result<CatalogOp> {
    let cols: Vec<Column> = columns
        .iter()
        .map(|c| Column {
            name: c.name.clone(),
            dtype: c.dtype,
            nullable: c.nullable,
        })
        .collect();
    let mut pk: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.inline_pk)
        .map(|(i, _)| i)
        .collect();
    if !primary_key.is_empty() {
        if !pk.is_empty() {
            return Err(Error::Analysis(format!(
                "table {name}: both inline and table-level PRIMARY KEY given"
            )));
        }
        pk = primary_key
            .iter()
            .map(|n| {
                columns.iter().position(|c| &c.name == n).ok_or_else(|| {
                    Error::Analysis(format!("unknown PRIMARY KEY column {n} in table {name}"))
                })
            })
            .collect::<Result<_>>()?;
    }
    let mut schema = TableSchema::new(name, cols, pk)?;
    // PK columns are implicitly NOT NULL.
    for &i in &schema.primary_key.clone() {
        schema.columns[i].nullable = false;
    }
    Ok(CatalogOp::CreateTable(schema))
}
