//! The statement executor.
//!
//! Executes parsed statements against a [`Catalog`] through a transaction
//! context. SELECT supports full, index, covering-index and multi-index
//! (intersection/union) scans, index-nested-loop, hash and sort-merge
//! joins — all chosen by the cost-based planner over snapshot-pinned
//! statistics — plus grouping with aggregates, HAVING, ORDER BY and
//! LIMIT: the surface the paper's three evaluation contracts need
//! (Appendix A) plus provenance scans (§4.2). Every SELECT builds a
//! [`PlanNode`] trace with estimated vs. actual row counts; `EXPLAIN`
//! executes the statement and returns that trace instead of the rows.
//!
//! DDL statements do **not** mutate the catalog immediately: they are
//! returned as [`CatalogOp`]s that the block processor applies during the
//! serial commit phase, so the catalog changes at the same block position
//! on every replica.

use std::collections::HashMap;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::schema::{Column, TableSchema};
use bcrdb_common::value::{Row, Value};
use bcrdb_crypto::identity::{Certificate, CertificateRegistry};
use bcrdb_sql::ast::{
    BinaryOp, Expr, FromClause, FunctionDef, InsertSource, Join, OrderItem, SelectItem, SelectStmt,
    Statement, TableRef,
};
use bcrdb_storage::catalog::Catalog;
use bcrdb_storage::index::KeyRange;
use bcrdb_storage::snapshot::ScanMode;
use bcrdb_txn::context::TxnCtx;

use crate::expr::{eval, Env, RowSchema};
use crate::plan::{choose_access_path, equi_join_key};
use crate::planner::{choose_join_strategy, plan_scan, JoinStrategy, PlanNode, ScanPlan};
use crate::procedures::ContractRegistry;
use crate::provenance;
use crate::result::QueryResult;
use crate::stats::TableStatsView;

/// A deferred catalog mutation, applied at commit time.
#[derive(Clone, Debug, PartialEq)]
pub enum CatalogOp {
    /// CREATE TABLE.
    CreateTable(TableSchema),
    /// CREATE INDEX.
    CreateIndex {
        /// Target table.
        table: String,
        /// Index name.
        index: String,
        /// Indexed column name.
        column: String,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS flag.
        if_exists: bool,
    },
    /// CREATE [OR REPLACE] FUNCTION (deploying a smart contract).
    CreateFunction(FunctionDef),
    /// DROP FUNCTION.
    DropFunction {
        /// Contract name.
        name: String,
    },
    /// Register a user certificate (user-management system contracts,
    /// §3.7: "three more system smart contracts to create, delete, and
    /// update users with cryptographic credentials").
    RegisterCert(Certificate),
    /// Revoke a user certificate.
    RevokeCert {
        /// Certificate (user) name.
        name: String,
    },
}

/// Apply a catalog op (serial commit phase only).
pub fn apply_catalog_op(
    catalog: &Catalog,
    contracts: &ContractRegistry,
    certs: &CertificateRegistry,
    op: &CatalogOp,
) -> Result<()> {
    match op {
        CatalogOp::CreateTable(schema) => {
            catalog.create_table(schema.clone())?;
            Ok(())
        }
        CatalogOp::CreateIndex {
            table,
            index,
            column,
        } => catalog.get(table)?.add_index(index, column),
        CatalogOp::DropTable { name, if_exists } => catalog.drop_table(name, *if_exists),
        CatalogOp::CreateFunction(def) => contracts.install(def.clone()),
        CatalogOp::DropFunction { name } => contracts.remove(name),
        CatalogOp::RegisterCert(cert) => {
            certs.register(cert.clone());
            Ok(())
        }
        CatalogOp::RevokeCert { name } => {
            certs.revoke(name);
            Ok(())
        }
    }
}

/// What a statement did.
#[derive(Clone, Debug)]
pub enum StatementEffect {
    /// SELECT output.
    Rows(QueryResult),
    /// DML affected-row count.
    Count(usize),
    /// Deferred DDL.
    Catalog(CatalogOp),
}

impl StatementEffect {
    /// The query result, if this was a SELECT.
    pub fn rows(&self) -> Option<&QueryResult> {
        match self {
            StatementEffect::Rows(r) => Some(r),
            _ => None,
        }
    }
}

/// Statement executor bound to one transaction.
pub struct Executor<'a> {
    /// Table catalog.
    pub catalog: &'a Catalog,
    /// Transaction context (data access + conflict tracking).
    pub ctx: &'a TxnCtx,
    /// `$n` parameters.
    pub params: &'a [Value],
}

type Dataset = (RowSchema, Vec<Row>);

impl<'a> Executor<'a> {
    /// Create an executor.
    pub fn new(catalog: &'a Catalog, ctx: &'a TxnCtx, params: &'a [Value]) -> Executor<'a> {
        Executor {
            catalog,
            ctx,
            params,
        }
    }

    /// Execute one statement.
    pub fn execute(&self, stmt: &Statement) -> Result<StatementEffect> {
        match stmt {
            Statement::Select(sel) => Ok(StatementEffect::Rows(self.run_select(sel)?)),
            Statement::Insert {
                table,
                columns,
                source,
            } => Ok(StatementEffect::Count(self.run_insert(
                table,
                columns.as_deref(),
                source,
            )?)),
            Statement::Update {
                table,
                assignments,
                predicate,
            } => Ok(StatementEffect::Count(self.run_update(
                table,
                assignments,
                predicate.as_ref(),
            )?)),
            Statement::Delete { table, predicate } => Ok(StatementEffect::Count(
                self.run_delete(table, predicate.as_ref())?,
            )),
            Statement::CreateTable {
                name,
                columns,
                primary_key,
            } => Ok(StatementEffect::Catalog(build_create_table(
                name,
                columns,
                primary_key,
            )?)),
            Statement::CreateIndex {
                name,
                table,
                column,
            } => Ok(StatementEffect::Catalog(CatalogOp::CreateIndex {
                table: table.clone(),
                index: name.clone(),
                column: column.clone(),
            })),
            Statement::DropTable { name, if_exists } => {
                Ok(StatementEffect::Catalog(CatalogOp::DropTable {
                    name: name.clone(),
                    if_exists: *if_exists,
                }))
            }
            Statement::CreateFunction(def) => Ok(StatementEffect::Catalog(
                CatalogOp::CreateFunction(def.clone()),
            )),
            Statement::DropFunction { name } => {
                Ok(StatementEffect::Catalog(CatalogOp::DropFunction {
                    name: name.clone(),
                }))
            }
            Statement::Explain(inner) => Ok(StatementEffect::Rows(self.run_explain(inner)?)),
        }
    }

    /// Execute the inner statement and return its plan trace (one `plan`
    /// text column, indented tree lines with estimated vs. actual row
    /// counts) instead of its rows.
    fn run_explain(&self, inner: &Statement) -> Result<QueryResult> {
        let Statement::Select(sel) = inner else {
            return Err(Error::Analysis(
                "EXPLAIN supports SELECT statements only".into(),
            ));
        };
        let (_, node) = self.run_select_traced(sel)?;
        Ok(QueryResult {
            columns: vec!["plan".to_string()],
            rows: node
                .render()
                .into_iter()
                .map(|line| vec![Value::Text(line)])
                .collect(),
        })
    }

    // ------------------------------------------------------------ SELECT

    /// Execute a SELECT.
    pub fn run_select(&self, sel: &SelectStmt) -> Result<QueryResult> {
        Ok(self.run_select_traced(sel)?.0)
    }

    /// Execute a SELECT and return the plan trace alongside the rows.
    fn run_select_traced(&self, sel: &SelectStmt) -> Result<(QueryResult, PlanNode)> {
        let (schema, mut rows, mut node) = match &sel.from {
            None => (
                RowSchema::default(),
                vec![Vec::new()],
                PlanNode::leaf("Values", None, 1),
            ),
            Some(fc) => {
                let ((schema, rows), node) = self.run_from(fc, sel)?;
                (schema, rows, node)
            }
        };

        // Residual WHERE filter.
        if let Some(pred) = &sel.predicate {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                let env = Env {
                    schema: &schema,
                    row: &row,
                    params: self.params,
                };
                if eval(pred, &env)?.is_truthy() {
                    kept.push(row);
                }
            }
            rows = kept;
            node = PlanNode::over("Filter", None, rows.len(), vec![node]);
        }

        let has_aggregates = !sel.group_by.is_empty()
            || sel.projections.iter().any(|p| match p {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
            || sel.having.as_ref().is_some_and(Expr::contains_aggregate);

        let mut result = if has_aggregates {
            self.run_aggregate(sel, &schema, rows)?
        } else {
            self.run_projection(sel, &schema, rows)?
        };
        let shape = if has_aggregates {
            "Aggregate"
        } else {
            "Project"
        };
        node = PlanNode::over(shape, None, result.rows.len(), vec![node]);
        if !sel.order_by.is_empty() {
            node = PlanNode::over("Sort", None, result.rows.len(), vec![node]);
        }

        // LIMIT.
        if let Some(limit_expr) = &sel.limit {
            let empty = RowSchema::default();
            let env = Env {
                schema: &empty,
                row: &[],
                params: self.params,
            };
            let n = eval(limit_expr, &env)?.as_i64()?;
            let n = usize::try_from(n.max(0)).unwrap_or(usize::MAX);
            result.rows.truncate(n);
            node = PlanNode::over("Limit", None, result.rows.len(), vec![node]);
        }
        Ok((result, node))
    }

    fn run_from(&self, fc: &FromClause, sel: &SelectStmt) -> Result<(Dataset, PlanNode)> {
        let predicate = sel.predicate.as_ref();
        // Covering scans only apply to a single-table FROM: with joins,
        // the other relations consume the base columns through the ON
        // conditions.
        let covering_ctx = fc.joins.is_empty().then_some(sel);
        let (mut dataset, mut node) = self.scan_table_ref(&fc.base, predicate, covering_ctx)?;
        for join in &fc.joins {
            let (d, n) = self.run_join((dataset, node), join, predicate, &sel.order_by)?;
            dataset = d;
            node = n;
        }
        Ok((dataset, node))
    }

    fn scan_table_ref(
        &self,
        tref: &TableRef,
        predicate: Option<&Expr>,
        covering_ctx: Option<&SelectStmt>,
    ) -> Result<(Dataset, PlanNode)> {
        if tref.history {
            let (schema, rows) = provenance::history_scan(self.catalog, self.ctx, tref)?;
            let actual = rows.len();
            let label = format!("HistoryScan {}", tref.effective_name());
            return Ok(((schema, rows), PlanNode::leaf(label, None, actual)));
        }
        let table = self.catalog.get(&tref.name)?;
        let alias = tref.effective_name().to_string();
        let table_schema = table.schema();
        let stats = TableStatsView::at(&table, &table_schema, self.ctx.snapshot.height);
        let covering = covering_ctx.and_then(|sel| covering_candidate(sel, &alias, &table_schema));
        let strict = self.ctx.mode == ScanMode::Strict;
        let choice = plan_scan(
            &table_schema,
            &alias,
            predicate,
            self.params,
            &stats,
            covering,
            strict,
        )?;
        let label = choice.plan.label(&alias, &table_schema);
        let names: Vec<String> = table_schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let (schema, rows): Dataset = match &choice.plan {
            ScanPlan::Full => {
                let visible = self.ctx.scan(&table, None)?;
                (
                    RowSchema::for_table(&alias, &names),
                    visible.into_iter().map(|r| r.data).collect(),
                )
            }
            ScanPlan::Index {
                column,
                range,
                covering: true,
            } => {
                // The index key alone satisfies the query: project just
                // that column, skipping the heap-row clones.
                self.catalog.on_covering_plan();
                let pairs = self.ctx.scan_covering(&table, *column, range)?;
                (
                    RowSchema::for_table(&alias, &[names[*column].clone()]),
                    pairs.into_iter().map(|(_, v)| vec![v]).collect(),
                )
            }
            ScanPlan::Index {
                column,
                range,
                covering: false,
            } => {
                let visible = self.ctx.scan(&table, Some((*column, range)))?;
                (
                    RowSchema::for_table(&alias, &names),
                    visible.into_iter().map(|r| r.data).collect(),
                )
            }
            ScanPlan::Intersect { parts } => {
                self.catalog.on_multi_index_plan();
                let visible = self.ctx.scan_multi(&table, parts, false)?;
                (
                    RowSchema::for_table(&alias, &names),
                    visible.into_iter().map(|r| r.data).collect(),
                )
            }
            ScanPlan::Union { parts } => {
                self.catalog.on_multi_index_plan();
                let visible = self.ctx.scan_multi(&table, parts, true)?;
                (
                    RowSchema::for_table(&alias, &names),
                    visible.into_iter().map(|r| r.data).collect(),
                )
            }
        };
        let actual = rows.len();
        Ok((
            (schema, rows),
            PlanNode::leaf(label, Some(choice.est_rows), actual),
        ))
    }

    fn run_join(
        &self,
        left: (Dataset, PlanNode),
        join: &Join,
        where_pred: Option<&Expr>,
        order_by: &[OrderItem],
    ) -> Result<(Dataset, PlanNode)> {
        let ((left_schema, left_rows), left_node) = left;
        // Comma joins (`FROM a, b WHERE a.x = b.y`) carry their equi
        // condition in WHERE, not ON: mine both for the join key.
        let key_source = match where_pred {
            Some(p) => Expr::binary(BinaryOp::And, join.on.clone(), p.clone()),
            None => join.on.clone(),
        };
        if join.table.history {
            // Provenance joins materialize the history side and nested-loop.
            let (right_schema, right_rows) =
                provenance::history_scan(self.catalog, self.ctx, &join.table)?;
            let right_node = PlanNode::leaf(
                format!("HistoryScan {}", join.table.effective_name()),
                None,
                right_rows.len(),
            );
            let schema = left_schema.join(&right_schema);
            let rows = nested_loop(&schema, &left_rows, &right_rows, &join.on, self.params)?;
            let actual = rows.len();
            let node = PlanNode::over("NestedLoopJoin", None, actual, vec![left_node, right_node]);
            return Ok(((schema, rows), node));
        }

        let right_table = self.catalog.get(&join.table.name)?;
        let right_alias = join.table.effective_name().to_string();
        let right_table_schema = right_table.schema();
        let right_stats =
            TableStatsView::at(&right_table, &right_table_schema, self.ctx.snapshot.height);
        let names: Vec<String> = right_table_schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let right_schema = RowSchema::for_table(&right_alias, &names);
        let combined = left_schema.join(&right_schema);

        let equi = equi_join_key(
            &key_source,
            &left_schema,
            &right_alias,
            &right_table_schema,
            &right_stats,
        );

        let Some((key_expr, right_col)) = &equi else {
            // No equi key: materialize the right side and nested-loop
            // (full scan: relaxed flows only — the strict mode of the EO
            // flow rejects it inside TxnCtx::scan).
            let right_rows: Vec<Row> = self
                .ctx
                .scan(&right_table, None)?
                .into_iter()
                .map(|r| r.data)
                .collect();
            let right_node =
                PlanNode::leaf(format!("SeqScan {right_alias}"), None, right_rows.len());
            let rows = nested_loop(&combined, &left_rows, &right_rows, &join.on, self.params)?;
            let actual = rows.len();
            let node = PlanNode::over("NestedLoopJoin", None, actual, vec![left_node, right_node]);
            return Ok(((combined, rows), node));
        };

        let right_indexed = right_table_schema.index_on(*right_col).is_some();
        let strict = self.ctx.mode == ScanMode::Strict;
        let order_matches = order_by.first().is_some_and(|o| &o.expr == key_expr);
        let (strategy, est_out) = choose_join_strategy(
            left_rows.len(),
            &right_stats,
            *right_col,
            right_indexed,
            strict,
            order_matches,
        );
        let key_name = &names[*right_col];

        if strategy == JoinStrategy::IndexNestedLoop {
            // Index nested-loop join: the per-key point scans register
            // precise predicate locks (EO-flow friendly).
            let mut out = Vec::new();
            for lrow in &left_rows {
                let env = Env {
                    schema: &left_schema,
                    row: lrow,
                    params: self.params,
                };
                let key = eval(key_expr, &env)?;
                if key.is_null() {
                    continue;
                }
                let range = KeyRange::eq(key);
                let matches = self.ctx.scan(&right_table, Some((*right_col, &range)))?;
                for m in matches {
                    let mut row = lrow.clone();
                    row.extend(m.data);
                    let env = Env {
                        schema: &combined,
                        row: &row,
                        params: self.params,
                    };
                    if eval(&join.on, &env)?.is_truthy() {
                        out.push(row);
                    }
                }
            }
            let actual = out.len();
            let node = PlanNode::over(
                format!("IndexNestedLoopJoin {right_alias} [{key_name}]"),
                Some(est_out),
                actual,
                vec![left_node],
            );
            return Ok(((combined, out), node));
        }

        // Hash and sort-merge both materialize the right side (full scan:
        // relaxed flows only, as above).
        let right_rows: Vec<Row> = self
            .ctx
            .scan(&right_table, None)?
            .into_iter()
            .map(|r| r.data)
            .collect();
        let right_node = PlanNode::leaf(format!("SeqScan {right_alias}"), None, right_rows.len());

        let (out, op) = match strategy {
            JoinStrategy::SortMerge => (
                sort_merge_join(
                    &combined,
                    &left_schema,
                    &left_rows,
                    &right_rows,
                    *right_col,
                    key_expr,
                    &join.on,
                    self.params,
                )?,
                "SortMergeJoin",
            ),
            _ => {
                // Hash join on the equi key.
                let mut table_map: HashMap<Value, Vec<Row>> = HashMap::new();
                for rrow in &right_rows {
                    let key = rrow[*right_col].clone();
                    if !key.is_null() {
                        table_map.entry(key).or_default().push(rrow.clone());
                    }
                }
                let mut out = Vec::new();
                for lrow in &left_rows {
                    let env = Env {
                        schema: &left_schema,
                        row: lrow,
                        params: self.params,
                    };
                    let key = eval(key_expr, &env)?;
                    if key.is_null() {
                        continue;
                    }
                    if let Some(matches) = table_map.get(&key) {
                        for m in matches {
                            let mut row = lrow.clone();
                            row.extend(m.iter().cloned());
                            let env = Env {
                                schema: &combined,
                                row: &row,
                                params: self.params,
                            };
                            if eval(&join.on, &env)?.is_truthy() {
                                out.push(row);
                            }
                        }
                    }
                }
                (out, "HashJoin")
            }
        };
        let actual = out.len();
        let node = PlanNode::over(
            format!("{op} {right_alias} [{key_name}]"),
            Some(est_out),
            actual,
            vec![left_node, right_node],
        );
        Ok(((combined, out), node))
    }

    // -------------------------------------------------------- projection

    fn run_projection(
        &self,
        sel: &SelectStmt,
        schema: &RowSchema,
        rows: Vec<Row>,
    ) -> Result<QueryResult> {
        let columns = output_columns(&sel.projections, schema)?;
        let mut outputs: Vec<(Row, Row)> = Vec::with_capacity(rows.len()); // (input, output)
        for row in rows {
            let env = Env {
                schema,
                row: &row,
                params: self.params,
            };
            let mut out = Vec::with_capacity(columns.len());
            for item in &sel.projections {
                match item {
                    SelectItem::Wildcard => out.extend(row.iter().cloned()),
                    SelectItem::QualifiedWildcard(q) => {
                        let ords = schema.ordinals_for_qualifier(q);
                        if ords.is_empty() {
                            return Err(Error::Analysis(format!("unknown table alias {q}")));
                        }
                        out.extend(ords.into_iter().map(|i| row[i].clone()));
                    }
                    SelectItem::Expr { expr, .. } => out.push(eval(expr, &env)?),
                }
            }
            outputs.push((row, out));
        }

        if !sel.order_by.is_empty() {
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(outputs.len());
            for (input, output) in outputs {
                let keys =
                    self.order_keys(&sel.order_by, schema, &input, Some((&columns, &output)))?;
                keyed.push((keys, output));
            }
            sort_by_keys(&mut keyed, &sel.order_by);
            return Ok(QueryResult {
                columns,
                rows: keyed.into_iter().map(|(_, r)| r).collect(),
            });
        }
        Ok(QueryResult {
            columns,
            rows: outputs.into_iter().map(|(_, o)| o).collect(),
        })
    }

    fn order_keys(
        &self,
        order_by: &[OrderItem],
        schema: &RowSchema,
        input: &[Value],
        output: Option<(&[String], &[Value])>,
    ) -> Result<Vec<Value>> {
        let mut keys = Vec::with_capacity(order_by.len());
        for item in order_by {
            // A bare name may refer to an output alias.
            if let (Expr::Column { table: None, name }, Some((cols, out))) = (&item.expr, output) {
                if let Some(i) = cols.iter().position(|c| c == name) {
                    keys.push(out[i].clone());
                    continue;
                }
            }
            let env = Env {
                schema,
                row: input,
                params: self.params,
            };
            keys.push(eval(&item.expr, &env)?);
        }
        Ok(keys)
    }

    // ------------------------------------------------------- aggregation

    fn run_aggregate(
        &self,
        sel: &SelectStmt,
        schema: &RowSchema,
        rows: Vec<Row>,
    ) -> Result<QueryResult> {
        for item in &sel.projections {
            if matches!(
                item,
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)
            ) {
                return Err(Error::Analysis(
                    "wildcard projections are not valid in aggregate queries".into(),
                ));
            }
        }
        // Collect unique aggregate call expressions from every clause.
        let mut agg_exprs: Vec<Expr> = Vec::new();
        let mut collect = |e: &Expr| {
            e.walk(&mut |sub| {
                if let Expr::Function { name, .. } = sub {
                    if bcrdb_sql::ast::is_aggregate_name(name)
                        && !agg_exprs.iter().any(|a| a == sub)
                    {
                        agg_exprs.push(sub.clone());
                    }
                }
            });
        };
        for item in &sel.projections {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr);
            }
        }
        if let Some(h) = &sel.having {
            collect(h);
        }
        for o in &sel.order_by {
            collect(&o.expr);
        }

        // Group rows. BTreeMap gives deterministic group order.
        use std::collections::BTreeMap;
        struct Group {
            rep: Row,
            accs: Vec<AggAcc>,
        }
        let mut groups: BTreeMap<Vec<Value>, Group> = BTreeMap::new();
        for row in rows {
            let env = Env {
                schema,
                row: &row,
                params: self.params,
            };
            let mut key = Vec::with_capacity(sel.group_by.len());
            for g in &sel.group_by {
                key.push(eval(g, &env)?);
            }
            let group = match groups.get_mut(&key) {
                Some(g) => g,
                None => {
                    let accs = agg_exprs.iter().map(AggAcc::new).collect::<Result<_>>()?;
                    groups.entry(key.clone()).or_insert(Group {
                        rep: row.clone(),
                        accs,
                    });
                    groups.get_mut(&key).expect("just inserted")
                }
            };
            let env = Env {
                schema,
                row: &row,
                params: self.params,
            };
            for (acc, aexpr) in group.accs.iter_mut().zip(&agg_exprs) {
                acc.fold(aexpr, &env)?;
            }
        }
        // Aggregates without GROUP BY over zero rows: one empty group.
        if groups.is_empty() && sel.group_by.is_empty() {
            let accs = agg_exprs.iter().map(AggAcc::new).collect::<Result<_>>()?;
            groups.insert(
                Vec::new(),
                Group {
                    rep: Vec::new(),
                    accs,
                },
            );
        }

        let columns = output_columns(&sel.projections, schema)?;
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
        for group in groups.values() {
            // For the representative row of an empty table, pad with NULLs
            // so column references don't panic (they're meaningless there).
            let rep = if group.rep.is_empty() && schema.arity() > 0 {
                vec![Value::Null; schema.arity()]
            } else {
                group.rep.clone()
            };
            let agg_values: Vec<Value> = group
                .accs
                .iter()
                .map(AggAcc::finish)
                .collect::<Result<_>>()?;
            let env = Env {
                schema,
                row: &rep,
                params: self.params,
            };
            // HAVING.
            if let Some(h) = &sel.having {
                if !eval_with_aggs(h, &env, &agg_exprs, &agg_values)?.is_truthy() {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(columns.len());
            for item in &sel.projections {
                if let SelectItem::Expr { expr, .. } = item {
                    out.push(eval_with_aggs(expr, &env, &agg_exprs, &agg_values)?);
                }
            }
            let mut order_keys = Vec::with_capacity(sel.order_by.len());
            for o in &sel.order_by {
                // Output aliases first, then group-context evaluation.
                if let Expr::Column { table: None, name } = &o.expr {
                    if let Some(i) = columns.iter().position(|c| c == name) {
                        order_keys.push(out[i].clone());
                        continue;
                    }
                }
                order_keys.push(eval_with_aggs(&o.expr, &env, &agg_exprs, &agg_values)?);
            }
            keyed.push((order_keys, out));
        }
        if !sel.order_by.is_empty() {
            sort_by_keys(&mut keyed, &sel.order_by);
        }
        Ok(QueryResult {
            columns,
            rows: keyed.into_iter().map(|(_, r)| r).collect(),
        })
    }

    // --------------------------------------------------------------- DML

    fn run_insert(
        &self,
        table_name: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<usize> {
        let table = self.catalog.get(table_name)?;
        let schema = table.schema();
        let target_ordinals: Vec<usize> = match columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    schema.column_index(c).ok_or_else(|| {
                        Error::Analysis(format!("unknown column {c} in table {table_name}"))
                    })
                })
                .collect::<Result<_>>()?,
            None => (0..schema.arity()).collect(),
        };

        let value_rows: Vec<Row> = match source {
            InsertSource::Values(expr_rows) => {
                let empty = RowSchema::default();
                let mut out = Vec::with_capacity(expr_rows.len());
                for exprs in expr_rows {
                    let env = Env {
                        schema: &empty,
                        row: &[],
                        params: self.params,
                    };
                    let mut row = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        row.push(eval(e, &env)?);
                    }
                    out.push(row);
                }
                out
            }
            InsertSource::Select(sel) => self.run_select(sel)?.rows,
        };

        let mut count = 0;
        for values in value_rows {
            if values.len() != target_ordinals.len() {
                return Err(Error::Analysis(format!(
                    "INSERT into {table_name} expects {} values, got {}",
                    target_ordinals.len(),
                    values.len()
                )));
            }
            let mut row = vec![Value::Null; schema.arity()];
            for (ordinal, v) in target_ordinals.iter().zip(values) {
                row[*ordinal] = v;
            }
            let row = schema.check_row(row)?;
            self.ctx.insert(&table, row)?;
            count += 1;
        }
        Ok(count)
    }

    fn run_update(
        &self,
        table_name: &str,
        assignments: &[(String, Expr)],
        predicate: Option<&Expr>,
    ) -> Result<usize> {
        let table = self.catalog.get(table_name)?;
        let schema = table.schema();
        let names: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
        let row_schema = RowSchema::for_table(table_name, &names);
        let assigned: Vec<(usize, &Expr)> = assignments
            .iter()
            .map(|(name, e)| {
                schema.column_index(name).map(|i| (i, e)).ok_or_else(|| {
                    Error::Analysis(format!("unknown column {name} in table {table_name}"))
                })
            })
            .collect::<Result<_>>()?;

        let stats = TableStatsView::at(&table, &schema, self.ctx.snapshot.height);
        let path = choose_access_path(&schema, table_name, predicate, self.params, &stats)?;
        let targets = match &path {
            Some(p) => self.ctx.scan(&table, Some((p.column, &p.range)))?,
            None => self.ctx.scan(&table, None)?,
        };

        let mut count = 0;
        for target in targets {
            if let Some(pred) = predicate {
                let env = Env {
                    schema: &row_schema,
                    row: &target.data,
                    params: self.params,
                };
                if !eval(pred, &env)?.is_truthy() {
                    continue;
                }
            }
            let env = Env {
                schema: &row_schema,
                row: &target.data,
                params: self.params,
            };
            let mut new_row = target.data.clone();
            for (ordinal, e) in &assigned {
                new_row[*ordinal] = eval(e, &env)?;
            }
            let new_row = schema.check_row(new_row)?;
            self.ctx.update(&table, &target, new_row)?;
            count += 1;
        }
        Ok(count)
    }

    fn run_delete(&self, table_name: &str, predicate: Option<&Expr>) -> Result<usize> {
        let table = self.catalog.get(table_name)?;
        let schema = table.schema();
        let names: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
        let row_schema = RowSchema::for_table(table_name, &names);
        let stats = TableStatsView::at(&table, &schema, self.ctx.snapshot.height);
        let path = choose_access_path(&schema, table_name, predicate, self.params, &stats)?;
        let targets = match &path {
            Some(p) => self.ctx.scan(&table, Some((p.column, &p.range)))?,
            None => self.ctx.scan(&table, None)?,
        };
        let mut count = 0;
        for target in targets {
            if let Some(pred) = predicate {
                let env = Env {
                    schema: &row_schema,
                    row: &target.data,
                    params: self.params,
                };
                if !eval(pred, &env)?.is_truthy() {
                    continue;
                }
            }
            self.ctx.delete(&table, &target)?;
            count += 1;
        }
        Ok(count)
    }
}

fn nested_loop(
    combined: &RowSchema,
    left_rows: &[Row],
    right_rows: &[Row],
    on: &Expr,
    params: &[Value],
) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for lrow in left_rows {
        for rrow in right_rows {
            let mut row = lrow.clone();
            row.extend(rrow.iter().cloned());
            let env = Env {
                schema: combined,
                row: &row,
                params,
            };
            if eval(on, &env)?.is_truthy() {
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// The single column ordinal a covering-index scan could serve, if the
/// whole statement consumes exactly one column of the scanned table.
/// Wildcards, unresolvable names and references to other qualifiers all
/// disqualify (conservatively — covering is an optimization, never a
/// requirement).
fn covering_candidate(sel: &SelectStmt, alias: &str, schema: &TableSchema) -> Option<usize> {
    if sel
        .projections
        .iter()
        .any(|p| !matches!(p, SelectItem::Expr { .. }))
    {
        return None; // wildcards need every column
    }
    let mut cols = std::collections::BTreeSet::new();
    let mut ok = true;
    let mut visit = |e: &Expr| {
        e.walk(&mut |sub| {
            if let Expr::Column { table, name } = sub {
                if table.as_deref().is_none_or(|t| t == alias) {
                    match schema.column_index(name) {
                        Some(i) => {
                            cols.insert(i);
                        }
                        None => ok = false,
                    }
                } else {
                    ok = false;
                }
            }
        });
    };
    for p in &sel.projections {
        if let SelectItem::Expr { expr, .. } = p {
            visit(expr);
        }
    }
    if let Some(p) = &sel.predicate {
        visit(p);
    }
    for g in &sel.group_by {
        visit(g);
    }
    if let Some(h) = &sel.having {
        visit(h);
    }
    for o in &sel.order_by {
        visit(&o.expr);
    }
    if !ok || cols.len() != 1 {
        return None;
    }
    cols.into_iter().next()
}

/// Sort-merge equi-join: sort both sides on the join key (total value
/// order, stable) and merge, cross-producting equal-key groups. NULL
/// keys never match. Output is ordered by the join key — exactly what a
/// downstream ORDER BY on that key wants.
#[allow(clippy::too_many_arguments)]
fn sort_merge_join(
    combined: &RowSchema,
    left_schema: &RowSchema,
    left_rows: &[Row],
    right_rows: &[Row],
    right_col: usize,
    key_expr: &Expr,
    on: &Expr,
    params: &[Value],
) -> Result<Vec<Row>> {
    let mut left_keyed: Vec<(Value, &Row)> = Vec::with_capacity(left_rows.len());
    for lrow in left_rows {
        let env = Env {
            schema: left_schema,
            row: lrow,
            params,
        };
        let key = eval(key_expr, &env)?;
        if !key.is_null() {
            left_keyed.push((key, lrow));
        }
    }
    left_keyed.sort_by(|(a, _), (b, _)| a.cmp_total(b));
    let mut right_keyed: Vec<(&Value, &Row)> = right_rows
        .iter()
        .filter(|r| !r[right_col].is_null())
        .map(|r| (&r[right_col], r))
        .collect();
    right_keyed.sort_by(|(a, _), (b, _)| a.cmp_total(b));

    let mut out = Vec::new();
    let (mut li, mut ri) = (0, 0);
    while li < left_keyed.len() && ri < right_keyed.len() {
        match left_keyed[li].0.cmp_total(right_keyed[ri].0) {
            std::cmp::Ordering::Less => li += 1,
            std::cmp::Ordering::Greater => ri += 1,
            std::cmp::Ordering::Equal => {
                let rend = right_keyed[ri..]
                    .iter()
                    .position(|(k, _)| k.cmp_total(&left_keyed[li].0).is_ne())
                    .map(|n| ri + n)
                    .unwrap_or(right_keyed.len());
                while li < left_keyed.len() && left_keyed[li].0.cmp_total(right_keyed[ri].0).is_eq()
                {
                    for (_, rrow) in &right_keyed[ri..rend] {
                        let mut row = left_keyed[li].1.clone();
                        row.extend(rrow.iter().cloned());
                        let env = Env {
                            schema: combined,
                            row: &row,
                            params,
                        };
                        if eval(on, &env)?.is_truthy() {
                            out.push(row);
                        }
                    }
                    li += 1;
                }
                ri = rend;
            }
        }
    }
    Ok(out)
}

fn sort_by_keys(keyed: &mut [(Vec<Value>, Row)], order_by: &[OrderItem]) {
    keyed.sort_by(|(a, _), (b, _)| {
        for (i, item) in order_by.iter().enumerate() {
            let ord = a[i].cmp_total(&b[i]);
            let ord = if item.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn output_columns(projections: &[SelectItem], schema: &RowSchema) -> Result<Vec<String>> {
    let mut out = Vec::new();
    for item in projections {
        match item {
            SelectItem::Wildcard => {
                out.extend(schema.columns().iter().map(|(_, n)| n.clone()));
            }
            SelectItem::QualifiedWildcard(q) => {
                let ords = schema.ordinals_for_qualifier(q);
                if ords.is_empty() {
                    return Err(Error::Analysis(format!("unknown table alias {q}")));
                }
                out.extend(ords.into_iter().map(|i| schema.columns()[i].1.clone()));
            }
            SelectItem::Expr { expr, alias } => out.push(match alias {
                Some(a) => a.clone(),
                None => default_column_name(expr),
            }),
        }
    }
    Ok(out)
}

fn default_column_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => "?column?".to_string(),
    }
}

/// Evaluate an expression in a group context: aggregate sub-expressions are
/// replaced by their precomputed values.
fn eval_with_aggs(
    expr: &Expr,
    env: &Env<'_>,
    agg_exprs: &[Expr],
    agg_values: &[Value],
) -> Result<Value> {
    if let Some(i) = agg_exprs.iter().position(|a| a == expr) {
        return Ok(agg_values[i].clone());
    }
    match expr {
        Expr::Binary { op, left, right } => {
            // Rebuild with substituted children via recursive evaluation.
            let l = eval_with_aggs(left, env, agg_exprs, agg_values)?;
            let r = eval_with_aggs(right, env, agg_exprs, agg_values)?;
            let le = Expr::Literal(l);
            let re = Expr::Literal(r);
            eval(&Expr::binary(*op, le, re), env)
        }
        Expr::Unary { op, operand } => {
            let v = eval_with_aggs(operand, env, agg_exprs, agg_values)?;
            eval(
                &Expr::Unary {
                    op: *op,
                    operand: Box::new(Expr::Literal(v)),
                },
                env,
            )
        }
        Expr::IsNull {
            expr: inner,
            negated,
        } => {
            let v = eval_with_aggs(inner, env, agg_exprs, agg_values)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        _ => eval(expr, env),
    }
}

/// Streaming aggregate accumulator.
enum AggAcc {
    Count(i64),
    CountExpr(i64),
    Sum(Option<Value>),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggAcc {
    fn new(expr: &Expr) -> Result<AggAcc> {
        let Expr::Function { name, args, star } = expr else {
            return Err(Error::internal("aggregate accumulator over non-function"));
        };
        let check_one_arg = || -> Result<()> {
            if *star || args.len() != 1 {
                return Err(Error::Analysis(format!("{name}() expects one argument")));
            }
            Ok(())
        };
        Ok(match name.as_str() {
            "count" if *star => AggAcc::Count(0),
            "count" => {
                check_one_arg()?;
                AggAcc::CountExpr(0)
            }
            "sum" => {
                check_one_arg()?;
                AggAcc::Sum(None)
            }
            "avg" => {
                check_one_arg()?;
                AggAcc::Avg { sum: 0.0, n: 0 }
            }
            "min" => {
                check_one_arg()?;
                AggAcc::Min(None)
            }
            "max" => {
                check_one_arg()?;
                AggAcc::Max(None)
            }
            other => return Err(Error::Analysis(format!("unknown aggregate {other}()"))),
        })
    }

    fn arg(expr: &Expr) -> &Expr {
        match expr {
            Expr::Function { args, .. } => &args[0],
            _ => unreachable!("checked in new()"),
        }
    }

    fn fold(&mut self, expr: &Expr, env: &Env<'_>) -> Result<()> {
        match self {
            AggAcc::Count(n) => *n += 1,
            AggAcc::CountExpr(n) => {
                if !eval(Self::arg(expr), env)?.is_null() {
                    *n += 1;
                }
            }
            AggAcc::Sum(acc) => {
                let v = eval(Self::arg(expr), env)?;
                if !v.is_null() {
                    *acc = Some(match acc.take() {
                        Some(cur) => cur.add(&v)?,
                        None => v,
                    });
                }
            }
            AggAcc::Avg { sum, n } => {
                let v = eval(Self::arg(expr), env)?;
                if !v.is_null() {
                    *sum += v.as_f64()?;
                    *n += 1;
                }
            }
            AggAcc::Min(acc) => {
                let v = eval(Self::arg(expr), env)?;
                if !v.is_null() {
                    let replace = acc.as_ref().is_none_or(|cur| v.cmp_total(cur).is_lt());
                    if replace {
                        *acc = Some(v);
                    }
                }
            }
            AggAcc::Max(acc) => {
                let v = eval(Self::arg(expr), env)?;
                if !v.is_null() {
                    let replace = acc.as_ref().is_none_or(|cur| v.cmp_total(cur).is_gt());
                    if replace {
                        *acc = Some(v);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Result<Value> {
        Ok(match self {
            AggAcc::Count(n) | AggAcc::CountExpr(n) => Value::Int(*n),
            AggAcc::Sum(v) => v.clone().unwrap_or(Value::Null),
            AggAcc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
            AggAcc::Min(v) | AggAcc::Max(v) => v.clone().unwrap_or(Value::Null),
        })
    }
}

fn build_create_table(
    name: &str,
    columns: &[bcrdb_sql::ast::ColumnDef],
    primary_key: &[String],
) -> Result<CatalogOp> {
    let cols: Vec<Column> = columns
        .iter()
        .map(|c| Column {
            name: c.name.clone(),
            dtype: c.dtype,
            nullable: c.nullable,
        })
        .collect();
    let mut pk: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.inline_pk)
        .map(|(i, _)| i)
        .collect();
    if !primary_key.is_empty() {
        if !pk.is_empty() {
            return Err(Error::Analysis(format!(
                "table {name}: both inline and table-level PRIMARY KEY given"
            )));
        }
        pk = primary_key
            .iter()
            .map(|n| {
                columns.iter().position(|c| &c.name == n).ok_or_else(|| {
                    Error::Analysis(format!("unknown PRIMARY KEY column {n} in table {name}"))
                })
            })
            .collect::<Result<_>>()?;
    }
    let mut schema = TableSchema::new(name, cols, pk)?;
    // PK columns are implicitly NOT NULL.
    for &i in &schema.primary_key.clone() {
        schema.columns[i].nullable = false;
    }
    Ok(CatalogOp::CreateTable(schema))
}
