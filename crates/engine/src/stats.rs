//! The planner's view of table statistics, pinned at the transaction's
//! snapshot height.
//!
//! Plans feed SSI predicate locks and therefore abort decisions and the
//! chain bytes (§4.3), so plan inputs must be identical on every replica.
//! The view reads the *sealed* summary as of the snapshot height — never
//! the live counters — so a transaction racing a later block's commit
//! still plans from the same inputs everywhere. When no summary is
//! available that early (fresh table, pre-genesis snapshot), the view is
//! empty and the cost model falls back to fixed default selectivities,
//! which are constants and therefore equally deterministic.

use bcrdb_common::ids::BlockHeight;
use bcrdb_common::schema::TableSchema;
use bcrdb_storage::stats::{ColumnSummary, TableSummary};
use bcrdb_storage::table::Table;

/// Snapshot-pinned statistics of one table, plus the schema facts the
/// estimator consults (single-column primary key uniqueness).
#[derive(Clone, Debug, Default)]
pub struct TableStatsView {
    summary: Option<TableSummary>,
    unique_column: Option<usize>,
}

impl TableStatsView {
    /// The sealed summary of `table` as of `height`, or an empty view if
    /// nothing was sealed that early.
    pub fn at(table: &Table, schema: &TableSchema, height: BlockHeight) -> TableStatsView {
        TableStatsView {
            summary: table.stats_summary_at(height),
            unique_column: unique_column(schema),
        }
    }

    /// A stats-free view over `schema` (planning before any block sealed
    /// a summary; also the unit-test entry point).
    pub fn empty(schema: &TableSchema) -> TableStatsView {
        TableStatsView {
            summary: None,
            unique_column: unique_column(schema),
        }
    }

    /// A view over an explicit summary (tests).
    pub fn with_summary(schema: &TableSchema, summary: TableSummary) -> TableStatsView {
        TableStatsView {
            summary: Some(summary),
            unique_column: unique_column(schema),
        }
    }

    /// Live row count at the snapshot, if a summary is available.
    pub fn rows(&self) -> Option<u64> {
        self.summary.as_ref().map(|s| s.rows)
    }

    /// Summary of one column, if it is a stat column of a sealed summary.
    pub fn column(&self, col: usize) -> Option<&ColumnSummary> {
        self.summary.as_ref().and_then(|s| s.column(col))
    }

    /// Is `col` the table's single-column primary key (unique by
    /// construction, so equality selects at most one row even without a
    /// sealed summary)?
    pub fn is_unique(&self, col: usize) -> bool {
        self.unique_column == Some(col)
    }
}

fn unique_column(schema: &TableSchema) -> Option<usize> {
    if schema.primary_key.len() == 1 {
        Some(schema.primary_key[0])
    } else {
        None
    }
}
