//! Winternitz one-time signatures (W-OTS) over SHA-256.
//!
//! Parameters: `n = 32` bytes, Winternitz parameter `w = 16` (4 bits per
//! chunk), so a 32-byte message digest splits into 64 chunks plus a 3-chunk
//! checksum → 67 hash chains. Chain steps are domain-separated by
//! `(chain index, step index)` to rule out cross-chain splicing.
//!
//! Each key signs **exactly one** message; the Merkle signature scheme in
//! [`crate::mss`] lifts this to a many-time scheme.

use crate::hmac::Prf;
use crate::sha256::{Digest, Sha256};

/// Bits per Winternitz chunk (w = 16 = 2^4).
const LOG_W: u32 = 4;
/// Chain length minus one: each chain is iterated at most `W - 1` times.
const W: u32 = 1 << LOG_W;
/// Number of message chunks (256 bits / 4 bits).
const MSG_CHUNKS: usize = 64;
/// Number of checksum chunks: max checksum = 64 * 15 = 960 < 16^3.
const CHECKSUM_CHUNKS: usize = 3;
/// Total number of hash chains.
pub const CHAINS: usize = MSG_CHUNKS + CHECKSUM_CHUNKS;

/// A W-OTS private key: one 32-byte seed per chain.
#[derive(Clone)]
pub struct WotsPrivateKey {
    chains: Vec<Digest>,
}

/// A W-OTS public key in compressed form: SHA-256 over all chain ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WotsPublicKey(pub Digest);

/// A W-OTS signature: one intermediate chain value per chain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WotsSignature {
    /// `values[i]` is chain `i` advanced by the i-th message chunk.
    pub values: Vec<Digest>,
}

/// One step of the hash chain, domain-separated by chain and step index.
fn chain_step(value: &Digest, chain: usize, step: u32) -> Digest {
    let mut h = Sha256::new();
    h.update(b"wots-chain");
    h.update(&(chain as u32).to_be_bytes());
    h.update(&step.to_be_bytes());
    h.update(value);
    h.finalize()
}

/// Advance `value` along chain `chain` from step `from` for `count` steps.
fn chain(value: Digest, chain_idx: usize, from: u32, count: u32) -> Digest {
    let mut v = value;
    for s in from..from + count {
        v = chain_step(&v, chain_idx, s);
    }
    v
}

/// Split a digest into base-`W` chunks followed by the checksum chunks.
fn message_chunks(digest: &Digest) -> [u32; CHAINS] {
    let mut chunks = [0u32; CHAINS];
    for (i, byte) in digest.iter().enumerate() {
        chunks[i * 2] = (byte >> 4) as u32;
        chunks[i * 2 + 1] = (byte & 0x0f) as u32;
    }
    let checksum: u32 = chunks[..MSG_CHUNKS].iter().map(|c| W - 1 - c).sum();
    // Big-endian base-16 digits of the checksum.
    chunks[MSG_CHUNKS] = (checksum >> 8) & 0x0f;
    chunks[MSG_CHUNKS + 1] = (checksum >> 4) & 0x0f;
    chunks[MSG_CHUNKS + 2] = checksum & 0x0f;
    chunks
}

impl WotsPrivateKey {
    /// Derive a one-time private key from a master seed and a leaf index
    /// (deterministic, so the private key never needs storing).
    pub fn derive(master_seed: &[u8], leaf_index: u64) -> WotsPrivateKey {
        let mut domain = Vec::with_capacity(16);
        domain.extend_from_slice(b"wots-sk");
        domain.extend_from_slice(&leaf_index.to_be_bytes());
        let prf = Prf::new(master_seed, &domain);
        let chains = (0..CHAINS as u64).map(|i| prf.block(i)).collect();
        WotsPrivateKey { chains }
    }

    /// Compute the corresponding public key (iterate all chains to the end,
    /// then compress).
    pub fn public_key(&self) -> WotsPublicKey {
        let mut h = Sha256::new();
        h.update(b"wots-pk");
        for (i, seed) in self.chains.iter().enumerate() {
            let end = chain(*seed, i, 0, W - 1);
            h.update(&end);
        }
        WotsPublicKey(h.finalize())
    }

    /// Sign a 32-byte message digest.
    pub fn sign(&self, digest: &Digest) -> WotsSignature {
        let chunks = message_chunks(digest);
        let values = self
            .chains
            .iter()
            .enumerate()
            .map(|(i, seed)| chain(*seed, i, 0, chunks[i]))
            .collect();
        WotsSignature { values }
    }
}

impl WotsSignature {
    /// Recompute the public key this signature corresponds to for `digest`.
    /// Verification succeeds iff the result equals the signer's public key.
    pub fn recover_public_key(&self, digest: &Digest) -> WotsPublicKey {
        let chunks = message_chunks(digest);
        let mut h = Sha256::new();
        h.update(b"wots-pk");
        for (i, v) in self.values.iter().enumerate() {
            let end = chain(*v, i, chunks[i], W - 1 - chunks[i]);
            h.update(&end);
        }
        WotsPublicKey(h.finalize())
    }

    /// Verify against a known public key.
    pub fn verify(&self, digest: &Digest, pk: &WotsPublicKey) -> bool {
        self.values.len() == CHAINS && self.recover_public_key(digest) == *pk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn sign_verify_roundtrip() {
        let sk = WotsPrivateKey::derive(b"master-seed", 0);
        let pk = sk.public_key();
        let digest = sha256(b"hello blockchain");
        let sig = sk.sign(&digest);
        assert!(sig.verify(&digest, &pk));
    }

    #[test]
    fn wrong_message_fails() {
        let sk = WotsPrivateKey::derive(b"master-seed", 0);
        let pk = sk.public_key();
        let sig = sk.sign(&sha256(b"msg-a"));
        assert!(!sig.verify(&sha256(b"msg-b"), &pk));
    }

    #[test]
    fn wrong_key_fails() {
        let sk0 = WotsPrivateKey::derive(b"master-seed", 0);
        let sk1 = WotsPrivateKey::derive(b"master-seed", 1);
        let digest = sha256(b"msg");
        let sig = sk0.sign(&digest);
        assert!(!sig.verify(&digest, &sk1.public_key()));
    }

    #[test]
    fn tampered_signature_fails() {
        let sk = WotsPrivateKey::derive(b"seed", 7);
        let pk = sk.public_key();
        let digest = sha256(b"msg");
        let mut sig = sk.sign(&digest);
        sig.values[13][0] ^= 0x01;
        assert!(!sig.verify(&digest, &pk));
        // Truncated signature fails too (not a panic).
        let mut short = sk.sign(&digest);
        short.values.pop();
        assert!(!short.verify(&digest, &pk));
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = WotsPrivateKey::derive(b"seed", 3).public_key();
        let b = WotsPrivateKey::derive(b"seed", 3).public_key();
        let c = WotsPrivateKey::derive(b"seed", 4).public_key();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn checksum_prevents_chunk_increase_forgery() {
        // The classic WOTS forgery is advancing a chain further (increasing
        // a chunk); the checksum chunks then must *decrease*, which requires
        // inverting the hash. Emulate by checking two digests whose chunks
        // differ produce different checksum sections.
        let d1 = sha256(b"x");
        let mut d2 = d1;
        d2[0] = d2[0].wrapping_add(1);
        let c1 = message_chunks(&d1);
        let c2 = message_chunks(&d2);
        assert_ne!(c1[..MSG_CHUNKS], c2[..MSG_CHUNKS]);
        let sum1: u32 = c1[..MSG_CHUNKS].iter().map(|c| W - 1 - c).sum();
        let sum2: u32 = c2[..MSG_CHUNKS].iter().map(|c| W - 1 - c).sum();
        assert_ne!(sum1, sum2);
    }

    #[test]
    fn all_chunk_extremes_sign_correctly() {
        // Digest of all zeros and all 0xff exercise chain boundaries
        // (0 iterations and W-1 iterations).
        let sk = WotsPrivateKey::derive(b"seed", 0);
        let pk = sk.public_key();
        for d in [[0u8; 32], [0xffu8; 32]] {
            let sig = sk.sign(&d);
            assert!(sig.verify(&d, &pk));
        }
    }
}
