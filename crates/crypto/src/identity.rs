//! Identities, certificates and the certificate registry.
//!
//! Every participant — client users, organization admins, database peer
//! nodes and orderer nodes — holds a key pair and registers a certificate
//! with every database node (the paper's `pgCerts` catalog table, §4.2).
//! Transactions are signed by the invoking client and verified by each node
//! before execution; blocks are signed by orderer nodes and verified by the
//! middleware on receipt.
//!
//! Two schemes are provided:
//!
//! * [`Scheme::HashBased`] — the real many-time hash-based signature
//!   ([`crate::mss`]). Unforgeable; used by default and by all security
//!   tests.
//! * [`Scheme::Sim`] — a *simulated* signature (`sha256(pk ‖ msg)`): the
//!   correct wire shape and deterministic verification outcome but **no
//!   unforgeability**. It exists so the performance benchmarks measure the
//!   paper's protocol costs rather than our hash-based crypto, mirroring
//!   the substitution table in DESIGN.md. Never use it outside benchmarks.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::mss::{MssPrivateKey, MssPublicKey, MssSignature};
use crate::sha256::{sha256, Digest, Sha256};

/// Signature scheme selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// Real hash-based many-time signatures; `height` bounds the number of
    /// signatures to `2^height`.
    HashBased {
        /// Merkle tree height of the MSS key.
        height: u32,
    },
    /// Simulated signatures for performance benchmarking only.
    Sim,
}

/// The role a certificate grants on the network (used for access control of
/// system contracts, §3.7).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Role {
    /// Organization administrator: may deploy/approve contracts and manage
    /// users.
    Admin,
    /// Ordinary client user: may invoke deployed contracts and query.
    Client,
    /// A database peer node's own identity.
    Peer,
    /// An ordering service node's identity.
    Orderer,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Admin => "admin",
            Role::Client => "client",
            Role::Peer => "peer",
            Role::Orderer => "orderer",
        };
        f.write_str(s)
    }
}

/// A public key under either scheme.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PublicKey {
    /// MSS root + height.
    HashBased(MssPublicKey),
    /// Simulated key: just a unique digest.
    Sim(Digest),
}

impl PublicKey {
    /// Stable byte representation (for hashing into transaction ids).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PublicKey::HashBased(pk) => {
                let mut v = Vec::with_capacity(37);
                v.push(1u8);
                v.extend_from_slice(&pk.root);
                v.extend_from_slice(&pk.height.to_be_bytes());
                v
            }
            PublicKey::Sim(d) => {
                let mut v = Vec::with_capacity(33);
                v.push(2u8);
                v.extend_from_slice(d);
                v
            }
        }
    }
}

/// A signature under either scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Signature {
    /// Hash-based MSS signature.
    HashBased(Box<MssSignature>),
    /// Simulated signature digest.
    Sim(Digest),
}

impl Signature {
    /// Approximate wire size in bytes (used by the network simulator to
    /// model bandwidth).
    pub fn wire_size(&self) -> usize {
        const DIGEST_WIRE: usize = std::mem::size_of::<Digest>();
        match self {
            // One WOTS chain value per chain, the auth path (digest plus
            // direction byte per step), and the 8-byte leaf index.
            Signature::HashBased(s) => {
                crate::wots::CHAINS * DIGEST_WIRE + s.auth_path.steps.len() * (DIGEST_WIRE + 1) + 8
            }
            Signature::Sim(_) => DIGEST_WIRE,
        }
    }
}

/// A private signing key plus its public half.
pub struct KeyPair {
    name: String,
    public: PublicKey,
    inner: KeyPairInner,
}

enum KeyPairInner {
    HashBased(MssPrivateKey),
    /// The simulated scheme is keyless by construction (see module docs);
    /// the "secret" only feeds public-key derivation in `generate`.
    Sim,
}

impl KeyPair {
    /// Deterministically generate a key pair from a seed string.
    pub fn generate(name: impl Into<String>, seed: &[u8], scheme: Scheme) -> KeyPair {
        let name = name.into();
        match scheme {
            Scheme::HashBased { height } => {
                let sk = MssPrivateKey::generate(seed, height);
                let public = PublicKey::HashBased(sk.public_key());
                KeyPair {
                    name,
                    public,
                    inner: KeyPairInner::HashBased(sk),
                }
            }
            Scheme::Sim => {
                let mut h = Sha256::new();
                h.update(b"sim-keypair");
                h.update(seed);
                let secret = h.finalize();
                let public = PublicKey::Sim(sha256(&secret));
                KeyPair {
                    name,
                    public,
                    inner: KeyPairInner::Sim,
                }
            }
        }
    }

    /// Key owner's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Public half.
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// Sign a message (hashed internally). Returns `None` only when a
    /// hash-based key pair has exhausted its one-time keys.
    pub fn sign(&self, message: &[u8]) -> Option<Signature> {
        let digest = sha256(message);
        self.sign_digest(&digest)
    }

    /// Sign a precomputed digest.
    pub fn sign_digest(&self, digest: &Digest) -> Option<Signature> {
        match &self.inner {
            KeyPairInner::HashBased(sk) => {
                sk.sign(digest).map(|s| Signature::HashBased(Box::new(s)))
            }
            KeyPairInner::Sim => {
                // The simulated scheme binds signer identity and message but
                // is forgeable by anyone knowing the public key (see module
                // docs). Shape-compatible, security-free.
                Some(Signature::Sim(sim_signature(&self.public, digest)))
            }
        }
    }

    /// Remaining signatures (hash-based keys are finite).
    pub fn remaining_signatures(&self) -> Option<u64> {
        match &self.inner {
            KeyPairInner::HashBased(sk) => Some(sk.remaining()),
            KeyPairInner::Sim => None,
        }
    }
}

fn sim_signature(pk: &PublicKey, digest: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(b"sim-signature");
    h.update(&pk.to_bytes());
    h.update(digest);
    h.finalize()
}

/// Verify `signature` over `message` against `public_key`.
pub fn verify(public_key: &PublicKey, message: &[u8], signature: &Signature) -> bool {
    verify_digest(public_key, &sha256(message), signature)
}

/// Verify against a precomputed digest.
pub fn verify_digest(public_key: &PublicKey, digest: &Digest, signature: &Signature) -> bool {
    match (public_key, signature) {
        (PublicKey::HashBased(pk), Signature::HashBased(sig)) => sig.verify(digest, pk),
        (PublicKey::Sim(_), Signature::Sim(sig)) => *sig == sim_signature(public_key, digest),
        _ => false,
    }
}

/// A certificate binding a user name to a public key, organization and
/// role. In the paper certificates are registered with every node at
/// network-setup time (§3.7); deploy-time user-management system contracts
/// can add more.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Network-unique user name, conventionally `org/user`.
    pub name: String,
    /// Owning organization.
    pub org: String,
    /// Role granted.
    pub role: Role,
    /// The registered public key.
    pub public_key: PublicKey,
}

/// The certificate registry each node keeps (the `pgCerts` analogue).
///
/// Lookups are by user name. The registry is shared between node
/// components via `Arc` and is append/update-only.
#[derive(Default)]
pub struct CertificateRegistry {
    certs: parking::RwLock<HashMap<String, Certificate>>,
}

/// Tiny RwLock shim over std so this crate keeps zero dependencies.
mod parking {
    /// Re-export std's RwLock under the structure the rest of the crate
    /// expects (`read()`/`write()` that never poison-panic in practice:
    /// we map poisoning into the inner value since all writers are
    /// panic-free data inserts).
    pub struct RwLock<T>(std::sync::RwLock<T>);

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock(std::sync::RwLock::new(T::default()))
        }
    }

    impl<T> RwLock<T> {
        pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
            self.0.read().unwrap_or_else(|e| e.into_inner())
        }

        pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
            self.0.write().unwrap_or_else(|e| e.into_inner())
        }
    }
}

impl CertificateRegistry {
    /// Empty registry.
    pub fn new() -> Arc<CertificateRegistry> {
        Arc::new(CertificateRegistry::default())
    }

    /// Register (or replace) a certificate.
    pub fn register(&self, cert: Certificate) {
        self.certs.write().insert(cert.name.clone(), cert);
    }

    /// Remove a certificate; returns true if it existed.
    pub fn revoke(&self, name: &str) -> bool {
        self.certs.write().remove(name).is_some()
    }

    /// Look up a certificate by user name.
    pub fn lookup(&self, name: &str) -> Option<Certificate> {
        self.certs.read().get(name).cloned()
    }

    /// All registered names (sorted, for deterministic iteration).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.certs.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered certificates.
    pub fn len(&self) -> usize {
        self.certs.read().len()
    }

    /// True if no certificates are registered.
    pub fn is_empty(&self) -> bool {
        self.certs.read().is_empty()
    }

    /// Verify a signature by a named user; false if unknown user.
    pub fn verify_by_name(&self, name: &str, message: &[u8], sig: &Signature) -> bool {
        match self.lookup(name) {
            Some(cert) => verify(&cert.public_key, message, sig),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashbased_sign_verify() {
        let kp = KeyPair::generate("org1/alice", b"alice-seed", Scheme::HashBased { height: 2 });
        let sig = kp.sign(b"tx payload").unwrap();
        assert!(verify(&kp.public_key(), b"tx payload", &sig));
        assert!(!verify(&kp.public_key(), b"other payload", &sig));
    }

    #[test]
    fn sim_sign_verify() {
        let kp = KeyPair::generate("bench/bob", b"bob-seed", Scheme::Sim);
        let sig = kp.sign(b"tx payload").unwrap();
        assert!(verify(&kp.public_key(), b"tx payload", &sig));
        assert!(!verify(&kp.public_key(), b"other", &sig));
        assert!(kp.remaining_signatures().is_none());
    }

    #[test]
    fn scheme_mismatch_fails() {
        let hb = KeyPair::generate("a", b"s1", Scheme::HashBased { height: 1 });
        let sim = KeyPair::generate("b", b"s2", Scheme::Sim);
        let sig = sim.sign(b"m").unwrap();
        assert!(!verify(&hb.public_key(), b"m", &sig));
    }

    #[test]
    fn registry_lookup_and_verify() {
        let reg = CertificateRegistry::new();
        let kp = KeyPair::generate("org1/alice", b"seed", Scheme::HashBased { height: 2 });
        reg.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: kp.public_key(),
        });
        let sig = kp.sign(b"hello").unwrap();
        assert!(reg.verify_by_name("org1/alice", b"hello", &sig));
        assert!(!reg.verify_by_name("org1/mallory", b"hello", &sig));
        assert_eq!(reg.names(), vec!["org1/alice".to_string()]);
        assert!(reg.revoke("org1/alice"));
        assert!(!reg.verify_by_name("org1/alice", b"hello", &sig));
        assert!(reg.is_empty());
    }

    #[test]
    fn impersonation_fails() {
        // Mallory registers her own cert but cannot sign as alice.
        let reg = CertificateRegistry::new();
        let alice = KeyPair::generate("org1/alice", b"a", Scheme::HashBased { height: 1 });
        let mallory = KeyPair::generate("org1/mallory", b"m", Scheme::HashBased { height: 1 });
        reg.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: alice.public_key(),
        });
        let forged = mallory.sign(b"transfer all funds").unwrap();
        assert!(!reg.verify_by_name("org1/alice", b"transfer all funds", &forged));
    }

    #[test]
    fn key_exhaustion_surfaces() {
        let kp = KeyPair::generate("x", b"s", Scheme::HashBased { height: 1 });
        assert_eq!(kp.remaining_signatures(), Some(2));
        assert!(kp.sign(b"1").is_some());
        assert!(kp.sign(b"2").is_some());
        assert!(kp.sign(b"3").is_none());
    }

    #[test]
    fn wire_size_shapes() {
        let hb = KeyPair::generate("a", b"s", Scheme::HashBased { height: 2 });
        let sim = KeyPair::generate("b", b"s", Scheme::Sim);
        assert!(hb.sign(b"m").unwrap().wire_size() > 2000);
        assert_eq!(sim.sign(b"m").unwrap().wire_size(), 32);
    }
}
