#![warn(missing_docs)]
//! # bcrdb-crypto
//!
//! Self-contained cryptographic substrate for the blockchain relational
//! database. Everything is implemented from scratch on top of SHA-256:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 (tested against NIST vectors).
//! * [`hmac`] — HMAC-SHA256 (RFC 2104 / RFC 4231 vectors).
//! * [`merkle`] — binary Merkle trees with membership proofs, used for
//!   block transaction roots and checkpoint digests.
//! * [`wots`] — Winternitz one-time signatures (hash-based).
//! * [`mss`] — a Merkle signature scheme turning WOTS into a many-time
//!   signature (XMSS-style), used for client/orderer/node identities.
//! * [`identity`] — key pairs, self-describing certificates and the
//!   certificate registry every node holds (the paper's `pgCerts`).
//!
//! ## Why hash-based signatures?
//!
//! The paper uses conventional PKI (X.509 + RSA/ECDSA). The protocol only
//! needs *some* unforgeable signature scheme with public verification; a
//! hash-based scheme provides that with no external dependencies and fully
//! deterministic, auditable code (see DESIGN.md §1 for the substitution
//! argument).

pub mod hmac;
pub mod identity;
pub mod merkle;
pub mod mss;
pub mod sha256;
pub mod wots;

pub use identity::{Certificate, CertificateRegistry, KeyPair, PublicKey, Signature};
pub use merkle::MerkleTree;
pub use sha256::{sha256, Digest, Sha256};

/// Hash the concatenation of two digests (interior Merkle node, hash-chain
/// link).
pub fn hash_pair(a: &Digest, b: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(a);
    h.update(b);
    h.finalize()
}
