//! Binary Merkle trees.
//!
//! Used for (a) the per-block transaction root stored in block headers,
//! (b) the public-key tree of the many-time signature scheme ([`crate::mss`]),
//! and (c) compact membership proofs so a light client can check that a
//! transaction is part of a block without downloading the whole block.
//!
//! Leaves are domain-separated from interior nodes (prefix byte `0x00` vs
//! `0x01`) to prevent second-preimage splicing attacks.

use crate::sha256::{Digest, Sha256};

const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// Hash a leaf payload.
pub fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(data);
    h.finalize()
}

/// Hash two child digests into a parent.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// A fully materialized Merkle tree (levels stored bottom-up).
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = single root.
    levels: Vec<Vec<Digest>>,
}

/// One step of a membership proof: the sibling digest and whether it sits
/// on the left of the path node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// Sibling hash.
    pub sibling: Digest,
    /// True if the sibling is the *left* child.
    pub sibling_is_left: bool,
}

/// A Merkle membership proof for one leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Path from leaf level to just below the root.
    pub steps: Vec<ProofStep>,
}

impl MerkleTree {
    /// Build a tree over the given leaf payloads. An empty input produces
    /// the well-defined "empty root" (hash of the empty string, leaf-
    /// prefixed), so empty blocks still chain correctly.
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> MerkleTree {
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![leaf_hash(b"")]],
            };
        }
        let mut levels = Vec::new();
        let mut current: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
        levels.push(current.clone());
        while current.len() > 1 {
            let mut next = Vec::with_capacity(current.len().div_ceil(2));
            for pair in current.chunks(2) {
                let parent = if pair.len() == 2 {
                    node_hash(&pair[0], &pair[1])
                } else {
                    // Odd node is promoted by pairing with itself; this is
                    // deterministic and keeps proofs simple.
                    node_hash(&pair[0], &pair[0])
                };
                next.push(parent);
            }
            levels.push(next.clone());
            current = next;
        }
        MerkleTree { levels }
    }

    /// Build directly from precomputed leaf digests (no leaf prefixing) —
    /// used by the MSS where leaves are already hashes of public keys.
    pub fn from_leaf_digests(digests: Vec<Digest>) -> MerkleTree {
        if digests.is_empty() {
            return MerkleTree {
                levels: vec![vec![leaf_hash(b"")]],
            };
        }
        let mut levels = vec![digests];
        while levels.last().unwrap().len() > 1 {
            let current = levels.last().unwrap();
            let mut next = Vec::with_capacity(current.len().div_ceil(2));
            for pair in current.chunks(2) {
                let parent = if pair.len() == 2 {
                    node_hash(&pair[0], &pair[1])
                } else {
                    node_hash(&pair[0], &pair[0])
                };
                next.push(parent);
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Membership proof for leaf `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut steps = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_index = if i.is_multiple_of(2) { i + 1 } else { i - 1 };
            let sibling = if sibling_index < level.len() {
                level[sibling_index]
            } else {
                level[i] // odd promotion pairs with itself
            };
            steps.push(ProofStep {
                sibling,
                sibling_is_left: i % 2 == 1,
            });
            i /= 2;
        }
        MerkleProof {
            leaf_index: index,
            steps,
        }
    }

    /// Verify a proof that `leaf_payload` is a member of the tree with the
    /// given `root`.
    pub fn verify(root: &Digest, leaf_payload: &[u8], proof: &MerkleProof) -> bool {
        Self::verify_digest(root, leaf_hash(leaf_payload), proof)
    }

    /// Verify a proof starting from a precomputed leaf digest.
    pub fn verify_digest(root: &Digest, leaf_digest: Digest, proof: &MerkleProof) -> bool {
        let mut acc = leaf_digest;
        for step in &proof.steps {
            acc = if step.sibling_is_left {
                node_hash(&step.sibling, &acc)
            } else {
                node_hash(&acc, &step.sibling)
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_tree() {
        let t = MerkleTree::build(&[b"tx0"]);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.root(), leaf_hash(b"tx0"));
        let p = t.prove(0);
        assert!(MerkleTree::verify(&t.root(), b"tx0", &p));
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in 1..=17usize {
            let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("tx{i}").into_bytes()).collect();
            let t = MerkleTree::build(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let p = t.prove(i);
                assert!(MerkleTree::verify(&t.root(), leaf, &p), "n={n} i={i}");
                // Wrong leaf payload must fail.
                assert!(!MerkleTree::verify(&t.root(), b"bogus", &p));
            }
        }
    }

    #[test]
    fn tampered_proof_fails() {
        let leaves: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d"];
        let t = MerkleTree::build(&leaves);
        let mut p = t.prove(2);
        p.steps[0].sibling[0] ^= 0xff;
        assert!(!MerkleTree::verify(&t.root(), b"c", &p));
        let mut p2 = t.prove(2);
        p2.steps[1].sibling_is_left = !p2.steps[1].sibling_is_left;
        assert!(!MerkleTree::verify(&t.root(), b"c", &p2));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let t1 = MerkleTree::build(&[b"a", b"b", b"c"]);
        let t2 = MerkleTree::build(&[b"a", b"x", b"c"]);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A tree over one leaf "ab" must differ from an interior hash of
        // leaves "a","b" — prefixing makes splicing impossible.
        let t_leaf = MerkleTree::build(&[b"ab"]);
        let t_pair = MerkleTree::build(&[b"a", b"b"]);
        assert_ne!(t_leaf.root(), t_pair.root());
    }

    #[test]
    fn empty_tree_root_is_defined() {
        let t = MerkleTree::build::<&[u8]>(&[]);
        assert_eq!(t.root(), leaf_hash(b""));
    }
}
