//! HMAC-SHA256 (RFC 2104), used for keyed derivation inside the signature
//! scheme (deterministic per-message secret expansion) and for
//! domain-separated pseudo-random generation in tests and workloads.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Compute HMAC-SHA256(key, message).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    // Keys longer than the block size are hashed first (RFC 2104).
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kh = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        key_block[..32].copy_from_slice(&kh);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ IPAD).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ OPAD).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Deterministic pseudo-random byte stream keyed by `seed`, expanded in
/// counter mode: `block_i = HMAC(seed, domain || i)`. Used to derive
/// one-time signing keys from a master seed.
pub struct Prf<'a> {
    seed: &'a [u8],
    domain: &'a [u8],
}

impl<'a> Prf<'a> {
    /// A PRF instance bound to a seed and a domain-separation label.
    pub fn new(seed: &'a [u8], domain: &'a [u8]) -> Prf<'a> {
        Prf { seed, domain }
    }

    /// The `i`-th 32-byte block of the stream.
    pub fn block(&self, i: u64) -> Digest {
        let mut msg = Vec::with_capacity(self.domain.len() + 8);
        msg.extend_from_slice(self.domain);
        msg.extend_from_slice(&i.to_be_bytes());
        hmac_sha256(self.seed, &msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b_u8; 20];
        let msg = b"Hi There";
        assert_eq!(
            to_hex(&hmac_sha256(&key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            to_hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaa_u8; 20];
        let msg = [0xdd_u8; 50];
        assert_eq!(
            to_hex(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaa_u8; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            to_hex(&hmac_sha256(&key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn prf_blocks_are_distinct_and_deterministic() {
        let prf = Prf::new(b"seed", b"domain");
        let b0 = prf.block(0);
        let b1 = prf.block(1);
        assert_ne!(b0, b1);
        assert_eq!(b0, Prf::new(b"seed", b"domain").block(0));
        // Different domains give independent streams.
        assert_ne!(b0, Prf::new(b"seed", b"other").block(0));
    }
}
