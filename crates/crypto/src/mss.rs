//! Merkle signature scheme (MSS): a many-time signature built from W-OTS
//! one-time keys under a Merkle tree (the classic XMSS construction,
//! without the hypertree).
//!
//! A key pair of height `h` can sign `2^h` messages. Signing consumes leaf
//! indexes sequentially; the signature carries the leaf index, the W-OTS
//! signature, and the Merkle authentication path from that leaf to the
//! public root. Verifiers only need the 32-byte root.

use parking_lot_stub::AtomicCounter;

use crate::merkle::{MerkleProof, MerkleTree};
use crate::sha256::{sha256, Digest};
use crate::wots::{WotsPrivateKey, WotsSignature};

/// Minimal atomic counter so the crate stays dependency-free; `mss` only
/// needs fetch-add semantics for leaf allocation.
mod parking_lot_stub {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Monotonic counter used to allocate one-time leaf indexes.
    #[derive(Default)]
    pub struct AtomicCounter(AtomicU64);

    impl AtomicCounter {
        /// Counter starting at `v`.
        pub fn new(v: u64) -> Self {
            AtomicCounter(AtomicU64::new(v))
        }

        /// Atomically take the next value.
        pub fn fetch_inc(&self) -> u64 {
            self.0.fetch_add(1, Ordering::Relaxed)
        }

        /// Current value (next unused index).
        pub fn load(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
    }
}

/// Hash of a W-OTS public key — the Merkle leaf digest.
fn pk_leaf(pk_digest: &Digest) -> Digest {
    let mut data = Vec::with_capacity(40);
    data.extend_from_slice(b"mss-leaf");
    data.extend_from_slice(pk_digest);
    sha256(&data)
}

/// An MSS private key. Holds the master seed (from which all one-time keys
/// are re-derived on demand) and the precomputed Merkle tree over the
/// one-time public keys.
pub struct MssPrivateKey {
    master_seed: Vec<u8>,
    height: u32,
    tree: MerkleTree,
    next_leaf: AtomicCounter,
}

/// An MSS public key: the Merkle root plus the tree height.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct MssPublicKey {
    /// Merkle root over all one-time public keys.
    pub root: Digest,
    /// Tree height (`2^height` one-time keys).
    pub height: u32,
}

/// An MSS signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MssSignature {
    /// Which one-time key was used.
    pub leaf_index: u64,
    /// The W-OTS signature over the message digest.
    pub wots: WotsSignature,
    /// Authentication path from the one-time public key to the root.
    pub auth_path: MerkleProof,
}

impl MssPrivateKey {
    /// Generate a key pair of the given height from a master seed.
    /// Generation cost is `2^height` W-OTS public-key computations.
    pub fn generate(master_seed: &[u8], height: u32) -> MssPrivateKey {
        assert!(height <= 20, "MSS height above 2^20 leaves is impractical");
        let leaves: Vec<Digest> = (0..(1u64 << height))
            .map(|i| pk_leaf(&WotsPrivateKey::derive(master_seed, i).public_key().0))
            .collect();
        let tree = MerkleTree::from_leaf_digests(leaves);
        MssPrivateKey {
            master_seed: master_seed.to_vec(),
            height,
            tree,
            next_leaf: AtomicCounter::new(0),
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> MssPublicKey {
        MssPublicKey {
            root: self.tree.root(),
            height: self.height,
        }
    }

    /// Number of signatures still available.
    pub fn remaining(&self) -> u64 {
        (1u64 << self.height).saturating_sub(self.next_leaf.load())
    }

    /// Sign a 32-byte message digest, consuming the next one-time key.
    /// Returns `None` when the key pair is exhausted.
    pub fn sign(&self, digest: &Digest) -> Option<MssSignature> {
        let leaf = self.next_leaf.fetch_inc();
        if leaf >= (1u64 << self.height) {
            return None;
        }
        let sk = WotsPrivateKey::derive(&self.master_seed, leaf);
        let wots = sk.sign(digest);
        let auth_path = self.tree.prove(leaf as usize);
        Some(MssSignature {
            leaf_index: leaf,
            wots,
            auth_path,
        })
    }
}

impl MssSignature {
    /// Verify against an MSS public key.
    pub fn verify(&self, digest: &Digest, pk: &MssPublicKey) -> bool {
        if self.leaf_index >= (1u64 << pk.height) {
            return false;
        }
        if self.auth_path.leaf_index as u64 != self.leaf_index {
            return false;
        }
        // Recover the one-time public key from the signature, then check
        // its membership in the key tree.
        let wots_pk = self.wots.recover_public_key(digest);
        if self.wots.values.len() != crate::wots::CHAINS {
            return false;
        }
        MerkleTree::verify_digest(&pk.root, pk_leaf(&wots_pk.0), &self.auth_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_many_then_exhaust() {
        let sk = MssPrivateKey::generate(b"org1-admin", 2); // 4 signatures
        let pk = sk.public_key();
        assert_eq!(sk.remaining(), 4);
        for i in 0..4u64 {
            let digest = sha256(format!("message {i}").as_bytes());
            let sig = sk.sign(&digest).expect("key not yet exhausted");
            assert_eq!(sig.leaf_index, i);
            assert!(sig.verify(&digest, &pk));
        }
        assert_eq!(sk.remaining(), 0);
        assert!(sk.sign(&sha256(b"one more")).is_none());
    }

    #[test]
    fn cross_message_verification_fails() {
        let sk = MssPrivateKey::generate(b"seed", 1);
        let pk = sk.public_key();
        let d1 = sha256(b"m1");
        let sig = sk.sign(&d1).unwrap();
        assert!(!sig.verify(&sha256(b"m2"), &pk));
    }

    #[test]
    fn cross_key_verification_fails() {
        let sk1 = MssPrivateKey::generate(b"seed-1", 1);
        let sk2 = MssPrivateKey::generate(b"seed-2", 1);
        let d = sha256(b"m");
        let sig = sk1.sign(&d).unwrap();
        assert!(!sig.verify(&d, &sk2.public_key()));
    }

    #[test]
    fn replayed_leaf_with_wrong_path_fails() {
        let sk = MssPrivateKey::generate(b"seed", 2);
        let pk = sk.public_key();
        let d = sha256(b"m");
        let mut sig = sk.sign(&d).unwrap();
        // Claim a different leaf index than the auth path proves.
        sig.leaf_index = 3;
        assert!(!sig.verify(&d, &pk));
        // Out-of-range leaf index is rejected outright.
        let mut sig2 = sk.sign(&d).unwrap();
        sig2.leaf_index = 1 << 10;
        assert!(!sig2.verify(&d, &pk));
    }

    #[test]
    fn deterministic_public_key() {
        let a = MssPrivateKey::generate(b"same-seed", 2).public_key();
        let b = MssPrivateKey::generate(b"same-seed", 2).public_key();
        assert_eq!(a, b);
    }
}
