//! Stage 2 of the block processor: the serial validation gate followed
//! by a deterministic — and, with `NodeConfig::apply_workers > 1`,
//! parallel — write-set apply.
//!
//! The paper serializes the whole committing phase; PR 5's pipeline kept
//! that, which left stage 2 as the wall the pipeline cannot overlap
//! past. This module splits the stage along the only line determinism
//! allows:
//!
//! * **The gate** (`gate_one`, via `TxnCtx::validate_commit`) runs
//!   strictly serially, in block order: SSI commit check, primary-key
//!   check (storage plus the per-block overlay of not-yet-applied keys),
//!   old-version deletion with ww-loser dooming, batched row-id
//!   reservation, catalog-op application. Every one of these decisions
//!   feeds the next transaction's decisions, so none can move off the
//!   commit thread.
//! * **The apply** ([`ApplyPool`]) executes the deferred
//!   `commit_create`s and builds the write-set summaries. The gate fixed
//!   every row id and every outcome first, each step touches only its
//!   own version, and no step targets a version a same-block sibling
//!   defers (pending versions are invisible at sibling snapshots) — so
//!   the steps commute and any interleaving yields byte-identical state.
//!   Summaries are written into slots indexed by canonical
//!   (transaction, op) position and merged in that order for hashing,
//!   so chains and checkpoints are independent of worker count.
//!
//! The apply barrier completes inside `commit_core` — before the
//! committed height advances and before the next block's parked
//! executions are released — so readers at height N never observe a
//! half-applied block N.

mod apply;

pub use apply::ApplyPool;

use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use bcrdb_chain::block::Block;
use bcrdb_chain::ledger::{LedgerRecord, TxStatus};
use bcrdb_chain::tx::Transaction;
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::TxId;
use bcrdb_engine::exec::{apply_catalog_op, CatalogOp};
use bcrdb_engine::procedures::ContractRegistry;
use bcrdb_sql::validate::DeterminismRules;
use bcrdb_storage::catalog::Catalog;
use bcrdb_storage::stats::StatsDelta;
use bcrdb_txn::context::{ApplyPlan, BlockPkOverlay, WriteRecord};
use bcrdb_txn::ssi::Flow;

use crate::exec_pool::ExecTask;
use crate::node::Node;

/// Stage 2: the serial validation gate over every transaction in block
/// order, then the write-set apply (parallel when the node's
/// [`ApplyPool`] has workers). Everything order-dependent happens in the
/// gate; everything deferrable for stage 3 is returned. The caller
/// decides when to advance the committed height — the apply has already
/// completed by the time this returns.
pub(crate) fn commit_core(
    node: &Arc<Node>,
    block: &Arc<Block>,
) -> (Vec<LedgerRecord>, Vec<WriteRecord>) {
    // bcrdb-lint: allow(wall-clock, reason = "metrics timing only")
    let t0 = Instant::now();
    let flow = node.config.flow;
    let mut records = Vec::with_capacity(block.txs.len());
    let mut plans: Vec<ApplyPlan> = Vec::new();
    let mut overlay = BlockPkOverlay::new();
    for (i, tx) in block.txs.iter().enumerate() {
        let (record, plan) = gate_one(node, block, i as u32, tx, flow, &mut overlay);
        node.mark_processed(tx.id);
        records.push(record);
        plans.extend(plan);
    }
    // The gate computed each committed transaction's statistics delta;
    // detach them (the apply pool consumes the plans) in block order for
    // the fold below.
    let mut deltas: Vec<StatsDelta> = Vec::new();
    for plan in &mut plans {
        deltas.append(&mut plan.stats);
    }
    // bcrdb-lint: allow(wall-clock, reason = "metrics timing only")
    let ta = Instant::now();
    let writes = node.apply.run(plans);
    node.env
        .metrics
        .on_apply_stage(ta.elapsed().as_micros() as u64);
    // Fold and seal statistics after the apply barrier but before the
    // caller advances the committed height: a reader at snapshot N must
    // see the summary sealed at N, on every replica.
    fold_stats(node, block.number, deltas);
    // The commit-stage metric covers the whole stage (gate + apply) so
    // the number stays comparable across apply_workers settings.
    node.env
        .metrics
        .on_commit_stage(t0.elapsed().as_micros() as u64);
    (records, writes)
}

/// Stage 2 variant for `serial_execution` (§5.1 Ethereum-style baseline):
/// execute each transaction inline immediately before its commit point,
/// and apply each write set inline too — the baseline is by definition
/// free of any concurrency, whatever `apply_workers` says. Returns the
/// records, the write-set summary and the accumulated inline execution
/// time.
pub(crate) fn commit_core_serial_exec(
    node: &Arc<Node>,
    block: &Arc<Block>,
) -> (Vec<LedgerRecord>, Vec<WriteRecord>, u64) {
    // bcrdb-lint: allow(wall-clock, reason = "metrics timing only")
    let t0 = Instant::now();
    let flow = node.config.flow;
    let exec_height = block.number - 1;
    let mut records = Vec::with_capacity(block.txs.len());
    let mut writes: Vec<WriteRecord> = Vec::new();
    let mut overlay = BlockPkOverlay::new();
    let mut bet_us = 0u64;
    let mut deltas: Vec<StatsDelta> = Vec::new();
    for (i, tx) in block.txs.iter().enumerate() {
        let snap = effective_snapshot(tx, flow, exec_height);
        if !node.is_processed(&tx.id) && snap <= exec_height && node.env.slots.try_claim(tx.id) {
            // bcrdb-lint: allow(wall-clock, reason = "metrics timing only")
            let te = Instant::now();
            node.pool.run_inline(ExecTask {
                tx: Arc::new(tx.clone()),
                snapshot_height: snap,
                mode: bcrdb_storage::snapshot::ScanMode::Relaxed,
            });
            bet_us += te.elapsed().as_micros() as u64;
        }
        let (record, plan) = gate_one(node, block, i as u32, tx, flow, &mut overlay);
        node.mark_processed(tx.id);
        records.push(record);
        if let Some(mut p) = plan {
            deltas.append(&mut p.stats);
            writes.extend(p.execute_all());
        }
    }
    fold_stats(node, block.number, deltas);
    node.env
        .metrics
        .on_commit_stage(t0.elapsed().as_micros().saturating_sub(bet_us as u128) as u64);
    (records, writes, bet_us)
}

/// Fold the block's statistics deltas into the per-table statistics and
/// seal a summary at the block height, on the commit thread in block
/// order — the stats ride the same deterministic path as the writes, so
/// every replica plans queries from identical numbers. Tables whose
/// statistics were marked dirty by DDL in this block (CREATE INDEX adds
/// a tracked column with no counts yet) are rebuilt exactly from the
/// heap, which also seals them.
fn fold_stats(node: &Arc<Node>, block_number: u64, deltas: Vec<StatsDelta>) {
    let mut touched: Vec<String> = Vec::new();
    for delta in &deltas {
        // A table dropped later in the same block may be gone; its
        // statistics went with it.
        if let Ok(table) = node.env.catalog.get(&delta.table) {
            table.stats_apply(delta);
            if !touched.contains(&delta.table) {
                touched.push(delta.table.clone());
            }
        }
    }
    for name in node.env.catalog.table_names() {
        if let Ok(table) = node.env.catalog.get(&name) {
            if table.stats_dirty() {
                table.rebuild_stats(block_number);
                node.env.metrics.on_stats_rebuild();
                touched.retain(|t| *t != name);
            }
        }
    }
    for name in touched {
        if let Ok(table) = node.env.catalog.get(&name) {
            table.stats_seal(block_number);
        }
    }
}

/// The snapshot height a transaction executes at under `flow`.
pub(crate) fn effective_snapshot(tx: &Transaction, flow: Flow, exec_height: u64) -> u64 {
    match flow {
        Flow::OrderThenExecute => exec_height,
        Flow::ExecuteOrderParallel => tx.snapshot_height.unwrap_or(exec_height),
    }
}

/// Serially decide one transaction (§3.3.3): the commit order is the order
/// within the block, and every decision is a pure function of deterministic
/// state — identical on all honest nodes. Returns the ledger record plus,
/// when committed, the deferred apply plan whose execution the caller
/// schedules (inline or on the [`ApplyPool`]).
fn gate_one(
    node: &Arc<Node>,
    block: &Arc<Block>,
    index: u32,
    tx: &Transaction,
    flow: Flow,
    overlay: &mut BlockPkOverlay,
) -> (LedgerRecord, Option<ApplyPlan>) {
    // bcrdb-lint: allow(wall-clock, reason = "commit_time_ms is node-local by design; state_hash() and the determinism suite exclude it")
    let now_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0);
    let base = |txid: TxId, status: TxStatus| LedgerRecord {
        block: block.number,
        tx_index: index,
        global_id: tx.id,
        user: tx.user.clone(),
        contract: tx.payload.contract.clone(),
        txid,
        status,
        commit_time_ms: now_ms,
    };

    if node.is_processed(&tx.id) {
        // A pre-dispatched duplicate may have parked an execution result
        // before the original committed; discard it so the slot table
        // and the SSI record cannot leak (its writes never commit).
        if let Some(d) = node.env.slots.remove(&tx.id) {
            d.ctx.rollback();
        }
        return (
            base(
                TxId::INVALID,
                TxStatus::Aborted("duplicate transaction identifier".into()),
            ),
            None,
        );
    }
    let snap = effective_snapshot(tx, flow, block.number - 1);
    if snap > block.number - 1 {
        return (
            base(
                TxId::INVALID,
                TxStatus::Aborted(format!(
                    "snapshot height {snap} is beyond block {}",
                    block.number
                )),
            ),
            None,
        );
    }
    let Some(done) = node.env.slots.take_done(&tx.id) else {
        return (
            base(
                TxId::INVALID,
                TxStatus::Aborted("execution result missing".into()),
            ),
            None,
        );
    };
    let txid = done.ctx.id;

    // Deferred DDL must be applicable before we commit data writes.
    if let Err(e) = validate_catalog_ops(
        &node.env.catalog,
        &node.env.contracts,
        &done.catalog_ops,
        flow,
    ) {
        done.ctx.rollback();
        return (
            base(txid, TxStatus::Aborted(format!("ddl rejected: {e}"))),
            None,
        );
    }

    match done.ctx.validate_commit(block.number, index, flow, overlay) {
        Ok(plan) => {
            for op in &done.catalog_ops {
                if let Err(e) =
                    apply_catalog_op(&node.env.catalog, &node.env.contracts, &node.env.certs, op)
                {
                    // Validated above; failure here is a bug, not a user
                    // error — surface loudly but deterministically.
                    eprintln!(
                        "[{}] internal: catalog op failed after validation: {e}",
                        node.config.name
                    );
                }
            }
            (base(txid, TxStatus::Committed), Some(plan))
        }
        Err(reason) => (base(txid, TxStatus::Aborted(reason.to_string())), None),
    }
}

fn validate_catalog_ops(
    catalog: &Catalog,
    contracts: &ContractRegistry,
    ops: &[CatalogOp],
    flow: Flow,
) -> Result<()> {
    let rules = match flow {
        Flow::OrderThenExecute => DeterminismRules::order_then_execute(),
        Flow::ExecuteOrderParallel => DeterminismRules::execute_order_parallel(),
    };
    for op in ops {
        match op {
            CatalogOp::CreateTable(schema) => {
                if catalog.contains(&schema.name) {
                    return Err(Error::AlreadyExists(format!("table {}", schema.name)));
                }
            }
            CatalogOp::CreateIndex {
                table,
                index,
                column,
            } => {
                let t = catalog.get(table)?;
                let schema = t.schema();
                if schema.column_index(column).is_none() {
                    return Err(Error::NotFound(format!("column {column} of {table}")));
                }
                if schema.indexes.iter().any(|i| i.name == *index) {
                    return Err(Error::AlreadyExists(format!("index {index}")));
                }
            }
            CatalogOp::DropTable { name, if_exists } => {
                if !catalog.contains(name) && !*if_exists {
                    return Err(Error::NotFound(format!("table {name}")));
                }
            }
            CatalogOp::CreateFunction(def) => {
                ContractRegistry::validate(def, &rules)?;
                if contracts.get(&def.name).is_some() && !def.or_replace {
                    return Err(Error::AlreadyExists(format!("contract {}", def.name)));
                }
            }
            CatalogOp::DropFunction { name } => {
                if contracts.get(name).is_none() {
                    return Err(Error::NotFound(format!("contract {name}")));
                }
            }
            // Certificate operations are idempotent registrations.
            CatalogOp::RegisterCert(_) | CatalogOp::RevokeCert { .. } => {}
        }
    }
    Ok(())
}
