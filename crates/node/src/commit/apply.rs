//! The deterministic parallel write-set apply pool.
//!
//! After the serial gate has fixed every commit decision and every row
//! id, the remaining [`ApplyStep`]s of a block commute (see
//! `bcrdb_txn::context::ApplyStep`). The pool shards them by
//! `(table, row_id >> SEGMENT_SHIFT)` — the granularity heap appends and
//! index inserts contend on — executes the shards on a fixed set of
//! worker threads, and merges the produced write-set summaries back into
//! canonical (transaction, op) order. The merge order, the row ids and
//! the version contents are all fixed before any worker runs, so the
//! output — and therefore the write-set hash, the checkpoint and the
//! ledger — is byte-identical for any worker count and any
//! interleaving.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

use bcrdb_txn::context::{ApplyPlan, ApplyStep, WriteRecord};

/// One flattened step: canonical output slot, commit block height, step.
type Slotted = (usize, u64, ApplyStep);

/// Shared state for one `run` call. Workers fill `out` slots and
/// decrement `remaining`; the committing thread waits on `done_cv`.
struct RunState {
    /// Summaries by canonical slot; every slot is filled exactly once.
    out: Mutex<Vec<Option<WriteRecord>>>,
    /// Shards still in flight.
    remaining: Mutex<usize>,
    /// Signalled when `remaining` reaches zero.
    done_cv: Condvar,
}

/// One worker's share of a block: steps in canonical order, plus the
/// run's shared state.
struct Shard {
    steps: Vec<Slotted>,
    state: Arc<RunState>,
}

/// A fixed pool of apply workers owned by the node. With one worker the
/// pool spawns no threads and `run` degenerates to the serial in-order
/// apply loop — `NodeConfig::apply_workers = 1` restores the pre-pool
/// behaviour exactly.
pub struct ApplyPool {
    workers: usize,
    tx: Option<Sender<Shard>>,
    handles: Vec<JoinHandle<()>>,
}

impl ApplyPool {
    /// Spawn `workers` apply threads (none when `workers <= 1`).
    pub fn start(workers: usize) -> Self {
        let workers = workers.max(1);
        if workers == 1 {
            return ApplyPool {
                workers,
                tx: None,
                handles: Vec::new(),
            };
        }
        let (tx, rx) = unbounded::<Shard>();
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("apply-worker-{i}"))
                    .spawn(move || {
                        for shard in rx.iter() {
                            run_shard(shard);
                        }
                    })
                    .expect("failed to spawn apply worker")
            })
            .collect();
        ApplyPool {
            workers,
            tx: Some(tx),
            handles,
        }
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute every step of `plans` and return the write-set summaries
    /// in canonical (transaction, op) order. Blocks until the whole
    /// block is applied — the caller advances the committed height only
    /// after this returns, so readers never observe a partial block.
    pub fn run(&self, plans: Vec<ApplyPlan>) -> Vec<WriteRecord> {
        let total: usize = plans.iter().map(|p| p.steps.len()).sum();
        let mut flat: Vec<Slotted> = Vec::with_capacity(total);
        for plan in plans {
            let block = plan.block;
            for step in plan.steps {
                flat.push((flat.len(), block, step));
            }
        }

        if self.workers == 1 || total < 2 {
            return flat.iter().map(|(_, block, s)| s.execute(*block)).collect();
        }

        // Shard by (table, heap segment): steps for the same segment
        // land on the same worker, so segment tail appends never
        // contend. Bucket order preserves canonical order within each
        // shard; the slot index recovers it across shards.
        let mut buckets: Vec<Vec<Slotted>> = (0..self.workers).map(|_| Vec::new()).collect();
        for entry in flat {
            let b = partition(entry.2.table(), entry.2.row_id().0, self.workers);
            buckets[b].push(entry);
        }
        let nonempty = buckets.iter().filter(|b| !b.is_empty()).count();
        if nonempty <= 1 {
            return buckets
                .into_iter()
                .flatten()
                .map(|(_, block, s)| s.execute(block))
                .collect();
        }

        let state = Arc::new(RunState {
            out: Mutex::new((0..total).map(|_| None).collect()),
            remaining: Mutex::new(nonempty),
            done_cv: Condvar::new(),
        });
        let tx = self
            .tx
            .as_ref()
            .expect("apply pool with workers has a sender");
        for steps in buckets {
            if steps.is_empty() {
                continue;
            }
            if tx
                .send(Shard {
                    steps,
                    state: Arc::clone(&state),
                })
                .is_err()
            {
                unreachable!("apply worker channel outlives the pool");
            }
        }
        {
            let mut remaining = state.remaining.lock();
            while *remaining != 0 {
                state.done_cv.wait(&mut remaining);
            }
        }
        let mut out = state.out.lock();
        out.drain(..)
            .map(|r| r.expect("every apply slot is filled exactly once"))
            .collect()
    }
}

impl Drop for ApplyPool {
    fn drop(&mut self) {
        // Dropping the sender closes the channel; workers drain and exit.
        drop(self.tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Execute one shard and publish its results. The two run-state locks
/// are taken strictly one after the other (never nested) so the pool
/// adds no edges to the workspace lock-order graph.
fn run_shard(shard: Shard) {
    let mut produced = Vec::with_capacity(shard.steps.len());
    for (slot, block, step) in &shard.steps {
        produced.push((*slot, step.execute(*block)));
    }
    {
        let mut out = shard.state.out.lock();
        for (slot, rec) in produced {
            debug_assert!(out[slot].is_none(), "apply slot {slot} filled twice");
            out[slot] = Some(rec);
        }
    }
    {
        let mut remaining = shard.state.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            shard.state.done_cv.notify_all();
        }
    }
}

/// Deterministic shard choice: FNV-1a over the table name, XORed with
/// the heap segment index. Hand-rolled (not `RandomState`) so the
/// assignment is identical across processes and runs.
fn partition(table: &str, row_id: u64, workers: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in table.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    ((h ^ (row_id >> bcrdb_storage::table::SEGMENT_SHIFT)) % workers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::ids::RowId;
    use bcrdb_common::value::Value;

    fn ready(table: &str, row: u64, v: i64) -> ApplyStep {
        ApplyStep::Ready(WriteRecord {
            table: table.into(),
            kind: 2,
            row_id: RowId(row),
            data: vec![Value::Int(v)],
        })
    }

    fn plans() -> Vec<ApplyPlan> {
        // Three transactions over two tables, enough rows to span
        // several heap segments (SEGMENT_SHIFT = 10 → ids 0..4096 hit
        // four segments per table).
        (0..3)
            .map(|t| ApplyPlan {
                block: 7,
                steps: (0..40)
                    .map(|i| {
                        let table = if i % 2 == 0 { "accounts" } else { "orders" };
                        ready(table, t * 1500 + i * 97, (t * 1000 + i) as i64)
                    })
                    .collect(),
                stats: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let serial = ApplyPool::start(1).run(plans());
        let parallel = ApplyPool::start(4).run(plans());
        assert_eq!(serial.len(), 120);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_step_blocks() {
        let pool = ApplyPool::start(4);
        assert!(pool.run(Vec::new()).is_empty());
        let one = pool.run(vec![ApplyPlan {
            block: 1,
            steps: vec![ready("t", 5, 42)],
            stats: Vec::new(),
        }]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].row_id, RowId(5));
    }

    #[test]
    fn pool_is_reusable_across_blocks() {
        let pool = ApplyPool::start(3);
        for block in 0..8 {
            let out = pool.run(vec![ApplyPlan {
                block,
                steps: (0..25).map(|i| ready("t", i * 1021, i as i64)).collect(),
                stats: Vec::new(),
            }]);
            let expect: Vec<i64> = (0..25).map(|i| i as i64).collect();
            let got: Vec<i64> = out
                .iter()
                .map(|r| match &r.data[0] {
                    Value::Int(v) => *v,
                    other => panic!("unexpected value {other:?}"),
                })
                .collect();
            assert_eq!(got, expect, "block {block} out of canonical order");
        }
    }

    #[test]
    fn partition_is_stable_and_segment_aligned() {
        let w = 4;
        let a = partition("accounts", 17, w);
        assert_eq!(a, partition("accounts", 17, w));
        // Same segment → same shard, regardless of the in-segment slot.
        assert_eq!(a, partition("accounts", 1023, w));
        for r in 0..10_000 {
            assert!(partition("orders", r, w) < w);
        }
    }
}
