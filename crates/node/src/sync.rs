//! The client side of peer catch-up (§3.6).
//!
//! A node falls behind the network head in three ways: it crashed and
//! restarted (local replay covers only what its own store holds), it was
//! partitioned away while blocks kept flowing, or it joined late with an
//! empty store. In all three cases [`catch_up`] drives the node back to
//! the head by round-tripping [`SyncRequest`]s through the node's
//! `sync_fetch` hook (installed by the network layer, which owns peer
//! selection and failover):
//!
//! * **Block sync** — fetched blocks are verified against the local hash
//!   chain and the orderer certificates exactly like live deliveries,
//!   appended to the store, and replayed through the normal
//!   [`processor::process_block`] path, so ledger records and checkpoint
//!   votes come out byte-identical to live processing.
//! * **Snapshot fast-sync** — when the server decides the requester is
//!   too far behind (its `snapshot_lag_threshold`) and the requester is
//!   quiescent (`allow_snapshot`), a state snapshot replaces replay.
//!   The skipped blocks are still fetched and appended (verification
//!   included) so the local chain stays complete and auditable — what
//!   fast-sync saves is *re-execution*, the dominant replay cost.
//!
//! The driver loops until a fetch round reports the node at the serving
//! peer's tip. New blocks arriving live during catch-up simply queue in
//! the block processor's channel and are deduplicated afterwards.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_chain::block::Block;
use bcrdb_chain::sync::{SyncRequest, SyncResponse};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::BlockHeight;

use crate::node::Node;
use crate::processor;

/// Outcome of one [`catch_up`] run.
#[derive(Clone, Debug, Default)]
pub struct SyncStats {
    /// Request round trips performed.
    pub rounds: u64,
    /// Blocks fetched from peers.
    pub fetched: u64,
    /// Fetched blocks replayed through normal block processing.
    pub replayed: u64,
    /// Fetched blocks appended to the store without re-execution
    /// (already covered by an installed fast-sync snapshot).
    pub appended_only: u64,
    /// Height of the fast-sync snapshot installed, if any.
    pub fast_sync_height: Option<BlockHeight>,
    /// Wall-clock duration of the whole catch-up.
    pub duration: Duration,
}

/// Upper bound on catch-up rounds, a runaway guard: each productive round
/// advances the chain, so hitting this means a peer keeps answering
/// without ever helping.
const MAX_ROUNDS: u64 = 1_000_000;

/// Drive this node to the network head through its `sync_fetch` hook.
/// Returns immediately (zeroed stats) when no hook is installed.
pub fn catch_up(node: &Arc<Node>, allow_snapshot: bool) -> Result<SyncStats> {
    let fetch = node.hooks.read().sync_fetch.clone();
    let Some(fetch) = fetch else {
        return Ok(SyncStats::default());
    };
    let t0 = Instant::now();
    let mut stats = SyncStats::default();
    loop {
        if stats.rounds >= MAX_ROUNDS {
            return Err(Error::internal("catch-up made no progress"));
        }
        let from = node.blockstore.height();
        let req = SyncRequest {
            from_height: from,
            max_blocks: node.config.sync_batch.max(1),
            // Once a snapshot is installed, further rounds only backfill
            // the store; a second snapshot could not be ahead of it.
            allow_snapshot: allow_snapshot && stats.fast_sync_height.is_none(),
        };
        let resp = fetch(req)?;
        stats.rounds += 1;
        match resp {
            SyncResponse::Snapshot { height, state, tip } => {
                if !req.allow_snapshot || height <= node.height() {
                    return Err(Error::internal(format!(
                        "peer sent unusable snapshot at height {height} (ours {}, \
                         allow_snapshot={})",
                        node.height(),
                        req.allow_snapshot
                    )));
                }
                node.install_fast_sync(&state)?;
                stats.fast_sync_height = Some(height);
                let _ = tip; // the block rounds below converge on it
            }
            SyncResponse::Blocks { blocks, tip } => {
                if blocks.is_empty() {
                    if node.blockstore.height() >= tip {
                        break; // converged with the serving peer
                    }
                    return Err(Error::internal(format!(
                        "peer at tip {tip} returned no blocks after height {from}"
                    )));
                }
                for b in blocks {
                    apply_synced_block(node, Arc::new(b), &mut stats)?;
                }
            }
        }
    }
    stats.duration = t0.elapsed();
    Ok(stats)
}

/// Verify, append and (when beyond the committed state) replay one
/// fetched block. Verification is identical to live delivery: hash-chain
/// linkage to our tip plus an orderer signature, per the node's
/// `verify_signatures` setting.
fn apply_synced_block(node: &Arc<Node>, block: Arc<Block>, stats: &mut SyncStats) -> Result<()> {
    let current = node.blockstore.height();
    if block.number <= current {
        return Ok(()); // duplicate (a live delivery raced the fetch)
    }
    if block.number != current + 1 {
        return Err(Error::internal(format!(
            "sync returned non-consecutive block {} (have {current})",
            block.number
        )));
    }
    if node.config.verify_signatures {
        block.verify(&node.blockstore.tip_hash(), &node.env.certs)?;
    } else {
        block.verify_integrity()?;
    }
    stats.fetched += 1;
    if block.number <= node.height() {
        // State already ahead of the store (fast-sync): backfill only.
        node.blockstore.append((*block).clone())?;
        stats.appended_only += 1;
        // Count per block, not in bulk at the end of the run: an observer
        // that saw the chain advance (await_height) must also see the
        // sync counters advanced, without racing the final convergence
        // round trip.
        node.env.metrics.on_sync_blocks(1, 0);
    } else {
        node.blockstore.append((*block).clone())?;
        processor::process_block(node, &block)?;
        stats.replayed += 1;
        node.env.metrics.on_sync_blocks(1, 1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NodeConfig, NodeHooks};
    use bcrdb_chain::tx::{Payload, Transaction};
    use bcrdb_common::value::Value;
    use bcrdb_crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role, Scheme};
    use bcrdb_sql::ast::Statement;
    use bcrdb_txn::ssi::Flow;

    struct Rig {
        certs: Arc<CertificateRegistry>,
        client: KeyPair,
        orderer: KeyPair,
    }

    impl Rig {
        fn new() -> Rig {
            let client = KeyPair::generate("org1/alice", b"alice", Scheme::Sim);
            let orderer = KeyPair::generate("ordering/orderer0", b"ord", Scheme::Sim);
            let certs = CertificateRegistry::new();
            certs.register(Certificate {
                name: "org1/alice".into(),
                org: "org1".into(),
                role: Role::Client,
                public_key: client.public_key(),
            });
            certs.register(Certificate {
                name: "ordering/orderer0".into(),
                org: "ordering".into(),
                role: Role::Orderer,
                public_key: orderer.public_key(),
            });
            Rig {
                certs,
                client,
                orderer,
            }
        }

        fn node(&self, name: &str, snapshot_interval: u64, lag_threshold: u64) -> Arc<Node> {
            let mut cfg = NodeConfig::new(name, "org1", Flow::OrderThenExecute);
            cfg.snapshot_interval = snapshot_interval;
            cfg.snapshot_lag_threshold = lag_threshold;
            let node = Node::new(cfg, Arc::clone(&self.certs), vec!["org1".into()]).unwrap();
            node.catalog()
                .create_table(
                    bcrdb_common::schema::TableSchema::new(
                        "kv",
                        vec![
                            bcrdb_common::schema::Column::new(
                                "k",
                                bcrdb_common::schema::DataType::Int,
                            ),
                            bcrdb_common::schema::Column::new(
                                "v",
                                bcrdb_common::schema::DataType::Int,
                            ),
                        ],
                        vec![0],
                    )
                    .unwrap(),
                )
                .unwrap();
            if let Statement::CreateFunction(def) = bcrdb_sql::parse_statement(
                "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
            )
            .unwrap()
            {
                node.contracts().install(def).unwrap();
            }
            node
        }

        fn feed(&self, node: &Arc<Node>, count: u64, per_block: u64) {
            let mut prev = node.blockstore.tip_hash();
            let start = node.height();
            let mut n = start * per_block;
            for b in start + 1..=start + count {
                let txs: Vec<Transaction> = (0..per_block)
                    .map(|_| {
                        n += 1;
                        Transaction::new_order_execute(
                            "org1/alice",
                            Payload::new(
                                "put",
                                vec![Value::Int(n as i64), Value::Int((n * 10) as i64)],
                            ),
                            n,
                            &self.client,
                        )
                        .unwrap()
                    })
                    .collect();
                let mut block = Block::build(b, prev, txs, "solo", vec![]);
                block.sign(&self.orderer).unwrap();
                prev = block.hash;
                let block = Arc::new(block);
                node.blockstore.append((*block).clone()).unwrap();
                processor::process_block(node, &block).unwrap();
            }
        }

        /// Wire `lagging` to fetch directly from `server` (no network).
        fn connect(&self, lagging: &Arc<Node>, server: &Arc<Node>) {
            let server = Arc::clone(server);
            lagging.set_hooks(NodeHooks {
                sync_fetch: Some(Arc::new(move |req| Ok(server.serve_sync(&req)))),
                ..Default::default()
            });
        }
    }

    #[test]
    fn block_sync_catches_up_and_matches() {
        let rig = Rig::new();
        let server = rig.node("org1/peer-a", 0, 0);
        rig.feed(&server, 6, 3);
        let lagging = rig.node("org1/peer-b", 0, 0);
        rig.connect(&lagging, &server);

        let stats = lagging.catch_up(true).unwrap();
        assert_eq!(stats.replayed, 6);
        assert_eq!(stats.fetched, 6);
        assert!(stats.fast_sync_height.is_none());
        assert_eq!(lagging.height(), 6);
        assert_eq!(lagging.state_hash(), server.state_hash());
        // Checkpoint hashes byte-identical to the live node's.
        for b in 1..=6 {
            assert_eq!(
                lagging.checkpoints.local_hash(b),
                server.checkpoints.local_hash(b),
                "checkpoint mismatch at block {b}"
            );
            assert!(lagging.checkpoints.local_hash(b).is_some());
        }
        assert_eq!(lagging.metrics().sync_fetched(), 6);
    }

    #[test]
    fn snapshot_fast_sync_skips_replay_but_backfills_store() {
        let rig = Rig::new();
        // Server snapshots every 4 blocks and offers fast-sync at lag ≥ 4.
        let server = rig.node("org1/peer-a", 4, 4);
        rig.feed(&server, 10, 2);
        let lagging = rig.node("org1/peer-b", 0, 0);
        rig.connect(&lagging, &server);

        let stats = lagging.catch_up(true).unwrap();
        // Snapshot at height 8 (last multiple of 4), blocks 1..=8 appended
        // without replay, 9..=10 replayed.
        assert_eq!(stats.fast_sync_height, Some(8));
        assert_eq!(stats.appended_only, 8);
        assert_eq!(stats.replayed, 2);
        assert_eq!(lagging.height(), 10);
        assert_eq!(lagging.blockstore.height(), 10);
        assert_eq!(lagging.state_hash(), server.state_hash());
        assert_eq!(
            lagging.checkpoints.local_hash(10),
            server.checkpoints.local_hash(10)
        );
        assert_eq!(lagging.metrics().sync_fast_syncs(), 1);
        // The backfilled chain is fully linked: verify a tail block.
        let b10 = lagging.blockstore.get(10).unwrap();
        b10.verify(&lagging.blockstore.get(9).unwrap().hash, &rig.certs)
            .unwrap();
    }

    #[test]
    fn live_nodes_refuse_snapshots() {
        let rig = Rig::new();
        let server = rig.node("org1/peer-a", 2, 2);
        rig.feed(&server, 6, 1);
        let lagging = rig.node("org1/peer-b", 0, 0);
        rig.connect(&lagging, &server);

        // A gap-triggered catch-up (allow_snapshot = false) must take the
        // block path even though the server's threshold is exceeded.
        let stats = lagging.catch_up(false).unwrap();
        assert!(stats.fast_sync_height.is_none());
        assert_eq!(stats.replayed, 6);
        assert_eq!(lagging.state_hash(), server.state_hash());
    }

    #[test]
    fn no_hook_is_a_noop() {
        let rig = Rig::new();
        let node = rig.node("org1/peer", 0, 0);
        let stats = node.catch_up(true).unwrap();
        assert_eq!(stats.rounds, 0);
        assert_eq!(node.height(), 0);
    }
}
