//! Micro-metrics matching Tables 4 and 5 of the paper.
//!
//! * `brr` — blocks received per second at the middleware;
//! * `bpr` — blocks processed and committed per second;
//! * `bpt` — average time to process and commit a block (ms);
//! * `bet` — average time to start/execute all transactions of a block
//!   until they are ready to commit (ms);
//! * `bct` — serial commit time, `bpt − bet` (ms);
//! * `tet` — average transaction execution time (ms);
//! * `mt`  — missing transactions per second at block processing (EO flow);
//! * `su`  — system utilization, `bpr × bpt` (fraction of time the block
//!   processor is busy).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Bound on the per-block commit-stage latency reservoir kept for
/// percentile reporting ([`NodeMetrics::commit_stage_samples`]).
const STAGE_SAMPLE_CAP: usize = 4096;

/// Atomic counters accumulated since the last [`NodeMetrics::take`].
pub struct NodeMetrics {
    window_start: Mutex<Instant>,
    blocks_received: AtomicU64,
    blocks_processed: AtomicU64,
    bpt_us: AtomicU64,
    bet_us: AtomicU64,
    tet_us: AtomicU64,
    txs_executed: AtomicU64,
    txs_committed: AtomicU64,
    txs_aborted: AtomicU64,
    missing_txs: AtomicU64,
    // Pipeline stage accounting. The serial-commit (stage 2) and
    // post-commit (stage 3) counters are windowed like bpt/bet; the
    // depth gauges reflect the moment of the snapshot.
    commit_stage_us: AtomicU64,
    commit_stage_blocks: AtomicU64,
    // The apply slice of stage 2 (after the serial validation gate);
    // windowed like commit_stage. The worker gauge is set once at node
    // construction.
    apply_stage_us: AtomicU64,
    apply_stage_blocks: AtomicU64,
    apply_workers: AtomicU64,
    post_stage_us: AtomicU64,
    post_stage_blocks: AtomicU64,
    pipeline_depth: AtomicU64,
    postcommit_depth: AtomicU64,
    /// Per-block serial-commit durations (µs), bounded ring — the
    /// percentile source for the bench harness.
    commit_stage_ring: Mutex<VecDeque<u64>>,
    // Health: set when the block processor stops on a rejected block
    // (byzantine orderer or local corruption, §3.5(4)). Never reset.
    halted: AtomicBool,
    halt_reason: Mutex<Option<String>>,
    // Maintenance (vacuum tick). Cumulative since node start.
    vacuum_runs: AtomicU64,
    versions_reclaimed: AtomicU64,
    // Planner-statistics rebuilds (commit-time DDL, maintenance, restore).
    // Cumulative since node start.
    stats_rebuilds: AtomicU64,
    // Catch-up / gap bookkeeping (§3.6). Cumulative since node start —
    // these describe rare recovery events, not windowed rates, so
    // [`NodeMetrics::take`] reports them without resetting.
    held_back: AtomicU64,
    gap_events: AtomicU64,
    pending_evicted: AtomicU64,
    sync_fetched: AtomicU64,
    sync_replayed: AtomicU64,
    sync_fast_syncs: AtomicU64,
}

impl Default for NodeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Ordering-service counters as seen from a node — populated into
/// [`MetricsSnapshot`] by the node's `ordering_stats` hook
/// (`NodeHooks::ordering_stats`), so clients can observe the ordering
/// layer (current view, view changes) through the ordinary Metrics RPC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrderingSnapshot {
    /// Transactions forwarded into the ordering service.
    pub forwarded: u64,
    /// Blocks cut/proposed by a leader or sequencer.
    pub cut: u64,
    /// Blocks delivered.
    pub delivered: u64,
    /// Current BFT view (0 for solo/Kafka backends).
    pub current_view: u64,
    /// View changes installed since the service started.
    pub view_changes: u64,
}

/// Averaged view over one measurement window.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Window length in seconds.
    pub window_secs: f64,
    /// Block receive rate (blocks/s).
    pub brr: f64,
    /// Block process rate (blocks/s).
    pub bpr: f64,
    /// Mean block processing time (ms).
    pub bpt_ms: f64,
    /// Mean block execution time (ms).
    pub bet_ms: f64,
    /// Mean block commit time (ms), `bpt − bet`.
    pub bct_ms: f64,
    /// Mean transaction execution time (ms).
    pub tet_ms: f64,
    /// Missing transactions per second (EO flow).
    pub mt_per_s: f64,
    /// System utilization (`bpr × bpt`, clamped to [0, 1]).
    pub su: f64,
    /// Committed transactions in the window.
    pub committed: u64,
    /// Aborted transactions in the window.
    pub aborted: u64,
    /// Mean serial-commit (pipeline stage 2) time per block (ms). Covers
    /// the whole stage: the serial validation gate plus the (possibly
    /// parallel) write-set apply, so the number is comparable across
    /// `apply_workers` settings.
    pub commit_stage_ms: f64,
    /// Mean write-set apply time per block (ms): the slice of stage 2
    /// after the serial validation gate — the part `apply_workers`
    /// parallelizes.
    pub apply_stage_ms: f64,
    /// Apply-worker count the node was configured with (gauge; `1` means
    /// the fully serial apply path).
    pub apply_workers: u64,
    /// Mean post-commit (pipeline stage 3: ledger, hashing, checkpoint
    /// vote, notifications) time per block (ms).
    pub post_stage_ms: f64,
    /// Blocks admitted to the pipeline but not yet serially committed
    /// (gauge at snapshot time; 0 when the pipeline is disabled).
    pub pipeline_depth: u64,
    /// Blocks serially committed but with post-commit work still queued
    /// (gauge at snapshot time; 0 when the pipeline is disabled).
    pub postcommit_depth: u64,
    /// True when the block processor halted on a rejected block and the
    /// node stopped committing (§3.5(4)); sticky until restart.
    pub halted: bool,
    /// Committed block height at snapshot time (gauge; populated by the
    /// node's Metrics RPC, zero when taken directly from `NodeMetrics`).
    pub committed_height: u64,
    /// Post-commit watermark at snapshot time: the highest block whose
    /// ledger records, checkpoint hash and notifications are fully
    /// applied. Trails `committed_height` by at most
    /// `NodeConfig::postcommit_cap` while the pipeline is busy — a
    /// remote client that needs height-gated *ledger* reads can gate on
    /// this instead of `ChainHeight` (gauge; populated like
    /// `committed_height`).
    pub postcommit_height: u64,
    /// Maintenance vacuum runs since node start (cumulative).
    pub vacuum_runs: u64,
    /// Row versions reclaimed by maintenance vacuums (cumulative).
    pub versions_reclaimed: u64,
    /// Out-of-order blocks currently held back by the block processor
    /// (gauge at snapshot time).
    pub held_back: u64,
    /// Delivery gaps detected by the block processor (cumulative).
    pub gap_events: u64,
    /// Held-back blocks evicted because the pending buffer was full
    /// (cumulative).
    pub pending_evicted: u64,
    /// Blocks fetched from peers by catch-up (cumulative).
    pub sync_fetched: u64,
    /// Fetched blocks replayed through normal processing (cumulative).
    pub sync_replayed: u64,
    /// Snapshot fast-syncs installed (cumulative).
    pub sync_fast_syncs: u64,
    /// Pages read from page files by the paged store (cumulative;
    /// populated by the node's Metrics RPC, zero without a `page_dir`).
    pub pages_read: u64,
    /// Pages written to page files — spills, write-back, free-list
    /// overwrites (cumulative; populated like `pages_read`).
    pub pages_written: u64,
    /// Buffer-pool frames evicted by the clock sweep (cumulative;
    /// populated like `pages_read`).
    pub pages_evicted: u64,
    /// Buffer-pool hit rate since node start (`1.0` when the pool has
    /// never been consulted; populated like `pages_read`).
    pub pool_hit_rate: f64,
    /// Multi-index (intersection/union) scan plans chosen by the
    /// cost-based planner (cumulative; populated by the node's Metrics
    /// RPC from the catalog's counters, zero when taken directly from
    /// `NodeMetrics`).
    pub plans_index_intersection: u64,
    /// Covering-index scan plans chosen — index-only scans that skipped
    /// the heap fault (cumulative; populated like
    /// `plans_index_intersection`).
    pub plans_covering: u64,
    /// Planner-statistics rebuilds from the heap: commit-time after
    /// CREATE INDEX, the maintenance tick, and snapshot/fast-sync
    /// restores (cumulative).
    pub stats_rebuilds: u64,
    /// Ordering-service counters (cumulative; all zero when no
    /// `ordering_stats` hook is installed).
    pub ordering: OrderingSnapshot,
}

/// Wire slots of [`MetricsSnapshot`]: one entry per 8-byte field the
/// Metrics RPC response is charged for, with the embedded
/// [`OrderingSnapshot`] counters listed as `ordering.<field>`. The
/// lint's wire-slots rule checks this table against the struct
/// definitions, so adding a field without a slot entry (or vice versa)
/// fails the build instead of silently under-charging the RPC.
// bcrdb-lint: slots(MetricsSnapshot)
pub const METRICS_WIRE_SLOTS: &[&str] = &[
    "window_secs",
    "brr",
    "bpr",
    "bpt_ms",
    "bet_ms",
    "bct_ms",
    "tet_ms",
    "mt_per_s",
    "su",
    "committed",
    "aborted",
    "commit_stage_ms",
    "apply_stage_ms",
    "apply_workers",
    "post_stage_ms",
    "pipeline_depth",
    "postcommit_depth",
    "halted",
    "committed_height",
    "postcommit_height",
    "vacuum_runs",
    "versions_reclaimed",
    "held_back",
    "gap_events",
    "pending_evicted",
    "sync_fetched",
    "sync_replayed",
    "sync_fast_syncs",
    "pages_read",
    "pages_written",
    "pages_evicted",
    "pool_hit_rate",
    "plans_index_intersection",
    "plans_covering",
    "stats_rebuilds",
    "ordering.forwarded",
    "ordering.cut",
    "ordering.delivered",
    "ordering.current_view",
    "ordering.view_changes",
];

impl MetricsSnapshot {
    /// Charged wire size of one snapshot: 8 bytes per slot.
    pub const WIRE_SIZE: usize = METRICS_WIRE_SLOTS.len() * 8;
}

impl NodeMetrics {
    /// Fresh metrics with the window starting now.
    pub fn new() -> NodeMetrics {
        NodeMetrics {
            window_start: Mutex::new(Instant::now()),
            blocks_received: AtomicU64::new(0),
            blocks_processed: AtomicU64::new(0),
            bpt_us: AtomicU64::new(0),
            bet_us: AtomicU64::new(0),
            tet_us: AtomicU64::new(0),
            txs_executed: AtomicU64::new(0),
            txs_committed: AtomicU64::new(0),
            txs_aborted: AtomicU64::new(0),
            missing_txs: AtomicU64::new(0),
            commit_stage_us: AtomicU64::new(0),
            commit_stage_blocks: AtomicU64::new(0),
            apply_stage_us: AtomicU64::new(0),
            apply_stage_blocks: AtomicU64::new(0),
            apply_workers: AtomicU64::new(1),
            post_stage_us: AtomicU64::new(0),
            post_stage_blocks: AtomicU64::new(0),
            pipeline_depth: AtomicU64::new(0),
            postcommit_depth: AtomicU64::new(0),
            commit_stage_ring: Mutex::new(VecDeque::with_capacity(STAGE_SAMPLE_CAP)),
            halted: AtomicBool::new(false),
            halt_reason: Mutex::new(None),
            vacuum_runs: AtomicU64::new(0),
            versions_reclaimed: AtomicU64::new(0),
            stats_rebuilds: AtomicU64::new(0),
            held_back: AtomicU64::new(0),
            gap_events: AtomicU64::new(0),
            pending_evicted: AtomicU64::new(0),
            sync_fetched: AtomicU64::new(0),
            sync_replayed: AtomicU64::new(0),
            sync_fast_syncs: AtomicU64::new(0),
        }
    }

    /// A block arrived from the ordering service.
    pub fn on_block_received(&self) {
        self.blocks_received.fetch_add(1, Ordering::Relaxed);
    }

    /// A block was fully processed; durations in microseconds.
    pub fn on_block_processed(&self, bpt_us: u64, bet_us: u64) {
        self.blocks_processed.fetch_add(1, Ordering::Relaxed);
        self.bpt_us.fetch_add(bpt_us, Ordering::Relaxed);
        self.bet_us.fetch_add(bet_us, Ordering::Relaxed);
    }

    /// One transaction finished executing (before its commit point).
    pub fn on_tx_executed(&self, tet_us: u64) {
        self.txs_executed.fetch_add(1, Ordering::Relaxed);
        self.tet_us.fetch_add(tet_us, Ordering::Relaxed);
    }

    /// Commit-phase outcomes.
    pub fn on_tx_committed(&self) {
        self.txs_committed.fetch_add(1, Ordering::Relaxed);
    }

    /// A transaction aborted at commit.
    pub fn on_tx_aborted(&self) {
        self.txs_aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Transactions that had to be started by the block processor because
    /// they never arrived via forwarding (EO flow, §3.4.3).
    pub fn on_missing_txs(&self, n: u64) {
        self.missing_txs.fetch_add(n, Ordering::Relaxed);
    }

    /// Committed count so far in this window.
    pub fn committed(&self) -> u64 {
        self.txs_committed.load(Ordering::Relaxed)
    }

    // ------------------------------------------------- pipeline stages

    /// One block finished its serial-commit stage (stage 2); duration in
    /// microseconds. Also feeds the bounded percentile reservoir.
    pub fn on_commit_stage(&self, us: u64) {
        self.commit_stage_us.fetch_add(us, Ordering::Relaxed);
        self.commit_stage_blocks.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.commit_stage_ring.lock();
        if ring.len() == STAGE_SAMPLE_CAP {
            ring.pop_front();
        }
        ring.push_back(us);
    }

    /// One block finished the write-set apply slice of its serial-commit
    /// stage; duration in microseconds.
    pub fn on_apply_stage(&self, us: u64) {
        self.apply_stage_us.fetch_add(us, Ordering::Relaxed);
        self.apply_stage_blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the node's configured apply-worker count (gauge).
    pub fn set_apply_workers(&self, n: u64) {
        self.apply_workers.store(n, Ordering::Relaxed);
    }

    /// One block finished its post-commit stage (stage 3); duration in
    /// microseconds.
    pub fn on_post_stage(&self, us: u64) {
        self.post_stage_us.fetch_add(us, Ordering::Relaxed);
        self.post_stage_blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Update the pipeline-depth gauges: blocks admitted but not yet
    /// serially committed, and blocks committed with post-commit work
    /// still pending.
    pub fn set_pipeline_depths(&self, inflight: u64, postcommit: u64) {
        self.pipeline_depth.store(inflight, Ordering::Relaxed);
        self.postcommit_depth.store(postcommit, Ordering::Relaxed);
    }

    /// The recent per-block serial-commit durations (µs, oldest first;
    /// bounded reservoir) — the bench harness derives p50/p95 commit-
    /// stage latency from this.
    pub fn commit_stage_samples(&self) -> Vec<u64> {
        self.commit_stage_ring.lock().iter().copied().collect()
    }

    // ------------------------------------------------------------ health

    /// The block processor halted on a rejected block; record why. The
    /// flag is sticky — a halted processor never resumes (§3.5(4)).
    pub fn set_halted(&self, reason: impl Into<String>) {
        let mut r = self.halt_reason.lock();
        if r.is_none() {
            *r = Some(reason.into());
        }
        self.halted.store(true, Ordering::Relaxed);
    }

    /// Has the block processor halted?
    pub fn halted(&self) -> bool {
        self.halted.load(Ordering::Relaxed)
    }

    /// Why the processor halted, if it did.
    pub fn halt_reason(&self) -> Option<String> {
        self.halt_reason.lock().clone()
    }

    // ------------------------------------------------------- maintenance

    /// A maintenance vacuum ran, reclaiming `versions` row versions.
    pub fn on_vacuum(&self, versions: u64) {
        self.vacuum_runs.fetch_add(1, Ordering::Relaxed);
        self.versions_reclaimed
            .fetch_add(versions, Ordering::Relaxed);
    }

    /// Maintenance vacuum runs since node start.
    pub fn vacuum_runs(&self) -> u64 {
        self.vacuum_runs.load(Ordering::Relaxed)
    }

    /// Row versions reclaimed by maintenance vacuums since node start.
    pub fn versions_reclaimed(&self) -> u64 {
        self.versions_reclaimed.load(Ordering::Relaxed)
    }

    /// Planner statistics were rebuilt exactly from a table's heap.
    pub fn on_stats_rebuild(&self) {
        self.stats_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Planner-statistics rebuilds since node start.
    pub fn stats_rebuilds(&self) -> u64 {
        self.stats_rebuilds.load(Ordering::Relaxed)
    }

    // ------------------------------------------- catch-up / gap counters

    /// Update the held-back gauge: out-of-order blocks currently
    /// buffered by the block processor.
    pub fn set_held_back(&self, n: u64) {
        self.held_back.store(n, Ordering::Relaxed);
    }

    /// A delivery gap was detected (a future block arrived while earlier
    /// blocks are still missing).
    pub fn on_gap_detected(&self) {
        self.gap_events.fetch_add(1, Ordering::Relaxed);
    }

    /// A held-back block was evicted because the pending buffer is full.
    pub fn on_pending_evicted(&self) {
        self.pending_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` blocks were fetched from peers, of which `replayed` went
    /// through normal block processing (the rest were append-only under
    /// a fast-sync snapshot).
    pub fn on_sync_blocks(&self, n: u64, replayed: u64) {
        self.sync_fetched.fetch_add(n, Ordering::Relaxed);
        self.sync_replayed.fetch_add(replayed, Ordering::Relaxed);
    }

    /// A snapshot fast-sync was installed.
    pub fn on_fast_sync(&self) {
        self.sync_fast_syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Out-of-order blocks currently held back (gauge).
    pub fn held_back(&self) -> u64 {
        self.held_back.load(Ordering::Relaxed)
    }

    /// Delivery gaps detected since node start.
    pub fn gap_events(&self) -> u64 {
        self.gap_events.load(Ordering::Relaxed)
    }

    /// Held-back blocks evicted since node start.
    pub fn pending_evicted(&self) -> u64 {
        self.pending_evicted.load(Ordering::Relaxed)
    }

    /// Blocks fetched from peers since node start.
    pub fn sync_fetched(&self) -> u64 {
        self.sync_fetched.load(Ordering::Relaxed)
    }

    /// Snapshot fast-syncs installed since node start.
    pub fn sync_fast_syncs(&self) -> u64 {
        self.sync_fast_syncs.load(Ordering::Relaxed)
    }

    /// Snapshot the window and reset all counters.
    pub fn take(&self) -> MetricsSnapshot {
        let mut start = self.window_start.lock();
        let window_secs = start.elapsed().as_secs_f64().max(1e-9);
        *start = Instant::now();
        drop(start);

        let received = self.blocks_received.swap(0, Ordering::Relaxed);
        let processed = self.blocks_processed.swap(0, Ordering::Relaxed);
        let bpt_us = self.bpt_us.swap(0, Ordering::Relaxed);
        let bet_us = self.bet_us.swap(0, Ordering::Relaxed);
        let tet_us = self.tet_us.swap(0, Ordering::Relaxed);
        let executed = self.txs_executed.swap(0, Ordering::Relaxed);
        let committed = self.txs_committed.swap(0, Ordering::Relaxed);
        let aborted = self.txs_aborted.swap(0, Ordering::Relaxed);
        let missing = self.missing_txs.swap(0, Ordering::Relaxed);
        let commit_us = self.commit_stage_us.swap(0, Ordering::Relaxed);
        let commit_blocks = self.commit_stage_blocks.swap(0, Ordering::Relaxed);
        let apply_us = self.apply_stage_us.swap(0, Ordering::Relaxed);
        let apply_blocks = self.apply_stage_blocks.swap(0, Ordering::Relaxed);
        let post_us = self.post_stage_us.swap(0, Ordering::Relaxed);
        let post_blocks = self.post_stage_blocks.swap(0, Ordering::Relaxed);

        let bpt_ms = if processed > 0 {
            bpt_us as f64 / processed as f64 / 1000.0
        } else {
            0.0
        };
        let bet_ms = if processed > 0 {
            bet_us as f64 / processed as f64 / 1000.0
        } else {
            0.0
        };
        let tet_ms = if executed > 0 {
            tet_us as f64 / executed as f64 / 1000.0
        } else {
            0.0
        };
        let bpr = processed as f64 / window_secs;
        MetricsSnapshot {
            window_secs,
            brr: received as f64 / window_secs,
            bpr,
            bpt_ms,
            bet_ms,
            bct_ms: (bpt_ms - bet_ms).max(0.0),
            tet_ms,
            mt_per_s: missing as f64 / window_secs,
            su: (bpr * bpt_ms / 1000.0).min(1.0),
            committed,
            aborted,
            commit_stage_ms: if commit_blocks > 0 {
                commit_us as f64 / commit_blocks as f64 / 1000.0
            } else {
                0.0
            },
            apply_stage_ms: if apply_blocks > 0 {
                apply_us as f64 / apply_blocks as f64 / 1000.0
            } else {
                0.0
            },
            apply_workers: self.apply_workers.load(Ordering::Relaxed),
            post_stage_ms: if post_blocks > 0 {
                post_us as f64 / post_blocks as f64 / 1000.0
            } else {
                0.0
            },
            pipeline_depth: self.pipeline_depth.load(Ordering::Relaxed),
            postcommit_depth: self.postcommit_depth.load(Ordering::Relaxed),
            halted: self.halted.load(Ordering::Relaxed),
            committed_height: 0,
            postcommit_height: 0,
            vacuum_runs: self.vacuum_runs.load(Ordering::Relaxed),
            versions_reclaimed: self.versions_reclaimed.load(Ordering::Relaxed),
            held_back: self.held_back.load(Ordering::Relaxed),
            gap_events: self.gap_events.load(Ordering::Relaxed),
            pending_evicted: self.pending_evicted.load(Ordering::Relaxed),
            sync_fetched: self.sync_fetched.load(Ordering::Relaxed),
            sync_replayed: self.sync_replayed.load(Ordering::Relaxed),
            sync_fast_syncs: self.sync_fast_syncs.load(Ordering::Relaxed),
            pages_read: 0,
            pages_written: 0,
            pages_evicted: 0,
            pool_hit_rate: 1.0,
            plans_index_intersection: 0,
            plans_covering: 0,
            stats_rebuilds: self.stats_rebuilds.load(Ordering::Relaxed),
            ordering: OrderingSnapshot::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_averages_and_resets() {
        let m = NodeMetrics::new();
        m.on_block_received();
        m.on_block_received();
        m.on_block_processed(10_000, 6_000); // 10 ms, 6 ms
        m.on_block_processed(20_000, 10_000);
        m.on_tx_executed(1_000);
        m.on_tx_executed(3_000);
        m.on_tx_committed();
        m.on_tx_aborted();
        m.on_missing_txs(5);
        std::thread::sleep(std::time::Duration::from_millis(20));

        let s = m.take();
        assert!(s.window_secs > 0.0);
        assert!((s.bpt_ms - 15.0).abs() < 1e-9);
        assert!((s.bet_ms - 8.0).abs() < 1e-9);
        assert!((s.bct_ms - 7.0).abs() < 1e-9);
        assert!((s.tet_ms - 2.0).abs() < 1e-9);
        assert_eq!(s.committed, 1);
        assert_eq!(s.aborted, 1);
        assert!(s.brr > 0.0);
        assert!(s.mt_per_s > 0.0);
        assert!(s.su > 0.0 && s.su <= 1.0);

        // Second take: everything reset.
        let s2 = m.take();
        assert_eq!(s2.committed, 0);
        assert_eq!(s2.bpt_ms, 0.0);
    }

    #[test]
    fn stage_counters_average_and_reset() {
        let m = NodeMetrics::new();
        m.on_commit_stage(2_000);
        m.on_commit_stage(4_000);
        m.on_apply_stage(500);
        m.on_apply_stage(1_500);
        m.on_post_stage(10_000);
        m.set_pipeline_depths(3, 2);
        m.set_apply_workers(4);
        let s = m.take();
        assert!((s.commit_stage_ms - 3.0).abs() < 1e-9);
        assert!((s.apply_stage_ms - 1.0).abs() < 1e-9);
        assert_eq!(s.apply_workers, 4);
        assert!((s.post_stage_ms - 10.0).abs() < 1e-9);
        assert_eq!(s.pipeline_depth, 3);
        assert_eq!(s.postcommit_depth, 2);
        assert_eq!(m.commit_stage_samples(), vec![2_000, 4_000]);
        // Windowed averages reset; gauges and samples persist.
        let s2 = m.take();
        assert_eq!(s2.commit_stage_ms, 0.0);
        assert_eq!(s2.apply_stage_ms, 0.0);
        assert_eq!(s2.apply_workers, 4);
        assert_eq!(s2.pipeline_depth, 3);
    }

    #[test]
    fn halted_flag_is_sticky_with_first_reason() {
        let m = NodeMetrics::new();
        assert!(!m.halted());
        assert!(!m.take().halted);
        m.set_halted("block 7 rejected");
        m.set_halted("later reason ignored");
        assert!(m.halted());
        assert_eq!(m.halt_reason().as_deref(), Some("block 7 rejected"));
        assert!(m.take().halted, "snapshot exposes the health flag");
    }

    #[test]
    fn vacuum_counters_accumulate() {
        let m = NodeMetrics::new();
        m.on_vacuum(10);
        m.on_vacuum(0);
        assert_eq!(m.vacuum_runs(), 2);
        assert_eq!(m.versions_reclaimed(), 10);
        let s = m.take();
        assert_eq!(s.vacuum_runs, 2);
        assert_eq!(s.versions_reclaimed, 10);
    }
}
