//! Block processing: the execution and committing phases of both flows.
//!
//! Order of operations per block (§3.3.2–§3.3.4, §3.4.3):
//!
//! 1. verify the block (sequence, hash chain, orderer signature) and
//!    append it to the block store;
//! 2. start any transactions not already executing (all of them in the OE
//!    flow; only *missing* ones in the EO flow) and wait until every
//!    transaction of the block is ready to commit;
//! 3. serially signal each transaction in block order: SSI commit check →
//!    primary-key check → write-set application (or rollback);
//! 4. record every transaction in the ledger table, notify clients,
//!    compute the write-set hash and submit the checkpoint vote;
//! 5. compare checkpoint votes carried in the block's metadata against our
//!    own hashes (tamper/divergence detection, §3.5).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use bcrdb_chain::block::{Block, CheckpointVote};
use bcrdb_chain::checkpoint::WriteSetHasher;
use bcrdb_chain::ledger::{LedgerRecord, TxStatus};
use bcrdb_chain::tx::Transaction;
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{GlobalTxId, TxId};
use bcrdb_engine::exec::{apply_catalog_op, CatalogOp};
use bcrdb_engine::procedures::ContractRegistry;
use bcrdb_sql::validate::DeterminismRules;
use bcrdb_storage::catalog::Catalog;
use bcrdb_storage::snapshot::ScanMode;
use bcrdb_txn::context::CommitOutcome;
use bcrdb_txn::ssi::Flow;
use crossbeam_channel::Receiver;

use crate::exec_pool::ExecTask;
use crate::node::Node;
use crate::notify::TxNotification;

/// How often the receive loop wakes up with no deliveries, so the gap
/// timer can fire even while the channel is silent.
const GAP_POLL: Duration = Duration::from_millis(50);

/// Receive-and-process loop (runs on the node's block-processor thread).
/// Out-of-order future blocks are held back — in a buffer bounded by
/// `NodeConfig::pending_cap` — and processed once the gap closes. A gap
/// that outlives `NodeConfig::gap_timeout` triggers a peer catch-up round
/// through the `sync_fetch` hook (§3.6: "the node then retrieves any
/// missing blocks, processes and commits them one by one").
pub fn run_loop(node: Arc<Node>, rx: Receiver<Arc<Block>>) {
    let mut pending: std::collections::BTreeMap<u64, Arc<Block>> = Default::default();
    let metrics = Arc::clone(&node.env.metrics);
    // When the current delivery gap opened (None = no gap).
    let mut gap_since: Option<Instant> = None;
    loop {
        if node.shutting_down.load(Ordering::Relaxed) {
            return;
        }
        match rx.recv_timeout(GAP_POLL) {
            Ok(block) => {
                let current = node.blockstore.height();
                if block.number > current + 1 {
                    hold_back(&node, &mut pending, block);
                    if gap_since.is_none() {
                        gap_since = Some(Instant::now());
                        metrics.on_gap_detected();
                    }
                } else if block.number == current + 1 {
                    if let Err(e) = on_block(&node, &block) {
                        // A verification failure means a byzantine orderer
                        // or local corruption: stop processing rather than
                        // diverge (§3.5(4)).
                        eprintln!(
                            "[{}] block {} rejected: {e}",
                            node.config.name, block.number
                        );
                        return;
                    }
                }
            }
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
        }
        // Drain any consecutively buffered blocks — on every wakeup, not
        // just on a delivery, so blocks unblocked by a catch-up round
        // process even while the channel stays silent.
        if drain_pending(&node, &mut pending).is_err() {
            return;
        }
        metrics.set_held_back(pending.len() as u64);
        if pending.is_empty() {
            gap_since = None;
        } else if gap_since.is_none() {
            gap_since = Some(Instant::now());
        }
        // The gap outlived the delivery-reorder window: the missing
        // blocks are not coming on their own — fetch them from peers.
        if let Some(t0) = gap_since {
            if t0.elapsed() >= node.config.gap_timeout {
                match node.catch_up(false) {
                    Ok(stats) if stats.fetched > 0 => {
                        gap_since = None;
                    }
                    Ok(_) => {
                        // No hook installed or nothing fetched; re-arm so
                        // the next attempt waits a full timeout again.
                        gap_since = Some(Instant::now());
                    }
                    Err(e) => {
                        eprintln!(
                            "[{}] catch-up after delivery gap failed: {e}",
                            node.config.name
                        );
                        gap_since = Some(Instant::now());
                    }
                }
                if drain_pending(&node, &mut pending).is_err() {
                    return;
                }
                metrics.set_held_back(pending.len() as u64);
            }
        }
    }
}

/// Process every consecutively buffered block, then drop the ones the
/// chain has already passed. An `Err` means a block was rejected and the
/// processor must stop (§3.5(4)).
fn drain_pending(
    node: &Arc<Node>,
    pending: &mut std::collections::BTreeMap<u64, Arc<Block>>,
) -> std::result::Result<(), ()> {
    loop {
        let next = node.blockstore.height() + 1;
        let Some(b) = pending.remove(&next) else {
            break;
        };
        if let Err(e) = on_block(node, &b) {
            eprintln!("[{}] block {} rejected: {e}", node.config.name, b.number);
            return Err(());
        }
    }
    pending.retain(|n, _| *n > node.blockstore.height());
    Ok(())
}

/// Buffer a future block, evicting the highest-numbered one when the
/// buffer is full (blocks closest to the gap are the ones that unblock
/// processing; far-future blocks are the cheapest to re-fetch).
fn hold_back(
    node: &Arc<Node>,
    pending: &mut std::collections::BTreeMap<u64, Arc<Block>>,
    block: Arc<Block>,
) {
    let cap = node.config.pending_cap.max(1);
    if pending.len() >= cap && !pending.contains_key(&block.number) {
        let highest = *pending.keys().next_back().expect("non-empty at cap");
        if block.number >= highest {
            node.env.metrics.on_pending_evicted();
            return; // the newcomer is the farthest out: drop it
        }
        pending.remove(&highest);
        node.env.metrics.on_pending_evicted();
    }
    pending.insert(block.number, block);
}

/// Verify and process a newly received block.
pub fn on_block(node: &Arc<Node>, block: &Arc<Block>) -> Result<()> {
    node.env.metrics.on_block_received();
    let current = node.blockstore.height();
    if block.number <= current {
        return Ok(()); // duplicate delivery
    }
    if block.number != current + 1 {
        return Err(Error::internal(format!(
            "block gap: have {current}, received {}",
            block.number
        )));
    }
    if node.config.verify_signatures {
        block.verify(&node.blockstore.tip_hash(), &node.env.certs)?;
    } else {
        block.verify_integrity()?;
    }
    node.blockstore.append((**block).clone())?;
    process_block(node, block)
}

/// Execute and commit one block (also the §3.6 recovery replay path —
/// blocks from the local store are already verified).
pub fn process_block(node: &Arc<Node>, block: &Arc<Block>) -> Result<()> {
    let t0 = Instant::now();
    let flow = node.config.flow;

    if node.config.serial_execution {
        return process_serial(node, block, t0);
    }

    // ---- execution phase -------------------------------------------------
    let exec_height = block.number - 1;
    let mut wait_ids: Vec<GlobalTxId> = Vec::with_capacity(block.txs.len());
    let mut missing = 0u64;
    for tx in &block.txs {
        if node.is_processed(&tx.id) {
            continue; // duplicate: aborted at the commit phase
        }
        let snap = effective_snapshot(tx, flow, exec_height);
        if snap > exec_height {
            continue; // future snapshot: deterministic abort, never executed
        }
        if node.env.slots.try_claim(tx.id) {
            if flow == Flow::ExecuteOrderParallel {
                // Should have arrived via peer forwarding (§3.4.3: "the
                // committer starts executing all missing transactions").
                missing += 1;
            }
            let mode = match flow {
                Flow::OrderThenExecute => ScanMode::Relaxed,
                Flow::ExecuteOrderParallel => ScanMode::Strict,
            };
            node.pool.submit(ExecTask {
                tx: Arc::new(tx.clone()),
                snapshot_height: snap,
                mode,
            });
        }
        wait_ids.push(tx.id);
    }
    if missing > 0 {
        node.env.metrics.on_missing_txs(missing);
    }
    node.env
        .slots
        .wait_all_done(&wait_ids, node.config.exec_wait_timeout)?;
    let bet_us = t0.elapsed().as_micros() as u64;

    // ---- committing phase ------------------------------------------------
    let mut hasher = WriteSetHasher::new();
    let mut records = Vec::with_capacity(block.txs.len());
    for (i, tx) in block.txs.iter().enumerate() {
        let record = commit_one(node, block, i as u32, tx, flow, &mut hasher);
        node.mark_processed(tx.id);
        records.push(record);
    }
    publish_checkpoint(node, block.number, hasher);
    finish_block(node, block, records, t0, bet_us)
}

/// The Ethereum-style baseline (§5.1): execute and commit transactions one
/// at a time, in block order, with no concurrency.
fn process_serial(node: &Arc<Node>, block: &Arc<Block>, t0: Instant) -> Result<()> {
    let flow = node.config.flow;
    let exec_height = block.number - 1;
    let mut hasher = WriteSetHasher::new();
    let mut records = Vec::with_capacity(block.txs.len());
    let mut bet_us = 0u64;
    for (i, tx) in block.txs.iter().enumerate() {
        let snap = effective_snapshot(tx, flow, exec_height);
        if !node.is_processed(&tx.id) && snap <= exec_height && node.env.slots.try_claim(tx.id) {
            let te = Instant::now();
            node.pool.run_inline(ExecTask {
                tx: Arc::new(tx.clone()),
                snapshot_height: snap,
                mode: ScanMode::Relaxed,
            });
            bet_us += te.elapsed().as_micros() as u64;
        }
        let record = commit_one(node, block, i as u32, tx, flow, &mut hasher);
        node.mark_processed(tx.id);
        records.push(record);
    }
    publish_checkpoint(node, block.number, hasher);
    finish_block(node, block, records, t0, bet_us)
}

fn effective_snapshot(tx: &Transaction, flow: Flow, exec_height: u64) -> u64 {
    match flow {
        Flow::OrderThenExecute => exec_height,
        Flow::ExecuteOrderParallel => tx.snapshot_height.unwrap_or(exec_height),
    }
}

/// Serially decide one transaction (§3.3.3): the commit order is the order
/// within the block, and every decision is a pure function of deterministic
/// state — identical on all honest nodes.
fn commit_one(
    node: &Arc<Node>,
    block: &Arc<Block>,
    index: u32,
    tx: &Transaction,
    flow: Flow,
    hasher: &mut WriteSetHasher,
) -> LedgerRecord {
    let now_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0);
    let base = |txid: TxId, status: TxStatus| LedgerRecord {
        block: block.number,
        tx_index: index,
        global_id: tx.id,
        user: tx.user.clone(),
        contract: tx.payload.contract.clone(),
        txid,
        status,
        commit_time_ms: now_ms,
    };

    if node.is_processed(&tx.id) {
        return base(
            TxId::INVALID,
            TxStatus::Aborted("duplicate transaction identifier".into()),
        );
    }
    let snap = effective_snapshot(tx, flow, block.number - 1);
    if snap > block.number - 1 {
        return base(
            TxId::INVALID,
            TxStatus::Aborted(format!(
                "snapshot height {snap} is beyond block {}",
                block.number
            )),
        );
    }
    let Some(done) = node.env.slots.take_done(&tx.id) else {
        return base(
            TxId::INVALID,
            TxStatus::Aborted("execution result missing".into()),
        );
    };
    let txid = done.ctx.id;

    // Deferred DDL must be applicable before we commit data writes.
    if let Err(e) = validate_catalog_ops(
        &node.env.catalog,
        &node.env.contracts,
        &done.catalog_ops,
        flow,
    ) {
        done.ctx.rollback();
        return base(txid, TxStatus::Aborted(format!("ddl rejected: {e}")));
    }

    match done.ctx.apply_commit(block.number, index, flow) {
        CommitOutcome::Committed(write_set) => {
            for op in &done.catalog_ops {
                if let Err(e) =
                    apply_catalog_op(&node.env.catalog, &node.env.contracts, &node.env.certs, op)
                {
                    // Validated above; failure here is a bug, not a user
                    // error — surface loudly but deterministically.
                    eprintln!(
                        "[{}] internal: catalog op failed after validation: {e}",
                        node.config.name
                    );
                }
            }
            for w in &write_set {
                hasher.add(&w.table, w.kind, w.row_id, &w.data);
            }
            base(txid, TxStatus::Committed)
        }
        CommitOutcome::Aborted(reason) => base(txid, TxStatus::Aborted(reason.to_string())),
    }
}

fn validate_catalog_ops(
    catalog: &Catalog,
    contracts: &ContractRegistry,
    ops: &[CatalogOp],
    flow: Flow,
) -> Result<()> {
    let rules = match flow {
        Flow::OrderThenExecute => DeterminismRules::order_then_execute(),
        Flow::ExecuteOrderParallel => DeterminismRules::execute_order_parallel(),
    };
    for op in ops {
        match op {
            CatalogOp::CreateTable(schema) => {
                if catalog.contains(&schema.name) {
                    return Err(Error::AlreadyExists(format!("table {}", schema.name)));
                }
            }
            CatalogOp::CreateIndex {
                table,
                index,
                column,
            } => {
                let t = catalog.get(table)?;
                let schema = t.schema();
                if schema.column_index(column).is_none() {
                    return Err(Error::NotFound(format!("column {column} of {table}")));
                }
                if schema.indexes.iter().any(|i| i.name == *index) {
                    return Err(Error::AlreadyExists(format!("index {index}")));
                }
            }
            CatalogOp::DropTable { name, if_exists } => {
                if !catalog.contains(name) && !*if_exists {
                    return Err(Error::NotFound(format!("table {name}")));
                }
            }
            CatalogOp::CreateFunction(def) => {
                ContractRegistry::validate(def, &rules)?;
                if contracts.get(&def.name).is_some() && !def.or_replace {
                    return Err(Error::AlreadyExists(format!("contract {}", def.name)));
                }
            }
            CatalogOp::DropFunction { name } => {
                if contracts.get(name).is_none() {
                    return Err(Error::NotFound(format!("contract {name}")));
                }
            }
            // Certificate operations are idempotent registrations.
            CatalogOp::RegisterCert(_) | CatalogOp::RevokeCert { .. } => {}
        }
    }
    Ok(())
}

/// Shared tail of block processing: ledger, height, checkpoints, metrics,
/// maintenance.
fn finish_block(
    node: &Arc<Node>,
    block: &Arc<Block>,
    records: Vec<LedgerRecord>,
    t0: Instant,
    bet_us: u64,
) -> Result<()> {
    node.append_ledger(&records, block.number);
    node.env
        .committed_height
        .store(block.number, Ordering::Relaxed);
    node.pool.release_waiting(block.number);

    // Record metrics *before* notifying: a client that returns from
    // `wait_committed` and immediately reads this node's metrics must
    // see its own transaction counted.
    for record in &records {
        match record.status {
            TxStatus::Committed => node.env.metrics.on_tx_committed(),
            TxStatus::Aborted(_) => node.env.metrics.on_tx_aborted(),
        }
    }
    let bpt_us = t0.elapsed().as_micros() as u64;
    node.env
        .metrics
        .on_block_processed(bpt_us, bet_us.min(bpt_us));

    // Notify clients only after the committed height advanced, so a
    // "committed" notification guarantees the effects are visible to an
    // immediate follow-up query on this node.
    for record in &records {
        node.notifications.notify(TxNotification {
            id: record.global_id,
            block: block.number,
            status: record.status.clone(),
        });
    }

    // Process checkpoint votes carried by this block (§3.3.4: hashes of
    // *previous* blocks' write sets arrive in later blocks).
    for cv in &block.checkpoints {
        if cv.node == node.config.name {
            continue;
        }
        if let Some(d) = node
            .checkpoints
            .record_vote(&cv.node, cv.block, cv.state_hash)
        {
            node.divergences.lock().push(d);
        }
    }

    // Maintenance.
    if node.config.gc_interval > 0 && block.number.is_multiple_of(node.config.gc_interval) {
        node.env.ssi.gc();
        node.checkpoints.prune(block.number.saturating_sub(64));
    }
    if node.config.snapshot_interval > 0
        && block.number.is_multiple_of(node.config.snapshot_interval)
    {
        node.write_snapshot()?;
    }
    Ok(())
}

/// Compute and publish the checkpoint for a processed block. Split from
/// [`finish_block`] because the write-set hasher lives in the commit loop.
pub(crate) fn publish_checkpoint(node: &Arc<Node>, block_number: u64, hasher: WriteSetHasher) {
    let digest = hasher.finish();
    node.checkpoints.record_local(block_number, digest);
    let hooks = node.hooks.read();
    if let Some(submit) = &hooks.submit_checkpoint {
        submit(CheckpointVote {
            node: node.config.name.clone(),
            block: block_number,
            state_hash: digest,
        });
    }
}
